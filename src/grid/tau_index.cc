#include "grid/tau_index.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/simd.h"
#include "core/thread_pool.h"

namespace gir {

namespace {

/// Weights (or points, at build) scored per kernel chunk: small enough
/// that the chunk's accumulators stay L1-resident across the d passes.
constexpr size_t kScoreChunk = 4096;

/// Histogram bin of score `s` for a weight with lower edge `lo` and
/// precomputed inverse width `inv` = bins / (max - min). Only monotonicity
/// in `s` matters for the rank bounds (DESIGN.md §10), and subtraction,
/// multiplication by a positive constant and truncation are all monotone —
/// the bin edges themselves need not be exact. Build and query both bin
/// through this one function, so a score always lands in the same bin.
size_t BinOf(double s, double lo, double inv, size_t bins) {
  const double t = (s - lo) * inv;
  if (!(t > 0.0)) return 0;
  const size_t b = static_cast<size_t>(t);
  return b >= bins ? bins - 1 : b;
}

}  // namespace

Result<TauIndex> TauIndex::Build(const Dataset& points, const Dataset& weights,
                                 const TauIndexOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("point set must be non-empty");
  }
  if (points.dim() != weights.dim()) {
    return Status::InvalidArgument(
        "dimension mismatch: points " + std::to_string(points.dim()) +
        " vs weights " + std::to_string(weights.dim()));
  }
  if (options.k_max == 0) {
    return Status::InvalidArgument("tau k_max must be >= 1");
  }
  if (options.bins < 2 || options.bins > (size_t{1} << 20)) {
    return Status::InvalidArgument("tau bins must be in [2, 2^20]");
  }
  const size_t n = points.size();
  const size_t m = weights.size();
  const size_t d = points.dim();

  TauIndex index;
  index.dim_ = d;
  index.num_points_ = n;
  index.num_weights_ = m;
  index.k_cap_ = std::min(options.k_max, n);
  index.bins_ = options.bins;
  index.tau_.resize(index.k_cap_ * m);
  index.score_max_.resize(m);
  index.hist_prefix_.resize(m * index.bins_);
  index.BuildWeightColumns(weights);

  // Transient column-major mirror of P: the build streams each dimension
  // column once per weight, the same SoA shape the blocked scan reads.
  std::vector<double> pcol(n * d);
  for (size_t j = 0; j < n; ++j) {
    ConstRow row = points.row(j);
    for (size_t i = 0; i < d; ++i) pcol[i * n + j] = row[i];
  }

  auto score_stripe = [&](size_t w_begin, size_t w_end) {
    std::vector<double> scores(n);
    for (size_t w = w_begin; w < w_end; ++w) {
      ConstRow wrow = weights.row(w);
      // Chunked accumulation: f_w(p) for every p, dimension-at-a-time in
      // ascending order — bit-identical to InnerProduct(w, p).
      for (size_t b0 = 0; b0 < n; b0 += kScoreChunk) {
        const size_t len = std::min(kScoreChunk, n - b0);
        double* acc = scores.data() + b0;
        std::memset(acc, 0, len * sizeof(double));
        for (size_t i = 0; i < d; ++i) {
          simd::AccumulateScaledDoubles(pcol.data() + i * n + b0, wrow[i],
                                        acc, len);
        }
      }
      index.Materialize(w, scores);
    }
  };

  if (options.threads == 1 || m <= 1) {
    score_stripe(0, m);
  } else {
    ThreadPool pool(options.threads);
    const size_t stripes = std::max<size_t>(1, pool.thread_count() * 4);
    const size_t grain = std::max<size_t>(1, (m + stripes - 1) / stripes);
    pool.ParallelFor(0, m, grain, score_stripe);
  }
  return index;
}

void TauIndex::BuildWeightColumns(const Dataset& weights) {
  const size_t m = num_weights_;
  wcol_.resize(dim_ * m);
  for (size_t w = 0; w < m; ++w) {
    ConstRow row = weights.row(w);
    for (size_t i = 0; i < dim_; ++i) wcol_[i * m + w] = row[i];
  }
}

void TauIndex::Materialize(size_t w, std::vector<double>& scores) {
  const size_t n = num_points_;
  const size_t m = num_weights_;
  // Exact order statistics: nth_element + sort of the head is O(n + K log
  // K). The scores vector is reordered, which the histogram below does not
  // care about.
  std::nth_element(scores.begin(), scores.begin() + (k_cap_ - 1),
                   scores.end());
  std::sort(scores.begin(), scores.begin() + k_cap_);
  for (size_t j = 0; j < k_cap_; ++j) tau_[j * m + w] = scores[j];
  // After nth_element every element at or past position k_cap_ - 1 is >=
  // the pivot, so the maximum lives in that suffix.
  double mx = scores[k_cap_ - 1];
  for (size_t j = k_cap_; j < n; ++j) mx = std::max(mx, scores[j]);
  score_max_[w] = mx;

  const double mn = scores[0];  // == τ_1(w)
  const double inv =
      mx > mn ? static_cast<double>(bins_) / (mx - mn) : 0.0;
  uint32_t* pre = hist_prefix_.data() + w * bins_;
  std::memset(pre, 0, bins_ * sizeof(uint32_t));
  for (size_t j = 0; j < n; ++j) {
    ++pre[BinOf(scores[j], mn, inv, bins_)];
  }
  uint32_t run = 0;
  for (size_t b = 0; b < bins_; ++b) {
    run += pre[b];
    pre[b] = run;
  }
}

Result<TauIndex> TauIndex::FromParts(const Dataset& weights, size_t num_points,
                                     size_t k_cap, size_t bins,
                                     std::vector<double> tau,
                                     std::vector<double> score_max,
                                     std::vector<uint32_t> hist_prefix) {
  const size_t m = weights.size();
  if (weights.dim() == 0) {
    return Status::InvalidArgument("weights must have dim >= 1");
  }
  if (num_points == 0 || k_cap == 0 || k_cap > num_points) {
    return Status::Corruption("tau index k_cap/num_points out of range");
  }
  if (bins < 2 || bins > (size_t{1} << 20)) {
    return Status::Corruption("tau index bin count out of range");
  }
  if (tau.size() != k_cap * m || score_max.size() != m ||
      hist_prefix.size() != m * bins) {
    return Status::Corruption("tau index component sizes do not match W");
  }
  for (size_t w = 0; w < m; ++w) {
    // τ rows must be non-decreasing in k and bounded by the max score;
    // prefix counts must be non-decreasing and end at |P|. Violations mean
    // the file does not describe any score multiset.
    for (size_t j = 1; j < k_cap; ++j) {
      if (tau[j * m + w] < tau[(j - 1) * m + w]) {
        return Status::Corruption("tau thresholds are not sorted");
      }
    }
    if (score_max[w] < tau[(k_cap - 1) * m + w]) {
      return Status::Corruption("tau max score below k-th threshold");
    }
    const uint32_t* pre = hist_prefix.data() + w * bins;
    for (size_t b = 1; b < bins; ++b) {
      if (pre[b] < pre[b - 1]) {
        return Status::Corruption("tau histogram prefix not monotone");
      }
    }
    if (pre[bins - 1] != num_points) {
      return Status::Corruption("tau histogram does not sum to |P|");
    }
  }
  TauIndex index;
  index.dim_ = weights.dim();
  index.num_points_ = num_points;
  index.num_weights_ = m;
  index.k_cap_ = k_cap;
  index.bins_ = bins;
  index.tau_ = std::move(tau);
  index.score_max_ = std::move(score_max);
  index.hist_prefix_ = std::move(hist_prefix);
  index.BuildWeightColumns(weights);
  return index;
}

void TauIndex::ScoreRange(ConstRow q, size_t w_begin, size_t w_end,
                          double* scores) const {
  const size_t m = num_weights_;
  for (size_t c0 = w_begin; c0 < w_end; c0 += kScoreChunk) {
    const size_t len = std::min(kScoreChunk, w_end - c0);
    double* acc = scores + (c0 - w_begin);
    std::memset(acc, 0, len * sizeof(double));
    for (size_t i = 0; i < dim_; ++i) {
      // q[i] * w[i] rounds identically to w[i] * q[i], so these scores
      // match InnerProduct(w, q) bit-for-bit.
      simd::AccumulateScaledDoubles(wcol_.data() + i * m + c0, q[i], acc,
                                    len);
    }
  }
}

void TauIndex::TopKRange(ConstRow q, size_t k, size_t w_begin, size_t w_end,
                         ReverseTopKResult& out) const {
  if (k == 0 || w_begin >= w_end) return;
  if (k > num_points_) {
    // Every rank is <= |P| < k: all weights retain q.
    for (size_t w = w_begin; w < w_end; ++w) {
      out.push_back(static_cast<VectorId>(w));
    }
    return;
  }
  const double* tau_k = tau_.data() + (k - 1) * num_weights_;
  double scores[kScoreChunk];
  uint32_t selected[kScoreChunk];
  for (size_t c0 = w_begin; c0 < w_end; c0 += kScoreChunk) {
    const size_t len = std::min(kScoreChunk, w_end - c0);
    ScoreRange(q, c0, c0 + len, scores);
    const size_t cnt =
        simd::SelectLessEqual(scores, tau_k + c0, len, selected);
    for (size_t t = 0; t < cnt; ++t) {
      out.push_back(static_cast<VectorId>(c0 + selected[t]));
    }
  }
}

ReverseTopKResult TauIndex::ReverseTopK(ConstRow q, size_t k,
                                        QueryStats* stats) const {
  ReverseTopKResult result;
  TopKRange(q, k, 0, num_weights_, result);
  if (stats != nullptr) {
    stats->weights_evaluated += num_weights_;
    stats->inner_products += num_weights_;
    stats->multiplications += num_weights_ * dim_;
  }
  return result;
}

TauRankBounds TauIndex::BoundRank(size_t w, double score) const {
  const size_t m = num_weights_;
  // Count of τ_j(w) < score by binary search over the k-major columns:
  // rank(w, q) >= j ⟺ τ_j(w) < f_w(q), so the count IS the rank whenever
  // it stops short of k_cap.
  size_t lo = 0;
  size_t hi = k_cap_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (tau_[mid * m + w] < score) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < k_cap_) {
    return TauRankBounds{static_cast<int64_t>(lo), static_cast<int64_t>(lo)};
  }
  const int64_t n = static_cast<int64_t>(num_points_);
  const double mn = tau_[w];  // τ_1(w), the histogram's lower edge
  const double mx = score_max_[w];
  if (score <= mn) return TauRankBounds{0, 0};
  if (score > mx) return TauRankBounds{n, n};
  const double inv = static_cast<double>(bins_) / (mx - mn);
  const uint32_t* pre = hist_prefix_.data() + w * bins_;
  const size_t b = BinOf(score, mn, inv, bins_);
  const int64_t upper = static_cast<int64_t>(pre[b]);
  int64_t lower = b == 0 ? 0 : static_cast<int64_t>(pre[b - 1]);
  lower = std::max(lower, static_cast<int64_t>(k_cap_));
  return TauRankBounds{std::min(lower, upper), upper};
}

size_t TauIndex::MemoryBytes() const {
  return tau_.size() * sizeof(double) + score_max_.size() * sizeof(double) +
         hist_prefix_.size() * sizeof(uint32_t) +
         wcol_.size() * sizeof(double);
}

}  // namespace gir

#ifndef GIR_GRID_BIT_PACKED_H_
#define GIR_GRID_BIT_PACKED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/status.h"
#include "grid/approx_vector.h"
#include "io/packed_io.h"

namespace gir {

/// The §3.2 bit-string compression of approximate vectors: with n = 2^b
/// partitions each cell needs only b bits, so one vector packs into
/// ceil(b*d/8) bytes — for b = 6 less than 1/10 of the original 64-bit
/// float data. Cells are laid out most-significant-first within each
/// vector's bit string, one byte-aligned row per vector.
class BitPackedVectors {
 public:
  /// Packs `cells` using `bits_per_cell` (1..8). InvalidArgument if any
  /// cell id needs more bits.
  static Result<BitPackedVectors> Pack(const ApproxVectors& cells,
                                       uint32_t bits_per_cell);

  /// Reconstructs from a serialized blob (io/packed_io.h).
  static Result<BitPackedVectors> FromBlob(PackedBlob blob);

  /// Serializes (copies) into a blob for SavePackedBlob.
  PackedBlob ToBlob() const;

  /// Decodes everything back to 1-byte-per-cell form.
  ApproxVectors Unpack() const;

  /// Decodes vector i into out[0..dim). Precondition: i < size().
  void DecodeRow(size_t i, uint8_t* out) const;

  size_t size() const { return count_; }
  size_t dim() const { return dim_; }
  uint32_t bits_per_cell() const { return bits_; }

  /// Bytes of the packed representation.
  size_t MemoryBytes() const { return payload_.size(); }

 private:
  BitPackedVectors(uint32_t bits, size_t dim, size_t count,
                   std::vector<uint8_t> payload)
      : bits_(bits), dim_(dim), count_(count), payload_(std::move(payload)) {
    bytes_per_vector_ = (bits_ * dim_ + 7) / 8;
  }

  uint32_t bits_;
  size_t dim_;
  size_t count_;
  size_t bytes_per_vector_;
  std::vector<uint8_t> payload_;
};

}  // namespace gir

#endif  // GIR_GRID_BIT_PACKED_H_

#ifndef GIR_GRID_PARALLEL_GIR_H_
#define GIR_GRID_PARALLEL_GIR_H_

#include <cstddef>

#include "core/counters.h"
#include "core/query_types.h"
#include "core/thread_pool.h"
#include "grid/gir_queries.h"

namespace gir {

/// Data-parallel execution of the GIR queries over stripes of W. Results
/// are identical to the sequential GirIndex methods: each weight's rank is
/// computed exactly, so the only cross-thread coordination is pruning
/// state —
///   * reverse top-k: each worker keeps a private Domin buffer (dominance
///     facts are rediscovered per stripe rather than shared; soundness is
///     unaffected);
///   * reverse k-ranks: workers keep private (rank, id) heaps and share a
///     monotone global rank bound through an atomic. Scans are capped at
///     bound+1 so entries tying the final k-th rank survive to the merge,
///     which resolves ties by the library-wide (rank, id) order.
///
/// `stats`, when non-null, receives the merged counters of all workers.

/// Parallel Algorithm 2. q must have width index.dim().
ReverseTopKResult ParallelReverseTopK(const GirIndex& index, ConstRow q,
                                      size_t k, ThreadPool& pool,
                                      QueryStats* stats = nullptr);

/// Parallel Algorithm 3.
ReverseKRanksResult ParallelReverseKRanks(const GirIndex& index, ConstRow q,
                                          size_t k, ThreadPool& pool,
                                          QueryStats* stats = nullptr);

/// Parallel multi-query reverse top-k: results[i] equals
/// index.ReverseTopK(queries.row(i), k). Workers stripe W (whole weight
/// batches under the blocked engine, τ chunks under kTauIndex) and every
/// stripe resolves the entire query block at once via RankPreparedMulti /
/// TopKBatchRange, so the per-(block, weight) bound accumulation runs once
/// per query batch per stripe — the multi-query analogue of
/// ParallelReverseTopK's layout.
std::vector<ReverseTopKResult> ParallelReverseTopKBatch(
    const GirIndex& index, const Dataset& queries, size_t k, ThreadPool& pool,
    QueryStats* stats = nullptr);

/// Parallel multi-query reverse k-ranks: results[i] equals
/// index.ReverseKRanks(queries.row(i), k). Workers keep private per-query
/// (rank, id) heaps and share one monotone rank bound per query through an
/// atomic; scans are capped at bound + 1 so rank-tying entries survive to
/// the per-query merge, which restores the library-wide (rank, id) order.
std::vector<ReverseKRanksResult> ParallelReverseKRanksBatch(
    const GirIndex& index, const Dataset& queries, size_t k, ThreadPool& pool,
    QueryStats* stats = nullptr);

}  // namespace gir

#endif  // GIR_GRID_PARALLEL_GIR_H_

#ifndef GIR_GRID_BLOCKED_SCAN_H_
#define GIR_GRID_BLOCKED_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/dataset.h"
#include "core/types.h"
#include "grid/approx_vector.h"
#include "grid/gin_topk.h"
#include "grid/grid_index.h"

namespace gir {

/// Tuning knobs of the blocked scan engine. Defaults target a shared L2:
/// a block's cell rows (block_points * d bytes) stay resident while a
/// batch of weights is evaluated against them, so each point-cell byte is
/// streamed from memory once per `weight_batch` weights instead of once
/// per weight.
struct BlockedScanConfig {
  /// Weights evaluated per pass over a point block (B).
  size_t weight_batch = 16;
  /// Approximate bytes of point cells per block; the per-block point count
  /// is derived as target_block_bytes / d, clamped and rounded to
  /// ApproxVectors::kColumnPad.
  size_t target_block_bytes = 32 * 1024;
};

/// Reusable buffers for BlockedScanner calls (the blocked analogue of
/// GinScratch). Reuse across batches avoids per-batch allocation; the
/// contents are rebuilt on entry.
struct BlockedScratch {
  std::vector<double> lower;         // per-point lower-bound accumulators
  std::vector<double> upper;         // per-point upper-bound accumulators
  std::vector<double> tables;        // per-(weight, dim) bound rows
  std::vector<double> gaps;          // per-weight U-L gap (uniform grids)
  std::vector<double> bound_caps;    // per-weight max |bound| (for margins)
  std::vector<double> query_scores;  // per-weight f_w(q)
  std::vector<double> case1_cut;     // per-weight Case-1 threshold on hi
  std::vector<double> case2_cut;     // per-weight Case-2 threshold on lo
  std::vector<int64_t> rank_acc;     // per-weight running rank
  std::vector<uint32_t> active;      // batch slots still scanning
  std::vector<uint32_t> band;        // Case-3 indices within one block
};

/// The weight-batched, cache-blocked GIR scan engine. Where GInTopK
/// re-streams the whole n×d cell matrix for every weight, this engine
/// inverts the loop nest: points are processed in L2-sized blocks and a
/// batch of B weights is evaluated against each block before moving on.
/// Bounds are accumulated by the SIMD kernels in core/simd.h over the SoA
/// (column-major) cell mirror that ApproxVectors builds at index time.
///
/// Results are identical to the weight-at-a-time scan: classification uses
/// a per-weight BoundMargin slack (grid/bounds.h) taken at a conservative
/// bound magnitude, so it is at least as wide as the serial scan's
/// per-point slack — Case-1/2 decisions stay sound and the (slightly
/// larger) remainder is refined inline with exact inner products, so every
/// returned rank is exactly rank(w, q). A weight whose running rank
/// crosses its threshold
/// is masked out of the batch (reported as kRankOverThreshold) without
/// disturbing the other weights.
///
/// The scanner holds pointers only; the index components must outlive it.
class BlockedScanner {
 public:
  BlockedScanner(const Dataset& points, const ApproxVectors& point_cells,
                 const Dataset& weights, const ApproxVectors& weight_cells,
                 const GridIndex& grid, BoundMode bound_mode,
                 BlockedScanConfig config = {});

  /// Per-query precomputed state shared by every weight batch: the full
  /// dominator set of q (Algorithm 1's Domin), found in one O(n·d) pass
  /// and amortized over all |W| scans. Dominated points are skipped by the
  /// scan and pre-counted into every weight's rank — the same facts the
  /// weight-at-a-time scan discovers incrementally.
  struct QueryContext {
    std::vector<uint8_t> dominated;  // 1 byte per point; empty if unused
    int64_t dominator_count = 0;
  };

  QueryContext MakeQueryContext(ConstRow q, bool use_domin) const;

  /// Builds the per-weight bound state for weights [w_begin, w_end) into
  /// `scratch` (lookup rows for table modes, U-L gaps for uniform
  /// kExactWeight). Split from RankPrepared so multi-query entry points
  /// amortize it across queries.
  void PrepareBatch(size_t w_begin, size_t w_end,
                    BlockedScratch& scratch) const;

  /// Computes rank(w, q) for each prepared weight. ranks[i] receives the
  /// exact rank of weight w_begin+i if it is < thresholds[i], otherwise
  /// kRankOverThreshold — the same contract as GInTopK. Requires a
  /// preceding PrepareBatch(w_begin, w_end, scratch).
  void RankPrepared(ConstRow q, const QueryContext& qctx, size_t w_begin,
                    size_t w_end, const int64_t* thresholds, int64_t* ranks,
                    BlockedScratch& scratch, QueryStats* stats) const;

  /// PrepareBatch + RankPrepared in one call (the single-query path).
  void RankBatch(ConstRow q, const QueryContext& qctx, size_t w_begin,
                 size_t w_end, const int64_t* thresholds, int64_t* ranks,
                 BlockedScratch& scratch, QueryStats* stats) const;

  size_t weight_batch() const { return config_.weight_batch; }
  size_t block_points() const { return block_points_; }

 private:
  const Dataset* points_;
  const ApproxVectors* point_cells_;
  const Dataset* weights_;
  const ApproxVectors* weight_cells_;
  const GridIndex* grid_;
  BoundMode mode_;
  BlockedScanConfig config_;
  size_t block_points_;
  bool uniform_fma_;    // kExactWeight on a uniform partitioner: FMA kernel
  double cell_width_;   // uniform grids: alpha[1] - alpha[0]
};

}  // namespace gir

#endif  // GIR_GRID_BLOCKED_SCAN_H_

#ifndef GIR_GRID_BLOCKED_SCAN_H_
#define GIR_GRID_BLOCKED_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/dataset.h"
#include "core/types.h"
#include "grid/approx_vector.h"
#include "grid/block_max.h"
#include "grid/gin_topk.h"
#include "grid/grid_index.h"

namespace gir {

/// Tuning knobs of the blocked scan engine. Defaults target a shared L2:
/// a block's cell rows (block_points * d bytes) stay resident while a
/// batch of weights is evaluated against them, so each point-cell byte is
/// streamed from memory once per `weight_batch` weights instead of once
/// per weight.
struct BlockedScanConfig {
  /// Weights evaluated per pass over a point block (B).
  size_t weight_batch = 16;
  /// Approximate bytes of point cells per block; the per-block point count
  /// is derived as target_block_bytes / d, clamped and rounded to
  /// ApproxVectors::kColumnPad.
  size_t target_block_bytes = 32 * 1024;
};

/// Reusable buffers for BlockedScanner calls (the blocked analogue of
/// GinScratch). Reuse across batches avoids per-batch allocation; the
/// contents are rebuilt on entry.
struct BlockedScratch {
  std::vector<double> lower;         // per-point lower-bound accumulators
  std::vector<double> upper;         // per-point upper-bound accumulators
  std::vector<double> tables;        // per-(weight, dim) bound rows
  std::vector<double> gaps;          // per-weight U-L gap (uniform grids)
  std::vector<double> bound_caps;    // per-weight max |bound| (for margins)
  std::vector<double> query_scores;  // per-weight f_w(q)
  std::vector<double> case1_cut;     // per-weight Case-1 threshold on hi
  std::vector<double> case2_cut;     // per-weight Case-2 threshold on lo
  std::vector<int64_t> rank_acc;     // per-weight running rank
  std::vector<uint32_t> active;      // batch slots still scanning
  std::vector<uint32_t> band;        // Case-3 indices within one block
  // RankPreparedMulti extensions: per-(query, weight) slot liveness and
  // the per-block exact-score cache shared across the query block.
  std::vector<uint8_t> alive;          // slot still scanning
  std::vector<uint32_t> alive_counts;  // per-weight alive-query tally
  std::vector<double> exact;           // cached f_w(p) within one block
  std::vector<uint8_t> exact_valid;    // 1 iff exact[j] is filled
  // Per-(block, weight) bound aggregates, computed once per query batch:
  // the upper-bound histogram (agg_bins is the per-point scratch, agg_hist
  // the prefix-summed counts) lets a slot prove rank >= threshold — or a
  // whole block Case-1/Case-2 — in O(1) instead of classifying bp points.
  std::vector<uint32_t> agg_bins;  // per-point histogram bin scratch
  std::vector<uint32_t> agg_hist;  // hi prefix counts: #points in bins <= b
  std::vector<uint32_t> agg_hist_lo;  // lo prefix counts (BracketRanksMulti)
  // Block-max cursor state (populated only when the scanner carries a
  // BlockMaxIndex): per-(weight, block) score bounds from PrepareBatch and
  // the per-slot thresholds the cursor classifies them against.
  std::vector<double> bmx_lo;    // [bi * num_blocks + b] block lower bounds
  std::vector<double> bmx_hi;    // [bi * num_blocks + b] block upper bounds
  std::vector<double> bmx_caps;  // per-weight block-max bound magnitude cap
  std::vector<double> bmx_cut1;  // take-all threshold on a block's hi
  std::vector<double> bmx_cut2;  // skip-zero threshold on a block's lo
  std::vector<uint8_t> bmx_done;  // slot settled by the cursor (this block)
};

/// The weight-batched, cache-blocked GIR scan engine. Where GInTopK
/// re-streams the whole n×d cell matrix for every weight, this engine
/// inverts the loop nest: points are processed in L2-sized blocks and a
/// batch of B weights is evaluated against each block before moving on.
/// Bounds are accumulated by the SIMD kernels in core/simd.h over the SoA
/// (column-major) cell mirror that ApproxVectors builds at index time.
///
/// Results are identical to the weight-at-a-time scan: classification uses
/// a per-weight BoundMargin slack (grid/bounds.h) taken at a conservative
/// bound magnitude, so it is at least as wide as the serial scan's
/// per-point slack — Case-1/2 decisions stay sound and the (slightly
/// larger) remainder is refined inline with exact inner products, so every
/// returned rank is exactly rank(w, q). A weight whose running rank
/// crosses its threshold
/// is masked out of the batch (reported as kRankOverThreshold) without
/// disturbing the other weights.
///
/// The scanner holds pointers only; the index components must outlive it.
class BlockedScanner {
 public:
  /// `block_max`, when non-null and shaped for this scanner's block size
  /// (same point count, dim and block_points() — see BlockPointsFor), arms
  /// the WAND-style cursor: a block whose quantized score bounds prove
  /// every point counts (or none does) is settled in O(1) without touching
  /// its cells. A mismatched index is ignored, never misused. The verdicts
  /// are proofs, so ranks stay bit-identical to the linear sweep.
  BlockedScanner(const Dataset& points, const ApproxVectors& point_cells,
                 const Dataset& weights, const ApproxVectors& weight_cells,
                 const GridIndex& grid, BoundMode bound_mode,
                 BlockedScanConfig config = {},
                 const BlockMaxIndex* block_max = nullptr);

  /// The scan block size (in points) a scanner over `dim`-dimensional
  /// points derives from `config` — the block_points a BlockMaxIndex must
  /// be built with to attach to that scanner. Exposed so index builders
  /// can construct the skip structure without instantiating a scanner.
  static size_t BlockPointsFor(size_t dim, BlockedScanConfig config = {});

  /// Per-query precomputed state shared by every weight batch: the full
  /// dominator set of q (Algorithm 1's Domin), found in one O(n·d) pass
  /// and amortized over all |W| scans. Dominated points are skipped by the
  /// scan and pre-counted into every weight's rank — the same facts the
  /// weight-at-a-time scan discovers incrementally.
  struct QueryContext {
    std::vector<uint8_t> dominated;  // 1 byte per point; empty if unused
    int64_t dominator_count = 0;
    /// Dominated-point count per scan block (block_points() points each;
    /// empty iff `dominated` is). Lets RankPreparedMulti's block-aggregate
    /// fast paths account for skipped points without touching the byte
    /// mask.
    std::vector<uint32_t> block_dominated;
  };

  QueryContext MakeQueryContext(ConstRow q, bool use_domin) const;

  /// Builds the per-weight bound state for weights [w_begin, w_end) into
  /// `scratch` (lookup rows for table modes, U-L gaps for uniform
  /// kExactWeight). Split from RankPrepared so multi-query entry points
  /// amortize it across queries.
  void PrepareBatch(size_t w_begin, size_t w_end,
                    BlockedScratch& scratch) const;

  /// Computes rank(w, q) for each prepared weight. ranks[i] receives the
  /// exact rank of weight w_begin+i if it is < thresholds[i], otherwise
  /// kRankOverThreshold — the same contract as GInTopK. Requires a
  /// preceding PrepareBatch(w_begin, w_end, scratch).
  void RankPrepared(ConstRow q, const QueryContext& qctx, size_t w_begin,
                    size_t w_end, const int64_t* thresholds, int64_t* ranks,
                    BlockedScratch& scratch, QueryStats* stats) const;

  /// PrepareBatch + RankPrepared in one call (the single-query path).
  void RankBatch(ConstRow q, const QueryContext& qctx, size_t w_begin,
                 size_t w_end, const int64_t* thresholds, int64_t* ranks,
                 BlockedScratch& scratch, QueryStats* stats) const;

  /// Multi-query analogue of RankPrepared: resolves a whole block of
  /// `num_queries` queries against the prepared weights in one pass over
  /// the point blocks. Each (block, weight) bound accumulation — the
  /// scan's dominant cost — runs once per query *batch* instead of once
  /// per query, and exact scores computed while refining one query's band
  /// are cached and reused by the rest of the block. `queries[r]` /
  /// `qctxs[r]` describe the r-th query; `thresholds` and `ranks` are
  /// row-major num_queries x (w_end - w_begin). ranks[r * batch + i]
  /// receives the exact rank(w_begin+i, q_r) if < thresholds[r * batch +
  /// i], else kRankOverThreshold; a threshold <= qctxs[r].dominator_count
  /// (e.g. 0) masks its slot at no scan cost. Per query, every verdict is
  /// identical to a RankPrepared call with the same thresholds. Requires
  /// a preceding PrepareBatch(w_begin, w_end, scratch).
  void RankPreparedMulti(const ConstRow* queries, const QueryContext* qctxs,
                         size_t num_queries, size_t w_begin, size_t w_end,
                         const int64_t* thresholds, int64_t* ranks,
                         BlockedScratch& scratch, QueryStats* stats) const;

  /// Bounds-only bracketing pre-pass for multi-query k-ranks: writes a
  /// sound bracket lb <= rank(w_begin+i, q_r) <= ub for every slot,
  /// derived purely from the per-(block, weight) bound aggregates (min /
  /// max and 64-bin histograms of the lower and upper bounds) — no
  /// per-point classification and no exact scores. One sweep over all
  /// point blocks costs roughly one bound accumulation per (block,
  /// weight) plus O(1) per slot per block. `lb` / `ub` are row-major with
  /// `row_stride` (entry r * row_stride + i) and are overwritten. A
  /// k-ranks driver uses the k-th smallest ub per query as a sound cap on
  /// the query's final k-th rank: any weight with lb above the cap is
  /// provably outside the answer and can be masked from the exact pass.
  /// Requires a preceding PrepareBatch(w_begin, w_end, scratch).
  void BracketRanksMulti(const ConstRow* queries, const QueryContext* qctxs,
                         size_t num_queries, size_t w_begin, size_t w_end,
                         int64_t* lb, int64_t* ub, size_t row_stride,
                         BlockedScratch& scratch, QueryStats* stats) const;

  size_t weight_batch() const { return config_.weight_batch; }
  size_t block_points() const { return block_points_; }

  /// The block-max index armed at construction, or nullptr if none was
  /// given (or the given one did not match this scanner's geometry).
  const BlockMaxIndex* block_max() const { return bmx_; }

 private:
  const Dataset* points_;
  const ApproxVectors* point_cells_;
  const Dataset* weights_;
  const ApproxVectors* weight_cells_;
  const GridIndex* grid_;
  BoundMode mode_;
  BlockedScanConfig config_;
  size_t block_points_;
  bool uniform_fma_;    // kExactWeight on a uniform partitioner: FMA kernel
  double cell_width_;   // uniform grids: alpha[1] - alpha[0]
  const BlockMaxIndex* bmx_ = nullptr;  // armed skip structure, or null
};

}  // namespace gir

#endif  // GIR_GRID_BLOCKED_SCAN_H_

#include "grid/dynamic_index.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/simd.h"
#include "core/thread_pool.h"
#include "core/types.h"
#include "grid/parallel_gir.h"

namespace gir {

namespace {

/// Keeps the `cap` smallest entries by (rank, id): max-heap, front worst.
void PushRanked(std::vector<RankedWeight>& heap, size_t cap,
                const RankedWeight& entry) {
  if (heap.size() < cap) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end());
  } else if (entry < heap.front()) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = entry;
    std::push_heap(heap.begin(), heap.end());
  }
}

void InsertSorted(std::vector<double>& v, double value) {
  v.insert(std::upper_bound(v.begin(), v.end(), value), value);
}

bool EraseSorted(std::vector<double>& v, double value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) return false;
  v.erase(it);
  return true;
}

/// #{x in v : x < s} — the strict-< correction count. The stored scores
/// and `s` share one rounding (the unfused kernels), so this matches the
/// oracle's InnerProduct comparisons bit for bit.
int64_t CountStrictlyBelow(const std::vector<double>& v, double s) {
  return static_cast<int64_t>(std::lower_bound(v.begin(), v.end(), s) -
                              v.begin());
}

/// Minimum number of fallback weights before the dirty paths pay for the
/// blocked scanner's O(n·d) dominance pass. Below this the per-weight
/// bound-filtered scans are cheaper than building the Domin buffer; the
/// choice does not affect results.
constexpr size_t kDominMinWeights = 8;

}  // namespace

struct DynamicGirIndex::QueryPrep {
  std::vector<double> fq;       // f_{w_h}(q) per weight handle
  std::vector<int64_t> added;   // live delta scores strictly below fq[h]
  std::vector<int64_t> removed;  // dead base scores strictly below fq[h]
  std::vector<uint8_t> known;   // added/removed computed for handle h
  std::vector<uint32_t> sel;    // SelectLessEqual candidate scratch
};

// ---- Construction -------------------------------------------------------

Result<DynamicGirIndex> DynamicGirIndex::Build(
    const Dataset& points, const Dataset& weights,
    const DynamicIndexOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("point set must be non-empty");
  }
  if (points.dim() != weights.dim()) {
    return Status::InvalidArgument("dimension mismatch between P and W");
  }
  if (!(options.compact_threshold > 0.0)) {
    return Status::InvalidArgument("compact_threshold must be positive");
  }
  DynamicGirIndex index;
  index.options_ = options;
  index.base_points_ = std::make_unique<Dataset>(points);
  index.base_weights_ = std::make_unique<Dataset>(weights);
  index.delta_points_ = std::make_unique<Dataset>(points.dim());
  index.delta_weights_ = std::make_unique<Dataset>(points.dim());
  index.base_point_alive_.Assign(points.size(), true);
  index.base_weight_alive_.Assign(weights.size(), true);
  Status st = index.Init(nullptr);
  if (!st.ok()) return st;
  return index;
}

Result<DynamicGirIndex> DynamicGirIndex::FromParts(
    const DynamicIndexOptions& options, uint64_t generation,
    Dataset base_points, Dataset base_weights,
    std::vector<uint8_t> base_point_alive,
    std::vector<uint8_t> base_weight_alive, Dataset delta_points,
    Dataset delta_weights, std::vector<uint8_t> delta_point_alive,
    std::vector<uint8_t> delta_weight_alive,
    std::shared_ptr<const TauIndex> tau) {
  if (base_points.empty()) {
    return Status::InvalidArgument("base point set must be non-empty");
  }
  const size_t dim = base_points.dim();
  if (base_weights.dim() != dim || delta_points.dim() != dim ||
      delta_weights.dim() != dim) {
    return Status::InvalidArgument("component dimension mismatch");
  }
  if (!(options.compact_threshold > 0.0)) {
    return Status::InvalidArgument("compact_threshold must be positive");
  }
  if (base_point_alive.size() != base_points.size() ||
      base_weight_alive.size() != base_weights.size() ||
      delta_point_alive.size() != delta_points.size() ||
      delta_weight_alive.size() != delta_weights.size()) {
    return Status::InvalidArgument("alive bitmap size mismatch");
  }
  for (const std::vector<uint8_t>* bitmap :
       {&base_point_alive, &base_weight_alive, &delta_point_alive,
        &delta_weight_alive}) {
    for (uint8_t b : *bitmap) {
      if (b > 1) return Status::InvalidArgument("alive bitmap byte not 0/1");
    }
  }
  DynamicGirIndex index;
  index.options_ = options;
  index.generation_ = generation;
  index.base_points_ = std::make_unique<Dataset>(std::move(base_points));
  index.base_weights_ = std::make_unique<Dataset>(std::move(base_weights));
  index.delta_points_ = std::make_unique<Dataset>(std::move(delta_points));
  index.delta_weights_ = std::make_unique<Dataset>(std::move(delta_weights));
  index.base_point_alive_ = RankSelectBitmap::FromBytes(base_point_alive);
  index.base_weight_alive_ = RankSelectBitmap::FromBytes(base_weight_alive);
  index.delta_point_alive_ = RankSelectBitmap::FromBytes(delta_point_alive);
  index.delta_weight_alive_ = RankSelectBitmap::FromBytes(delta_weight_alive);
  Status st = index.Init(std::move(tau));
  if (!st.ok()) return st;
  // A live delta weight above the generation's weight grid range cannot
  // exist in a saved index (such inserts compact immediately) and would
  // make the paper-mode grid bounds unsound.
  const double top =
      index.gir_->grid().weight_partitioner().boundaries().back();
  for (size_t j = 0; j < index.delta_weights_->size(); ++j) {
    if (!index.delta_weight_alive_.Get(j)) continue;
    ConstRow row = index.delta_weights_->row(j);
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i] > top) {
        return Status::InvalidArgument(
            "live delta weight exceeds the weight grid range");
      }
    }
  }
  return index;
}

Status DynamicGirIndex::Init(std::shared_ptr<const TauIndex> tau) {
  GirOptions gir_options = options_.gir;
  const bool want_tau = gir_options.scan_mode == ScanMode::kTauIndex;
  if (tau != nullptr && want_tau) {
    // A persisted τ-index replaces the expensive build-time sweep; Build
    // must not run it a second time.
    gir_options.scan_mode = ScanMode::kBlocked;
  }
  auto built = GirIndex::Build(*base_points_, *base_weights_, gir_options);
  if (!built.ok()) return built.status();
  gir_.emplace(std::move(built).value());
  if (tau != nullptr && want_tau) {
    Status st = gir_->AttachTauIndex(std::move(tau));
    if (!st.ok()) return st;
    gir_->set_scan_mode(ScanMode::kTauIndex);
  }

  const size_t nbp = base_points_->size();
  const size_t ndp = delta_points_->size();
  const size_t nbw = base_weights_->size();
  const size_t ndw = delta_weights_->size();
  dead_base_points_ = base_point_alive_.zeros();
  dead_base_weights_ = base_weight_alive_.zeros();
  dead_delta_points_ = delta_point_alive_.zeros();
  dead_delta_weights_ = delta_weight_alive_.zeros();

  live_point_ids_.clear();
  live_point_ids_.reserve(nbp + ndp);
  for (size_t i = 0; i < nbp; ++i) {
    if (base_point_alive_.Get(i)) {
      live_point_ids_.push_back(static_cast<uint32_t>(i));
    }
  }
  for (size_t j = 0; j < ndp; ++j) {
    if (delta_point_alive_.Get(j)) {
      live_point_ids_.push_back(static_cast<uint32_t>(nbp + j));
    }
  }
  live_weight_ids_.clear();
  live_weight_ids_.reserve(nbw + ndw);
  for (size_t i = 0; i < nbw; ++i) {
    if (base_weight_alive_.Get(i)) {
      live_weight_ids_.push_back(static_cast<uint32_t>(i));
    }
  }
  for (size_t j = 0; j < ndw; ++j) {
    if (delta_weight_alive_.Get(j)) {
      live_weight_ids_.push_back(static_cast<uint32_t>(nbw + j));
    }
  }
  RebuildLiveWeightMap();
  RebuildWeightColumns();
  RebuildDeltaWeightCells();

  const size_t mh = num_weight_handles();
  dead_scores_.assign(mh, {});
  delta_scores_.assign(mh, {});
  std::vector<double> sp(mh);
  for (size_t i = 0; i < nbp; ++i) {
    if (base_point_alive_.Get(i)) continue;
    ScorePointUnderWeights(base_points_->row(i), sp.data());
    for (uint32_t h : live_weight_ids_) dead_scores_[h].push_back(sp[h]);
  }
  for (size_t j = 0; j < ndp; ++j) {
    if (!delta_point_alive_.Get(j)) continue;
    ScorePointUnderWeights(delta_points_->row(j), sp.data());
    for (uint32_t h : live_weight_ids_) delta_scores_[h].push_back(sp[h]);
  }
  for (uint32_t h : live_weight_ids_) {
    std::sort(dead_scores_[h].begin(), dead_scores_[h].end());
    std::sort(delta_scores_[h].begin(), delta_scores_[h].end());
  }
  delta_weight_base_scores_.assign(ndw, CompressedScoreArray());
  for (uint32_t h : live_weight_ids_) {
    if (h < nbw) continue;
    ConstRow wrow = delta_weights_->row(h - nbw);
    std::vector<double> base_row;
    base_row.reserve(nbp);
    for (size_t i = 0; i < nbp; ++i) {
      base_row.push_back(InnerProduct(wrow, base_points_->row(i)));
    }
    std::sort(base_row.begin(), base_row.end());
    delta_weight_base_scores_[h - nbw] =
        CompressedScoreArray::FromSorted(std::move(base_row));
  }
  SeedLiveTau();
  return Status::OK();
}

// ---- Internal plumbing --------------------------------------------------

bool DynamicGirIndex::weight_handle_alive(size_t h) const {
  const size_t nbw = base_weights_->size();
  return h < nbw ? base_weight_alive_.Get(h)
                 : delta_weight_alive_.Get(h - nbw);
}

ConstRow DynamicGirIndex::PointRowOfHandle(size_t h) const {
  const size_t nbp = base_points_->size();
  return h < nbp ? base_points_->row(h) : delta_points_->row(h - nbp);
}

ConstRow DynamicGirIndex::WeightRowOfHandle(size_t h) const {
  const size_t nbw = base_weights_->size();
  return h < nbw ? base_weights_->row(h) : delta_weights_->row(h - nbw);
}

void DynamicGirIndex::ScoreWeightHandles(ConstRow q, double* fq) const {
  const size_t mh = num_weight_handles();
  if (mh == 0) return;
  if (q.size() == 0) {
    std::fill(fq, fq + mh, 0.0);
    return;
  }
  // The first dimension writes instead of accumulating, so callers need
  // not pre-zero `fq`. Bit-identity to the accumulate-from-zero kernels
  // holds: 0.0 + x == x for every product except a sign-of-zero flip,
  // which is invisible to the value comparisons these scores feed.
  const double* col0 = wcol_.data();
  const double q0 = q[0];
  for (size_t h = 0; h < mh; ++h) fq[h] = col0[h] * q0;
  for (size_t i = 1; i < q.size(); ++i) {
    simd::AccumulateScaledDoubles(wcol_.data() + i * wcol_stride_, q[i], fq,
                                  mh);
  }
}

void DynamicGirIndex::ScorePointUnderWeights(ConstRow p,
                                             double* scores) const {
  ScoreWeightHandles(p, scores);
}

void DynamicGirIndex::RebuildLiveWeightMap() {
  weight_handle_to_live_.assign(num_weight_handles(),
                                static_cast<VectorId>(-1));
  for (size_t li = 0; li < live_weight_ids_.size(); ++li) {
    weight_handle_to_live_[live_weight_ids_[li]] =
        static_cast<VectorId>(li);
  }
}

void DynamicGirIndex::RebuildWeightColumns() {
  const size_t nbw = base_weights_->size();
  const size_t ndw = delta_weights_->size();
  const size_t d = dim();
  wcol_stride_ = nbw + ndw;
  wcol_.assign(d * wcol_stride_, 0.0);
  for (size_t h = 0; h < nbw; ++h) {
    ConstRow row = base_weights_->row(h);
    for (size_t i = 0; i < d; ++i) wcol_[i * wcol_stride_ + h] = row[i];
  }
  for (size_t j = 0; j < ndw; ++j) {
    ConstRow row = delta_weights_->row(j);
    for (size_t i = 0; i < d; ++i) {
      wcol_[i * wcol_stride_ + nbw + j] = row[i];
    }
  }
}

void DynamicGirIndex::RebuildDeltaWeightCells() {
  delta_weight_cells_.emplace(
      ApproxVectors::Build(*delta_weights_, gir_->grid().weight_partitioner()));
}

void DynamicGirIndex::SeedLiveTau() {
  live_tau_.clear();
  live_tau_valid_.clear();
  live_tau_cap_ = 0;
  delta_live_tau_.assign(delta_weights_->size(), {});
  delta_live_tau_valid_.assign(delta_weights_->size(), 0);
  const TauIndex* tau = gir_->tau_index();
  if (tau == nullptr) return;
  const size_t nbw = base_weights_->size();
  live_tau_cap_ = tau->k_cap();
  if (live_tau_cap_ == 0 || nbw == 0) {
    live_tau_cap_ = 0;
    return;
  }
  live_tau_.assign(live_tau_cap_ * nbw, 0.0);
  live_tau_valid_.assign(nbw, 0);
  std::vector<double> head;
  head.reserve(live_tau_cap_);
  for (size_t h = 0; h < nbw; ++h) {
    if (!base_weight_alive_.Get(h)) continue;
    // Known prefix of the live score multiset under handle h: the τ
    // column minus the tombstoned occurrences, merged with the live
    // delta scores. Every untracked base score is >= cut (the last τ
    // entry), so exactly the merged entries <= cut are trustworthy live
    // order statistics.
    const double cut = tau->Threshold(h, live_tau_cap_);
    const std::vector<double>& dead = dead_scores_[h];
    head.clear();
    size_t di = 0;
    bool consistent = true;
    for (size_t t = 1; t <= live_tau_cap_; ++t) {
      const double v = tau->Threshold(h, t);
      if (di < dead.size() && dead[di] < v) {
        // A tombstoned score below the τ horizon must be one of its
        // occurrences; a miss means the stored corrections and the τ
        // build disagree bit-wise — leave the handle on the slow path.
        consistent = false;
        break;
      }
      if (di < dead.size() && dead[di] == v) {
        ++di;
        continue;
      }
      head.push_back(v);
    }
    if (!consistent || (di < dead.size() && dead[di] < cut)) continue;
    const std::vector<double>& delta = delta_scores_[h];
    size_t bi = 0;
    size_t gi = 0;
    uint32_t out = 0;
    while (out < live_tau_cap_) {
      double v;
      if (bi < head.size() &&
          (gi >= delta.size() || head[bi] <= delta[gi])) {
        v = head[bi++];
      } else if (gi < delta.size()) {
        v = delta[gi++];
      } else {
        break;
      }
      if (v > cut) break;
      live_tau_[out * nbw + h] = v;
      ++out;
    }
    live_tau_valid_[h] = out;
  }
  for (size_t j = 0; j < delta_weights_->size(); ++j) {
    if (delta_weight_alive_.Get(j)) SeedDeltaHead(j);
  }
  live_tau_min_valid_ = static_cast<uint32_t>(live_tau_cap_);
  for (uint32_t h : live_weight_ids_) {
    const uint32_t v = h < nbw ? live_tau_valid_[h]
                               : delta_live_tau_valid_[h - nbw];
    live_tau_min_valid_ = std::min(live_tau_min_valid_, v);
  }
}

void DynamicGirIndex::SeedDeltaHead(size_t j) {
  if (live_tau_cap_ == 0) return;
  const size_t h = base_weights_->size() + j;
  const CompressedScoreArray& base = delta_weight_base_scores_[j];
  const std::vector<double>& dead = dead_scores_[h];
  const std::vector<double>& delta = delta_scores_[h];
  // Unlike the base handles there is no τ horizon here: `base` holds
  // every base score, so the first live_tau_cap_ live order statistics
  // of (base minus dead) merged with delta are exact. The difference
  // walk still demands bit-exact tombstone matches (the arrays come
  // from the same kernels, so a miss means corrupted bookkeeping) and
  // leaves the head empty — slow path — rather than trusting it. The
  // base scores stream out of the compressed array through a forward
  // cursor: the merge needs only the head, never a random access.
  std::vector<double>& row = delta_live_tau_[j];
  row.assign(live_tau_cap_, 0.0);
  uint32_t out = 0;
  CompressedScoreArray::Cursor bc = base.begin();
  size_t di = 0;
  size_t gi = 0;
  while (out < live_tau_cap_) {
    while (bc.valid() && di < dead.size() && dead[di] == bc.value()) {
      ++di;
      bc.Next();
    }
    if (di < dead.size() && bc.valid() && dead[di] < bc.value()) {
      delta_live_tau_valid_[j] = 0;
      return;
    }
    if (bc.valid() && (gi >= delta.size() || bc.value() <= delta[gi])) {
      row[out++] = bc.value();
      bc.Next();
    } else if (gi < delta.size()) {
      row[out++] = delta[gi++];
    } else {
      break;
    }
  }
  delta_live_tau_valid_[j] = out;
}

void DynamicGirIndex::LiveTauInsert(size_t h, double s) {
  if (live_tau_cap_ == 0) return;
  const size_t nbw = base_weights_->size();
  double* col;
  size_t stride;
  uint32_t* valid;
  if (h < nbw) {
    col = live_tau_.data() + h;
    stride = nbw;
    valid = &live_tau_valid_[h];
  } else {
    col = delta_live_tau_[h - nbw].data();
    stride = 1;
    valid = &delta_live_tau_valid_[h - nbw];
  }
  const uint32_t v = *valid;
  if (v == 0 || s > col[(v - 1) * stride]) return;
  // s enters the tracked head: strided upper-bound, shift the column tail
  // down one row, and grow the valid length if there is capacity (the
  // displaced entry was the (v+1)-th smallest, so knowledge extends).
  size_t lo = 0;
  size_t hi = v;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (col[mid * stride] <= s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint32_t nv =
      std::min<uint32_t>(v + 1, static_cast<uint32_t>(live_tau_cap_));
  if (lo >= nv) return;  // at capacity and s is the largest — falls off
  for (size_t t = nv - 1; t > lo; --t) {
    col[t * stride] = col[(t - 1) * stride];
  }
  col[lo * stride] = s;
  *valid = nv;
}

void DynamicGirIndex::LiveTauErase(size_t h, double s) {
  if (live_tau_cap_ == 0) return;
  const size_t nbw = base_weights_->size();
  double* col;
  size_t stride;
  uint32_t* valid;
  if (h < nbw) {
    col = live_tau_.data() + h;
    stride = nbw;
    valid = &live_tau_valid_[h];
  } else {
    col = delta_live_tau_[h - nbw].data();
    stride = 1;
    valid = &delta_live_tau_valid_[h - nbw];
  }
  const uint32_t v = *valid;
  if (v == 0 || s > col[(v - 1) * stride]) return;
  size_t lo = 0;
  size_t hi = v;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (col[mid * stride] < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= v || col[lo * stride] != s) {
    // A live score below the horizon must be tracked; degrade to the
    // correction path rather than serve a stale threshold.
    *valid = 0;
    live_tau_min_valid_ = 0;
    return;
  }
  for (size_t t = lo; t + 1 < v; ++t) {
    col[t * stride] = col[(t + 1) * stride];
  }
  *valid = v - 1;
  live_tau_min_valid_ = std::min(live_tau_min_valid_, v - 1);
}

uint32_t DynamicGirIndex::LiveTauPositionBound(size_t h, double s) const {
  if (live_tau_cap_ == 0) return 1;
  const size_t nbw = base_weights_->size();
  const double* col;
  size_t stride;
  uint32_t v;
  if (h < nbw) {
    col = live_tau_.data() + h;
    stride = nbw;
    v = live_tau_valid_[h];
  } else {
    col = delta_live_tau_[h - nbw].data();
    stride = 1;
    v = delta_live_tau_valid_[h - nbw];
  }
  if (v == 0) return 1;
  // Beyond the tracked horizon every head entry is < s, so at least v
  // scores precede it. Within it, the head holds every live score < s
  // (it is a prefix of the sorted live multiset), so the strided
  // lower-bound index is the exact strict-below count.
  if (s > col[(v - 1) * stride]) return v + 1;
  size_t lo = 0;
  size_t hi = v;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (col[mid * stride] < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint32_t>(lo) + 1;
}

void DynamicGirIndex::CopyLiveTauHead(size_t h, std::vector<double>* out) const {
  out->clear();
  if (live_tau_cap_ == 0) return;
  const size_t nbw = base_weights_->size();
  const double* col;
  size_t stride;
  uint32_t v;
  if (h < nbw) {
    col = live_tau_.data() + h;
    stride = nbw;
    v = live_tau_valid_[h];
  } else {
    col = delta_live_tau_[h - nbw].data();
    stride = 1;
    v = delta_live_tau_valid_[h - nbw];
  }
  out->reserve(v);
  for (uint32_t t = 0; t < v; ++t) out->push_back(col[t * stride]);
}

// ---- Mutations ----------------------------------------------------------

Status DynamicGirIndex::InsertPoint(ConstRow p) {
  Status st = delta_points_->Append(p);
  if (!st.ok()) return st;
  delta_point_alive_.PushBack(true);
  const size_t handle = base_points_->size() + delta_points_->size() - 1;
  const size_t mh = num_weight_handles();
  // Out-of-range point values are harmless: delta points are only ever
  // scored exactly (never through the grid), and the next compaction's
  // fresh partitioners absorb them.
  std::vector<double> sp(mh, 0.0);
  if (mh > 0) ScorePointUnderWeights(p, sp.data());
  uint32_t band = std::numeric_limits<uint32_t>::max();
  for (uint32_t h : live_weight_ids_) {
    InsertSorted(delta_scores_[h], sp[h]);
    LiveTauInsert(h, sp[h]);
    // Post-insert head: the new score is tracked when it is within the
    // horizon, so the position bound is exact there (DESIGN.md §16).
    band = std::min(band, LiveTauPositionBound(h, sp[h]));
  }
  last_point_band_ = band;
  live_point_ids_.push_back(static_cast<uint32_t>(handle));
  return MaybeAutoCompact();
}

Status DynamicGirIndex::DeletePoint(VectorId live_id) {
  if (live_id >= live_point_ids_.size()) {
    return Status::InvalidArgument("point live id out of range");
  }
  const size_t h = live_point_ids_[live_id];
  const size_t nbp = base_points_->size();
  const size_t mh = num_weight_handles();
  std::vector<double> sp(mh, 0.0);
  if (mh > 0) ScorePointUnderWeights(PointRowOfHandle(h), sp.data());
  uint32_t band = std::numeric_limits<uint32_t>::max();
  if (h < nbp) {
    base_point_alive_.Set(h, false);
    ++dead_base_points_;
    for (uint32_t w : live_weight_ids_) {
      InsertSorted(dead_scores_[w], sp[w]);
      // Pre-erase head: the dying score is still tracked, so its live
      // position reads off the head exactly as for an insert.
      band = std::min(band, LiveTauPositionBound(w, sp[w]));
      LiveTauErase(w, sp[w]);
    }
  } else {
    delta_point_alive_.Set(h - nbp, false);
    ++dead_delta_points_;
    for (uint32_t w : live_weight_ids_) {
      if (!EraseSorted(delta_scores_[w], sp[w])) {
        return Status::Internal("delta score bookkeeping mismatch");
      }
      band = std::min(band, LiveTauPositionBound(w, sp[w]));
      LiveTauErase(w, sp[w]);
    }
  }
  last_point_band_ = band;
  live_point_ids_.erase(live_point_ids_.begin() + live_id);
  return MaybeAutoCompact();
}

Status DynamicGirIndex::InsertWeight(ConstRow w) {
  if (w.size() != dim()) {
    return Status::InvalidArgument("weight width does not match dim");
  }
  // The dominance pre-count (Domin) is sound only for preference vectors;
  // enforce the same tolerance ValidateWeightDataset uses.
  Status vst = ValidateWeight(w, 1e-6);
  if (!vst.ok()) return vst;
  Status st = delta_weights_->Append(w);
  if (!st.ok()) return st;
  delta_weight_alive_.PushBack(true);
  const size_t h = base_weights_->size() + delta_weights_->size() - 1;
  dead_scores_.emplace_back();
  delta_scores_.emplace_back();
  std::vector<double>& dead_row = dead_scores_.back();
  std::vector<double>& delta_row = delta_scores_.back();
  ConstRow wrow = delta_weights_->row(delta_weights_->size() - 1);
  // One exact pass over every base row: the full sorted array makes
  // rank_base(w, q) a binary search at query time (no blocked fallback
  // for delta weights), and the dead subset comes out of the same pass.
  // The array is immutable once sorted, so it is stored delta-coded.
  std::vector<double> base_row;
  base_row.reserve(base_points_->size());
  for (size_t i = 0; i < base_points_->size(); ++i) {
    const double s = InnerProduct(wrow, base_points_->row(i));
    base_row.push_back(s);
    if (!base_point_alive_.Get(i)) dead_row.push_back(s);
  }
  for (size_t j = 0; j < delta_points_->size(); ++j) {
    if (!delta_point_alive_.Get(j)) continue;
    delta_row.push_back(InnerProduct(wrow, delta_points_->row(j)));
  }
  std::sort(base_row.begin(), base_row.end());
  std::sort(dead_row.begin(), dead_row.end());
  std::sort(delta_row.begin(), delta_row.end());
  delta_weight_base_scores_.push_back(
      CompressedScoreArray::FromSorted(std::move(base_row)));
  delta_live_tau_.emplace_back();
  delta_live_tau_valid_.push_back(0);
  SeedDeltaHead(delta_weights_->size() - 1);
  if (live_tau_cap_ != 0) {
    live_tau_min_valid_ =
        std::min(live_tau_min_valid_, delta_live_tau_valid_.back());
  }
  live_weight_ids_.push_back(static_cast<uint32_t>(h));
  RebuildLiveWeightMap();
  RebuildWeightColumns();
  RebuildDeltaWeightCells();
  // A weight value above the grid's top boundary would be clamped by the
  // cell quantization, making the paper-mode bounds unsound — fold the
  // delta into a fresh generation whose partitioners cover it.
  const double top = gir_->grid().weight_partitioner().boundaries().back();
  bool force_compact = false;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > top) force_compact = true;
  }
  Status cst = force_compact ? Compact() : MaybeAutoCompact();
  // Snapshot the new weight's live-τ head for the server's result-cache
  // probe — after any compaction, so the head matches the state a query
  // would now observe (the new weight is the last live weight either
  // way).
  last_weight_head_.clear();
  if (cst.ok() && !live_weight_ids_.empty()) {
    CopyLiveTauHead(live_weight_ids_.back(), &last_weight_head_);
  }
  return cst;
}

Status DynamicGirIndex::DeleteWeight(VectorId live_id) {
  if (live_id >= live_weight_ids_.size()) {
    return Status::InvalidArgument("weight live id out of range");
  }
  const size_t h = live_weight_ids_[live_id];
  const size_t nbw = base_weights_->size();
  if (h < nbw) {
    base_weight_alive_.Set(h, false);
    ++dead_base_weights_;
  } else {
    delta_weight_alive_.Set(h - nbw, false);
    ++dead_delta_weights_;
  }
  dead_scores_[h].clear();
  dead_scores_[h].shrink_to_fit();
  delta_scores_[h].clear();
  delta_scores_[h].shrink_to_fit();
  if (h >= nbw) {
    delta_weight_base_scores_[h - nbw] = CompressedScoreArray();
    delta_live_tau_[h - nbw].clear();
    delta_live_tau_[h - nbw].shrink_to_fit();
    if (live_tau_cap_ != 0) delta_live_tau_valid_[h - nbw] = 0;
  } else if (live_tau_cap_ != 0) {
    live_tau_valid_[h] = 0;  // dead handles keep no live thresholds
  }
  live_weight_ids_.erase(live_weight_ids_.begin() + live_id);
  RebuildLiveWeightMap();
  return MaybeAutoCompact();
}

Status DynamicGirIndex::Compact() {
  if (!dirty()) return Status::OK();
  if (live_point_ids_.empty()) {
    return Status::InvalidArgument(
        "cannot compact with no live points (an index over an empty P "
        "cannot be built)");
  }
  Dataset live_points = LivePoints();
  Dataset live_weights = LiveWeights();
  *base_points_ = std::move(live_points);
  *base_weights_ = std::move(live_weights);
  *delta_points_ = Dataset(base_points_->dim());
  *delta_weights_ = Dataset(base_points_->dim());
  base_point_alive_.Assign(base_points_->size(), true);
  base_weight_alive_.Assign(base_weights_->size(), true);
  delta_point_alive_.Assign(0, false);
  delta_weight_alive_.Assign(0, false);
  ++generation_;
  return Init(nullptr);
}

Status DynamicGirIndex::MaybeAutoCompact() {
  if (!options_.auto_compact) return Status::OK();
  if (live_point_ids_.empty()) return Status::OK();
  if (ChurnFraction() <= options_.compact_threshold) return Status::OK();
  return Compact();
}

// ---- Introspection ------------------------------------------------------

bool DynamicGirIndex::dirty() const {
  return dead_base_points_ + dead_base_weights_ + delta_points_->size() +
             delta_weights_->size() >
         0;
}

double DynamicGirIndex::ChurnFraction() const {
  const double churn =
      static_cast<double>(delta_points_->size() + delta_weights_->size() +
                          dead_base_points_ + dead_base_weights_);
  const double base =
      static_cast<double>(base_points_->size() + base_weights_->size());
  return base > 0.0 ? churn / base : 0.0;
}

DynamicGirIndex::MemoryBreakdown DynamicGirIndex::MemoryBytes() const {
  MemoryBreakdown mb;
  const TauIndex* tau = gir_->tau_index();
  const BlockMaxIndex* bmx = gir_->block_max().get();
  mb.tau_bytes = tau != nullptr ? tau->MemoryBytes() : 0;
  mb.block_max_bytes = bmx != nullptr ? bmx->MemoryBytes() : 0;
  // GirIndex::MemoryBytes folds τ and block-max in; peel them back out so
  // the sections are disjoint and sum to the engine total.
  mb.base_bytes = gir_->MemoryBytes() - mb.tau_bytes - mb.block_max_bytes;
  mb.bitmap_bytes = base_point_alive_.MemoryBytes() +
                    base_weight_alive_.MemoryBytes() +
                    delta_point_alive_.MemoryBytes() +
                    delta_weight_alive_.MemoryBytes();
  mb.delta_bytes = (delta_points_->size() + delta_weights_->size()) * dim() *
                   sizeof(double);
  for (const std::vector<double>& v : dead_scores_) {
    mb.delta_bytes += v.capacity() * sizeof(double);
  }
  for (const std::vector<double>& v : delta_scores_) {
    mb.delta_bytes += v.capacity() * sizeof(double);
  }
  for (const CompressedScoreArray& a : delta_weight_base_scores_) {
    mb.delta_bytes += a.MemoryBytes();
  }
  mb.delta_bytes += live_tau_.capacity() * sizeof(double);
  for (const std::vector<double>& v : delta_live_tau_) {
    mb.delta_bytes += v.capacity() * sizeof(double);
  }
  return mb;
}

Dataset DynamicGirIndex::LivePoints() const {
  Dataset out(dim());
  out.Reserve(live_point_ids_.size());
  for (uint32_t h : live_point_ids_) out.AppendUnchecked(PointRowOfHandle(h));
  return out;
}

Dataset DynamicGirIndex::LiveWeights() const {
  Dataset out(dim());
  out.Reserve(live_weight_ids_.size());
  for (uint32_t h : live_weight_ids_) {
    out.AppendUnchecked(WeightRowOfHandle(h));
  }
  return out;
}

// ---- Query machinery ----------------------------------------------------

void DynamicGirIndex::PrepareQuery(ConstRow q, QueryPrep& prep,
                                   QueryStats* stats) const {
  const size_t mh = num_weight_handles();
  prep.fq.resize(mh);
  prep.known.clear();  // re-arm the lazy corrections for a reused prep
  ScoreWeightHandles(q, prep.fq.data());
  if (stats != nullptr) {
    stats->weights_evaluated += live_weight_ids_.size();
    stats->inner_products += mh;
    stats->multiplications += mh * dim();
  }
}

void DynamicGirIndex::EnsureCorrections(QueryPrep& prep, size_t h) const {
  if (prep.known.empty()) {
    // Correction arrays materialize on first demand: queries decided
    // entirely by the live τ heads never pay these allocations.
    const size_t mh = num_weight_handles();
    prep.added.assign(mh, 0);
    prep.removed.assign(mh, 0);
    prep.known.assign(mh, 0);
  }
  if (prep.known[h] != 0) return;
  prep.known[h] = 1;
  prep.removed[h] = CountStrictlyBelow(dead_scores_[h], prep.fq[h]);
  prep.added[h] = CountStrictlyBelow(delta_scores_[h], prep.fq[h]);
}

void DynamicGirIndex::RunFallbackRanks(
    const BlockedScanner& scanner, const BlockedScanner::QueryContext& qctx,
    ConstRow q, const int64_t* thresholds, size_t m, ThreadPool* pool,
    QueryStats* stats,
    const std::function<void(size_t, int64_t)>& emit) const {
  const size_t batch = scanner.weight_batch();
  std::vector<size_t> starts;
  for (size_t b = 0; b < m; b += batch) {
    const size_t e = std::min(b + batch, m);
    for (size_t w = b; w < e; ++w) {
      if (thresholds[w] > 0) {
        starts.push_back(b);
        break;
      }
    }
  }
  if (starts.empty()) return;
  auto run = [&](size_t ci_begin, size_t ci_end, QueryStats* run_stats,
                 std::vector<std::pair<size_t, int64_t>>& out) {
    BlockedScratch scratch;
    std::vector<int64_t> thr;
    std::vector<int64_t> ranks;
    for (size_t ci = ci_begin; ci < ci_end; ++ci) {
      const size_t b = starts[ci];
      const size_t e = std::min(b + batch, m);
      thr.assign(thresholds + b, thresholds + e);
      ranks.resize(e - b);
      scanner.RankBatch(q, qctx, b, e, thr.data(), ranks.data(), scratch,
                        run_stats);
      for (size_t i = 0; i < e - b; ++i) {
        if (thr[i] > 0 && ranks[i] != kRankOverThreshold) {
          out.emplace_back(b + i, ranks[i]);
        }
      }
    }
  };
  std::vector<std::pair<size_t, int64_t>> found;
  if (pool == nullptr || pool->thread_count() <= 1 || starts.size() < 2) {
    run(0, starts.size(), stats, found);
  } else {
    std::mutex merge_mutex;
    pool->ParallelFor(0, starts.size(), 1,
                      [&](size_t ci_begin, size_t ci_end) {
                        QueryStats local_stats;
                        std::vector<std::pair<size_t, int64_t>> local;
                        run(ci_begin, ci_end,
                            stats != nullptr ? &local_stats : nullptr, local);
                        std::lock_guard<std::mutex> lock(merge_mutex);
                        if (stats != nullptr) *stats += local_stats;
                        found.insert(found.end(), local.begin(), local.end());
                      });
  }
  for (const auto& [w, rank] : found) emit(w, rank);
}

ReverseTopKResult DynamicGirIndex::DirtyReverseTopK(ConstRow q, size_t k,
                                                    ThreadPool* pool,
                                                    QueryStats* stats) const {
  ReverseTopKResult result;
  const size_t live_w = live_weight_ids_.size();
  if (k == 0 || live_w == 0) return result;
  if (k > live_point_ids_.size()) {
    // rank_live(w, q) <= |live P| < k for every live weight.
    result.resize(live_w);
    std::iota(result.begin(), result.end(), 0);
    return result;
  }
  const size_t nbp = base_points_->size();
  const size_t nbw = base_weights_->size();
  // Per-thread scratch: the dirty engines are called per query from both
  // serial and pool-striped batch drivers, and reuse keeps the scoring
  // buffer's allocation out of the per-query cost.
  static thread_local QueryPrep prep;
  PrepareQuery(q, prep, stats);
  if (live_tau_cap_ != 0 && k <= live_tau_min_valid_) {
    // Every live handle's patched head covers this k, so the whole
    // classification is the clean τ engine's kernel: one SIMD
    // select-less-equal of the query scores against the k-th live
    // threshold row. Dead base handles may be spuriously selected (their
    // rows are stale) and are dropped by the live-id lookup; the few
    // delta heads are row-contiguous scalar tests. live_weight_ids_ is
    // ascending (inserts append the largest handle), so emitting base
    // candidates then delta handles keeps the result sorted.
    prep.sel.resize(nbw);
    const size_t cnt = simd::SelectLessEqual(
        prep.fq.data(), live_tau_.data() + (k - 1) * nbw, nbw,
        prep.sel.data());
    for (size_t i = 0; i < cnt; ++i) {
      const VectorId li = weight_handle_to_live_[prep.sel[i]];
      if (li != static_cast<VectorId>(-1)) result.push_back(li);
    }
    const size_t first_delta =
        std::lower_bound(live_weight_ids_.begin(), live_weight_ids_.end(),
                         static_cast<uint32_t>(nbw)) -
        live_weight_ids_.begin();
    for (size_t li = first_delta; li < live_w; ++li) {
      const size_t h = live_weight_ids_[li];
      if (prep.fq[h] <= delta_live_tau_[h - nbw][k - 1]) {
        result.push_back(static_cast<VectorId>(li));
      }
    }
    return result;
  }
  const TauIndex* tau = gir_->tau_index();
  const int64_t k_cap =
      tau != nullptr ? static_cast<int64_t>(tau->k_cap()) : 0;
  // The correction extremes are uniform: every live handle's dead/delta
  // score arrays hold one entry per dead base point / live delta point,
  // so the conservative shifts hoist out of the loop.
  const int64_t t_lo = static_cast<int64_t>(k) -
                       static_cast<int64_t>(delta_points_->size() -
                                            dead_delta_points_);
  const int64_t t_hi =
      static_cast<int64_t>(k) + static_cast<int64_t>(dead_base_points_);
  std::vector<int64_t> base_thr(nbw, 0);
  size_t fallback_base = 0;
  for (size_t li = 0; li < live_w; ++li) {
    const size_t h = live_weight_ids_[li];
    // The incrementally patched live τ answers exactly: corrections are
    // already folded into the head, so this is the clean engine's row
    // test (one contiguous read per stream).
    if (live_tau_cap_ != 0) {
      if (h < nbw) {
        if (k <= live_tau_valid_[h]) {
          if (prep.fq[h] <= live_tau_[(k - 1) * nbw + h]) {
            result.push_back(static_cast<VectorId>(li));
          }
          continue;
        }
      } else if (k <= delta_live_tau_valid_[h - nbw]) {
        if (prep.fq[h] <= delta_live_tau_[h - nbw][k - 1]) {
          result.push_back(static_cast<VectorId>(li));
        }
        continue;
      }
    }
    // rank_live < k  ⟺  rank_base < k + removed − added =: t, where
    // removed ∈ [0, |dead scores|] and added ∈ [0, |delta scores|]. Try
    // to decide the weight against the extreme shifts first — the τ
    // row/histogram bounds rank_base in O(log k_cap), so a decisive
    // verdict skips the two correction binary searches entirely.
    if (tau != nullptr && h < nbw) {
      if (t_lo > static_cast<int64_t>(nbp)) {
        result.push_back(static_cast<VectorId>(li));
        continue;
      }
      // Qualify under the smallest possible threshold: rank_base < t_lo
      // ≤ t. One w-contiguous τ-row read, like the clean engine's test.
      if (t_lo >= 1 && t_lo <= k_cap &&
          prep.fq[h] <= tau->Threshold(h, static_cast<size_t>(t_lo))) {
        result.push_back(static_cast<VectorId>(li));
        continue;
      }
      // Reject under the largest: rank_base >= t_hi ≥ t. Via the τ row
      // when t_hi is within it, else the O(1) histogram lower bound.
      if (t_hi <= k_cap) {
        if (prep.fq[h] > tau->Threshold(h, static_cast<size_t>(t_hi))) {
          continue;
        }
      } else if (tau->RankLowerBound(h, prep.fq[h]) >= t_hi) {
        continue;
      }
    }
    EnsureCorrections(prep, h);
    const int64_t t =
        static_cast<int64_t>(k) + prep.removed[h] - prep.added[h];
    if (t <= 0) continue;
    if (t > static_cast<int64_t>(nbp)) {
      result.push_back(static_cast<VectorId>(li));
      continue;
    }
    if (tau != nullptr && h < nbw) {
      if (t <= k_cap) {
        // The shifted-threshold τ test: delta/tombstone scores displaced
        // the effective threshold from τ_k to τ_t.
        if (prep.fq[h] <= tau->Threshold(h, static_cast<size_t>(t))) {
          result.push_back(static_cast<VectorId>(li));
        }
        continue;
      }
      // t beyond the τ row: the histogram still brackets rank_base, and
      // only the unresolved band pays a blocked scan.
      const TauRankBounds bounds = tau->BoundRank(h, prep.fq[h]);
      if (bounds.hi < t) {
        result.push_back(static_cast<VectorId>(li));
        continue;
      }
      if (bounds.lo >= t) continue;
    }
    if (h >= nbw) {
      // Delta weights never scan: rank_base is a sample binary search
      // plus one block decode of the compressed base-point scores
      // captured at InsertWeight.
      if (delta_weight_base_scores_[h - nbw].CountStrictlyBelow(prep.fq[h]) <
          t) {
        result.push_back(static_cast<VectorId>(li));
      }
      continue;
    }
    base_thr[h] = t;
    ++fallback_base;
  }
  if (fallback_base > 0) {
    BlockedScanner base_scanner(*base_points_, gir_->point_cells(),
                                *base_weights_, gir_->weight_cells(),
                                gir_->grid(), options_.gir.bound_mode, {},
                                gir_->block_max().get());
    // The dominance buffer costs an O(n·d) pass over every base point;
    // only amortized when the fallback spans enough weights. Results are
    // identical either way (domin is purely a pruning device).
    const bool use_domin =
        options_.gir.use_domin && fallback_base >= kDominMinWeights;
    const BlockedScanner::QueryContext qctx =
        base_scanner.MakeQueryContext(q, use_domin);
    RunFallbackRanks(base_scanner, qctx, q, base_thr.data(), nbw, pool,
                     stats, [&](size_t w, int64_t) {
                       result.push_back(live_weight_id(w));
                     });
  }
  std::sort(result.begin(), result.end());
  return result;
}

ReverseKRanksResult DynamicGirIndex::DirtyReverseKRanks(
    ConstRow q, size_t k, ThreadPool* pool, QueryStats* stats,
    std::atomic<int64_t>* shared_cap) const {
  const size_t live_w = live_weight_ids_.size();
  if (k == 0 || live_w == 0) return {};
  const size_t nbp = base_points_->size();
  const size_t nbw = base_weights_->size();
  const size_t take = std::min(k, live_w);
  const int64_t no_bound = static_cast<int64_t>(live_point_ids_.size());
  // Per-thread scratch: the dirty engines are called per query from both
  // serial and pool-striped batch drivers, and reuse keeps the scoring
  // buffer's allocation out of the per-query cost.
  static thread_local QueryPrep prep;
  PrepareQuery(q, prep, stats);
  const TauIndex* tau = gir_->tau_index();

  // Phase 1: bracket every live weight's rank. τ rows and histograms
  // bracket the all-base rank; shifting by (added − removed) brackets the
  // live rank. Delta weights resolve exactly here — rank_base is a binary
  // search over the sorted base scores captured at InsertWeight. Base
  // weights without τ get the trivial bracket [added, |base P| + shift].
  const int64_t n_dead = static_cast<int64_t>(dead_base_points_);
  const int64_t n_delta =
      static_cast<int64_t>(delta_points_->size() - dead_delta_points_);
  std::vector<int64_t> lo(live_w);
  std::vector<int64_t> hi(live_w);
  for (size_t li = 0; li < live_w; ++li) {
    const size_t h = live_weight_ids_[li];
    if (tau != nullptr && h < nbw) {
      // Conservative bracket under the extreme corrections (removed ≤
      // dead base points, added ≤ live delta points — both uniform over
      // live handles); tightened to the exact bracket only for weights
      // surviving the kth_hi prune, so the correction binary searches
      // run for the candidate band alone.
      const TauRankBounds bounds = tau->BoundRank(h, prep.fq[h]);
      lo[li] = std::max<int64_t>(bounds.lo - n_dead, 0);
      hi[li] = bounds.hi + n_delta;
    } else if (h >= nbw) {
      EnsureCorrections(prep, h);
      const int64_t r = delta_weight_base_scores_[h - nbw].CountStrictlyBelow(
                            prep.fq[h]) +
                        prep.added[h] - prep.removed[h];
      lo[li] = r;
      hi[li] = r;
    } else {
      EnsureCorrections(prep, h);
      const int64_t shift = prep.added[h] - prep.removed[h];
      lo[li] = prep.added[h];
      hi[li] = static_cast<int64_t>(nbp) + shift;
    }
  }
  int64_t kth_hi = no_bound;
  if (live_w > take) {
    std::vector<int64_t> tmp(hi);
    std::nth_element(tmp.begin(), tmp.begin() + (take - 1), tmp.end());
    kth_hi = tmp[take - 1];
  }
  // A cross-index cap is an upper bound on the GLOBAL k-th rank, which is
  // ≤ this index's own k-th (a subset's k-th order statistic can only be
  // larger), so folding it in is sound and strictly tightens the prune.
  if (shared_cap != nullptr) {
    kth_hi = std::min(kth_hi, shared_cap->load(std::memory_order_relaxed));
  }

  // Tighten the survivors of the conservative prune to their exact
  // brackets, then re-derive kth_hi: pruned weights keep a hi that is >=
  // their exact hi, so the recomputed cap is sound and the unresolved
  // band ends up the same as with eager corrections.
  if (tau != nullptr) {
    bool tightened = false;
    for (size_t li = 0; li < live_w; ++li) {
      if (lo[li] > kth_hi) continue;
      const size_t h = live_weight_ids_[li];
      if (h >= nbw ||
          (!prep.known.empty() && prep.known[h] != 0)) {
        continue;
      }
      EnsureCorrections(prep, h);
      const int64_t shift = prep.added[h] - prep.removed[h];
      const TauRankBounds bounds = tau->BoundRank(h, prep.fq[h]);
      lo[li] = std::max(bounds.lo + shift, prep.added[h]);
      hi[li] = bounds.hi + shift;
      tightened = true;
    }
    if (tightened && live_w > take) {
      std::vector<int64_t> tmp(hi);
      std::nth_element(tmp.begin(), tmp.begin() + (take - 1), tmp.end());
      kth_hi = std::min(kth_hi, tmp[take - 1]);
    }
  }

  std::vector<RankedWeight> heap;
  heap.reserve(take + 1);
  // Only base weights can remain unresolved: delta weights left phase 1
  // with an exact (lo == hi) bracket.
  std::vector<uint8_t> base_unresolved(nbw, 0);
  size_t unresolved_count = 0;
  for (size_t li = 0; li < live_w; ++li) {
    if (lo[li] > kth_hi) continue;
    if (lo[li] == hi[li]) {
      PushRanked(heap, take,
                 RankedWeight{static_cast<VectorId>(li), lo[li]});
    } else {
      base_unresolved[live_weight_ids_[li]] = 1;
      ++unresolved_count;
    }
  }

  if (unresolved_count > 0) {
    BlockedScanner base_scanner(*base_points_, gir_->point_cells(),
                                *base_weights_, gir_->weight_cells(),
                                gir_->grid(), options_.gir.bound_mode, {},
                                gir_->block_max().get());
    // Same gate as the top-k fallback: the dominance pass is O(n·d) and
    // only pays off when enough weights are unresolved.
    const bool use_domin = options_.gir.use_domin &&
                           unresolved_count >= kDominMinWeights;
    const BlockedScanner::QueryContext qctx =
        base_scanner.MakeQueryContext(q, use_domin);
    if (pool == nullptr || pool->thread_count() <= 1) {
      // Serial: the cap self-refines from the heap at batch granularity,
      // exactly like the static blocked k-ranks scan.
      auto scan_side = [&](const BlockedScanner& scanner, size_t m_side,
                           size_t handle_base, const uint8_t* unresolved) {
        if (m_side == 0) return;
        const size_t batch = scanner.weight_batch();
        BlockedScratch scratch;
        std::vector<int64_t> thr;
        std::vector<int64_t> ranks;
        for (size_t b = 0; b < m_side; b += batch) {
          const size_t e = std::min(b + batch, m_side);
          bool any = false;
          for (size_t w = b; w < e; ++w) {
            if (unresolved[w] != 0) {
              any = true;
              break;
            }
          }
          if (!any) continue;
          int64_t cap = kth_hi;
          if (heap.size() == take) cap = std::min(cap, heap.front().rank);
          // Re-read the shared bound at batch granularity: sibling shards
          // publish their exact k-th as they finish, so trailing scans
          // tighten progressively. Any stale value read here is merely a
          // looser (still sound) cap.
          if (shared_cap != nullptr) {
            cap = std::min(cap,
                           shared_cap->load(std::memory_order_relaxed));
          }
          thr.resize(e - b);
          ranks.resize(e - b);
          for (size_t i = 0; i < e - b; ++i) {
            const size_t h = handle_base + b + i;
            const int64_t shift = prep.added[h] - prep.removed[h];
            thr[i] = unresolved[b + i] != 0
                         ? std::max<int64_t>(cap + 1 - shift, 0)
                         : 0;
          }
          scanner.RankBatch(q, qctx, b, e, thr.data(), ranks.data(),
                            scratch, stats);
          for (size_t i = 0; i < e - b; ++i) {
            if (unresolved[b + i] == 0 || ranks[i] == kRankOverThreshold) {
              continue;
            }
            const size_t h = handle_base + b + i;
            const int64_t shift = prep.added[h] - prep.removed[h];
            PushRanked(heap, take,
                       RankedWeight{live_weight_id(h), ranks[i] + shift});
          }
        }
      };
      scan_side(base_scanner, nbw, 0, base_unresolved.data());
    } else {
      // Parallel: a fixed sound cap (no cross-worker refinement). A looser
      // threshold only converts over-threshold verdicts into exact ranks;
      // the heap rejects exactly what refinement would have pruned.
      int64_t cap = kth_hi;
      if (heap.size() == take) cap = std::min(cap, heap.front().rank);
      if (shared_cap != nullptr) {
        cap = std::min(cap, shared_cap->load(std::memory_order_relaxed));
      }
      auto side_thresholds = [&](size_t m_side, size_t handle_base,
                                 const uint8_t* unresolved) {
        std::vector<int64_t> thr(m_side, 0);
        for (size_t w = 0; w < m_side; ++w) {
          if (unresolved[w] == 0) continue;
          const size_t h = handle_base + w;
          const int64_t shift = prep.added[h] - prep.removed[h];
          thr[w] = std::max<int64_t>(cap + 1 - shift, 0);
        }
        return thr;
      };
      std::vector<RankedWeight> found;
      const std::vector<int64_t> base_thr =
          side_thresholds(nbw, 0, base_unresolved.data());
      RunFallbackRanks(base_scanner, qctx, q, base_thr.data(), nbw, pool,
                       stats, [&](size_t w, int64_t rank) {
                         const int64_t shift =
                             prep.added[w] - prep.removed[w];
                         found.push_back(
                             RankedWeight{live_weight_id(w), rank + shift});
                       });
      for (const RankedWeight& entry : found) PushRanked(heap, take, entry);
    }
  }
  std::sort(heap.begin(), heap.end());
  // Publish this index's k-th rank for sibling shards — only with k full
  // results in hand. heap.back() is the k-th smallest rank among the
  // weights that survived the cap, which is ≥ this index's true k-th
  // (pruning can only raise an order statistic) and therefore still ≥ the
  // global k-th: the fetch-min below never under-caps a sibling.
  if (shared_cap != nullptr && heap.size() == k) {
    const int64_t kth = heap.back().rank;
    int64_t cur = shared_cap->load(std::memory_order_relaxed);
    while (kth < cur && !shared_cap->compare_exchange_weak(
                            cur, kth, std::memory_order_relaxed)) {
    }
  }
  return heap;
}

// ---- Public query entry points ------------------------------------------

ReverseTopKResult DynamicGirIndex::ReverseTopK(ConstRow q, size_t k,
                                               QueryStats* stats) const {
  if (!dirty()) return gir_->ReverseTopK(q, k, stats);
  return DirtyReverseTopK(q, k, /*pool=*/nullptr, stats);
}

ReverseKRanksResult DynamicGirIndex::ReverseKRanks(ConstRow q, size_t k,
                                                   QueryStats* stats) const {
  if (!dirty()) return gir_->ReverseKRanks(q, k, stats);
  return DirtyReverseKRanks(q, k, /*pool=*/nullptr, stats);
}

ReverseKRanksResult DynamicGirIndex::ReverseKRanksCapped(
    ConstRow q, size_t k, std::atomic<int64_t>* shared_cap,
    QueryStats* stats) const {
  // Always the dirty engine: it is exact on a clean index too (every
  // correction is zero, so the brackets are the clean brackets), and it
  // is the engine the cap protocol is threaded through.
  return DirtyReverseKRanks(q, k, /*pool=*/nullptr, stats, shared_cap);
}

std::vector<ReverseTopKResult> DynamicGirIndex::ReverseTopKBatch(
    const Dataset& queries, size_t k, QueryStats* stats) const {
  if (!dirty()) return gir_->ReverseTopKBatch(queries, k, stats);
  std::vector<ReverseTopKResult> results(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi] = DirtyReverseTopK(queries.row(qi), k, nullptr, stats);
  }
  return results;
}

std::vector<ReverseKRanksResult> DynamicGirIndex::ReverseKRanksBatch(
    const Dataset& queries, size_t k, QueryStats* stats) const {
  if (!dirty()) return gir_->ReverseKRanksBatch(queries, k, stats);
  std::vector<ReverseKRanksResult> results(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi] = DirtyReverseKRanks(queries.row(qi), k, nullptr, stats);
  }
  return results;
}

ReverseTopKResult DynamicGirIndex::ParallelReverseTopK(
    ConstRow q, size_t k, ThreadPool& pool, QueryStats* stats) const {
  if (!dirty()) return gir::ParallelReverseTopK(*gir_, q, k, pool, stats);
  return DirtyReverseTopK(q, k, &pool, stats);
}

ReverseKRanksResult DynamicGirIndex::ParallelReverseKRanks(
    ConstRow q, size_t k, ThreadPool& pool, QueryStats* stats) const {
  if (!dirty()) return gir::ParallelReverseKRanks(*gir_, q, k, pool, stats);
  return DirtyReverseKRanks(q, k, &pool, stats);
}

std::vector<ReverseTopKResult> DynamicGirIndex::ParallelReverseTopKBatch(
    const Dataset& queries, size_t k, ThreadPool& pool,
    QueryStats* stats) const {
  if (!dirty()) {
    return gir::ParallelReverseTopKBatch(*gir_, queries, k, pool, stats);
  }
  std::vector<ReverseTopKResult> results(queries.size());
  std::mutex merge_mutex;
  pool.ParallelFor(0, queries.size(), 1, [&](size_t begin, size_t end) {
    QueryStats local;
    for (size_t qi = begin; qi < end; ++qi) {
      results[qi] = DirtyReverseTopK(queries.row(qi), k, nullptr,
                                     stats != nullptr ? &local : nullptr);
    }
    if (stats != nullptr) {
      std::lock_guard<std::mutex> lock(merge_mutex);
      *stats += local;
    }
  });
  return results;
}

std::vector<ReverseKRanksResult> DynamicGirIndex::ParallelReverseKRanksBatch(
    const Dataset& queries, size_t k, ThreadPool& pool,
    QueryStats* stats) const {
  if (!dirty()) {
    return gir::ParallelReverseKRanksBatch(*gir_, queries, k, pool, stats);
  }
  std::vector<ReverseKRanksResult> results(queries.size());
  std::mutex merge_mutex;
  pool.ParallelFor(0, queries.size(), 1, [&](size_t begin, size_t end) {
    QueryStats local;
    for (size_t qi = begin; qi < end; ++qi) {
      results[qi] = DirtyReverseKRanks(queries.row(qi), k, nullptr,
                                       stats != nullptr ? &local : nullptr);
    }
    if (stats != nullptr) {
      std::lock_guard<std::mutex> lock(merge_mutex);
      *stats += local;
    }
  });
  return results;
}

}  // namespace gir

#ifndef GIR_GRID_GIR_QUERIES_H_
#define GIR_GRID_GIR_QUERIES_H_

#include <cstddef>
#include <memory>

#include "core/counters.h"
#include "core/dataset.h"
#include "core/query_types.h"
#include "core/status.h"
#include "grid/approx_vector.h"
#include "grid/block_max.h"
#include "grid/gin_topk.h"
#include "grid/grid_index.h"
#include "grid/tau_index.h"

namespace gir {

class ThreadPool;

/// How GirIndex executes a query's scan over (W × P).
enum class ScanMode {
  /// One GInTopK pass over all of P per weight (the paper's loop nest).
  kWeightAtATime,
  /// Weight-batched, cache-blocked engine (grid/blocked_scan.h): points
  /// are processed in L2-sized blocks and a batch of weights is evaluated
  /// against each block with the SIMD bound kernels, so each point-cell
  /// byte is streamed once per batch instead of once per weight. Results
  /// are identical to kWeightAtATime on every tie-breaking convention in
  /// DESIGN.md §2.
  kBlocked,
  /// Preference-side τ-index (grid/tau_index.h): reverse top-k for
  /// k <= GirOptions::tau.k_max is a single O(|W|·d) threshold pass with
  /// no product scan; reverse k-ranks brackets every rank with the score
  /// histograms and falls back to the blocked engine only for the
  /// unresolved band. Results remain bit-identical to the other modes
  /// (DESIGN.md §10). Queries the τ vector cannot answer (k_max < k <=
  /// |P| reverse top-k), or issued before a τ-index is built or attached,
  /// run on the blocked engine.
  kTauIndex,
};

/// Construction options for GirIndex. Defaults are the paper's defaults
/// (Table 5: n = 32; Algorithm 1's upper-bound-first evaluation with the
/// shared Domin buffer).
struct GirOptions {
  /// Number of value-range partitions n for both P and W. Theorem 1 gives
  /// the n needed for a target filter rate (stats/model.h).
  size_t partitions = 32;
  /// Bound evaluation strategy. Default is the per-weight scaled grid row
  /// (kExactWeight) — same results, strictly tighter bounds than the
  /// paper's 2-D quantization for normalized weights; the paper-faithful
  /// modes (kUpperFirst, kFused) remain available and are compared in
  /// bench_ablation_gir.
  BoundMode bound_mode = BoundMode::kExactWeight;
  /// Maintain the cross-weight dominance buffer (Algorithm 1's Domin).
  /// Disabled only by the ablation bench.
  bool use_domin = true;
  /// Scan engine for ReverseTopK / ReverseKRanks (and their parallel
  /// drivers). Default keeps the paper-faithful weight-at-a-time loop; the
  /// batched multi-query entry points always use the blocked engine.
  /// Not persisted by grid/index_io (it is an execution knob, not index
  /// state); loaded indexes start at the default.
  ScanMode scan_mode = ScanMode::kWeightAtATime;
  /// τ-index build knobs, used when scan_mode == kTauIndex: Build() then
  /// also scores P × W once and materializes the thresholds + histograms
  /// (grid/tau_index.h). Ignored by the other modes.
  TauIndexOptions tau;
  /// Arm the blocked engine's block-max cursor (grid/block_max.h): Build()
  /// materializes the quantized per-(block, dimension) extremes and every
  /// blocked scan skips the blocks they prove non-competitive. Results are
  /// bit-identical either way; this is an execution/footprint knob, not
  /// persisted index state (though the structure itself is serialized with
  /// the index so loads need not rebuild it).
  bool use_block_max = true;
};

/// GIR — the paper's Grid-index reverse rank query processor. Owns the
/// Grid-index table and the approximate vectors of P and W; answers
/// reverse top-k (Algorithm 2) and reverse k-ranks (Algorithm 3) with the
/// GInTopK filtered scan (Algorithm 1).
///
/// The referenced datasets must outlive the index and must not grow while
/// it is in use (approximate vectors are built at construction).
class GirIndex {
 public:
  /// Builds with uniform (equal-width) partitioners whose ranges are the
  /// datasets' maxima. InvalidArgument on dimension mismatch, empty P, or
  /// invalid options.
  static Result<GirIndex> Build(const Dataset& points, const Dataset& weights,
                                const GirOptions& options = {});

  /// Builds with caller-supplied partitioners (used by the adaptive-grid
  /// extension). Partitioner top boundaries must cover the dataset maxima,
  /// otherwise the grid bounds would not contain the true products.
  static Result<GirIndex> BuildWithPartitioners(const Dataset& points,
                                                const Dataset& weights,
                                                Partitioner point_partitioner,
                                                Partitioner weight_partitioner,
                                                const GirOptions& options = {});

  /// Reassembles an index from previously built components (the
  /// persistence path, grid/index_io.h) without re-quantizing. Validates
  /// shapes and partitioner coverage; the caller is responsible for
  /// passing the same datasets the cells were built from.
  static Result<GirIndex> Assemble(const Dataset& points,
                                   const Dataset& weights,
                                   Partitioner point_partitioner,
                                   Partitioner weight_partitioner,
                                   ApproxVectors point_cells,
                                   ApproxVectors weight_cells,
                                   const GirOptions& options = {});

  /// Reverse top-k (Algorithm 2, GIRTop-k). q must have width dim().
  ReverseTopKResult ReverseTopK(ConstRow q, size_t k,
                                QueryStats* stats = nullptr) const;

  /// Reverse k-ranks (Algorithm 3, GIRk-Rank).
  ReverseKRanksResult ReverseKRanks(ConstRow q, size_t k,
                                    QueryStats* stats = nullptr) const;

  /// Batched reverse top-k: answers one query per row of `queries` (each
  /// of width dim()) as one multi-query execution — the shape a serving
  /// loop draining a request queue needs. results[i] equals
  /// ReverseTopK(queries.row(i), k). Under kTauIndex (with an attached
  /// τ-index that answers k) the whole query block is scored against W in
  /// register-tiled sweeps (TauIndex::TopKBatchRange); otherwise the
  /// blocked engine resolves the block via RankPreparedMulti, streaming
  /// each point block and accumulating each weight's bounds once per
  /// query batch instead of once per query.
  std::vector<ReverseTopKResult> ReverseTopKBatch(
      const Dataset& queries, size_t k, QueryStats* stats = nullptr) const;

  /// Batched reverse k-ranks; results[i] equals
  /// ReverseKRanks(queries.row(i), k). Same engine selection as
  /// ReverseTopKBatch: tiled τ bounding pass + shared blocked fallback
  /// under kTauIndex, RankPreparedMulti otherwise.
  std::vector<ReverseKRanksResult> ReverseKRanksBatch(
      const Dataset& queries, size_t k, QueryStats* stats = nullptr) const;

  const Dataset& points() const { return *points_; }
  const Dataset& weights() const { return *weights_; }
  const GridIndex& grid() const { return grid_; }
  const ApproxVectors& point_cells() const { return point_cells_; }
  const ApproxVectors& weight_cells() const { return weight_cells_; }
  const GirOptions& options() const { return options_; }
  size_t dim() const { return points_->dim(); }

  /// The attached τ-index, or nullptr if none was built/attached.
  const TauIndex* tau_index() const { return tau_.get(); }

  /// The block-max skip structure, or nullptr (built with use_block_max
  /// off, or assembled from a legacy file and not yet attached). Shared so
  /// persistence and the dynamic wrapper can alias it without copies.
  std::shared_ptr<const BlockMaxIndex> block_max() const { return bmx_; }

  /// Attaches a block-max index built or loaded separately (the
  /// persistence path). InvalidArgument unless it matches this index's
  /// point set and the blocked engine's block size. The caller (the
  /// loader) is responsible for soundness-checking untrusted bounds via
  /// BlockMaxIndex::SoundFor before attaching.
  Status AttachBlockMax(std::shared_ptr<const BlockMaxIndex> bmx);

  /// Attaches a τ-index built or loaded separately (the persistence path:
  /// LoadTauIndex + AttachTauIndex). InvalidArgument unless its shape
  /// matches this index's datasets. Does not change scan_mode.
  Status AttachTauIndex(std::shared_ptr<const TauIndex> tau);

  /// Switches the scan engine after construction (scan_mode is an
  /// execution knob, not persisted index state). Selecting kTauIndex
  /// without an attached τ-index is allowed — queries then run on the
  /// blocked engine until one is attached.
  void set_scan_mode(ScanMode mode) { options_.scan_mode = mode; }

  /// Total index memory: grid table + both approximate-vector arrays.
  /// (The bit-packed §3.2 representation is smaller still; this reports
  /// the scan-time footprint.)
  size_t MemoryBytes() const;

 private:
  GirIndex(const Dataset& points, const Dataset& weights, GridIndex grid,
           ApproxVectors point_cells, ApproxVectors weight_cells,
           GirOptions options);

  /// ScanMode::kBlocked implementations (grid/blocked_scan.h engine).
  ReverseTopKResult BlockedReverseTopK(ConstRow q, size_t k,
                                       QueryStats* stats) const;
  ReverseKRanksResult BlockedReverseKRanks(ConstRow q, size_t k,
                                           QueryStats* stats) const;

  /// ScanMode::kTauIndex implementations. `pool` != nullptr stripes the
  /// O(|W|) passes over its workers (the parallel_gir drivers); nullptr
  /// runs on the calling thread. TauReverseTopK requires
  /// tau_->CanAnswerTopK(k) — the dispatchers route the remaining band to
  /// the blocked engine.
  ReverseTopKResult TauReverseTopK(ConstRow q, size_t k, ThreadPool* pool,
                                   QueryStats* stats) const;
  ReverseKRanksResult TauReverseKRanks(ConstRow q, size_t k, ThreadPool* pool,
                                       QueryStats* stats) const;

  /// Batch τ paths: one tiled Q x W scoring sweep instead of Q passes.
  /// TauReverseTopKBatch requires tau_->CanAnswerTopK(k);
  /// TauReverseKRanksBatch routes each query's unresolved band through one
  /// shared RankPreparedMulti fallback.
  std::vector<ReverseTopKResult> TauReverseTopKBatch(const Dataset& queries,
                                                     size_t k,
                                                     ThreadPool* pool,
                                                     QueryStats* stats) const;
  std::vector<ReverseKRanksResult> TauReverseKRanksBatch(
      const Dataset& queries, size_t k, ThreadPool* pool,
      QueryStats* stats) const;

  friend ReverseTopKResult ParallelReverseTopK(const GirIndex& index,
                                               ConstRow q, size_t k,
                                               ThreadPool& pool,
                                               QueryStats* stats);
  friend ReverseKRanksResult ParallelReverseKRanks(const GirIndex& index,
                                                   ConstRow q, size_t k,
                                                   ThreadPool& pool,
                                                   QueryStats* stats);
  friend std::vector<ReverseTopKResult> ParallelReverseTopKBatch(
      const GirIndex& index, const Dataset& queries, size_t k,
      ThreadPool& pool, QueryStats* stats);
  friend std::vector<ReverseKRanksResult> ParallelReverseKRanksBatch(
      const GirIndex& index, const Dataset& queries, size_t k,
      ThreadPool& pool, QueryStats* stats);

  const Dataset* points_;
  const Dataset* weights_;
  GridIndex grid_;
  ApproxVectors point_cells_;
  ApproxVectors weight_cells_;
  GirOptions options_;
  std::shared_ptr<const TauIndex> tau_;
  std::shared_ptr<const BlockMaxIndex> bmx_;
};

}  // namespace gir

#endif  // GIR_GRID_GIR_QUERIES_H_

#ifndef GIR_GRID_BLOCK_MAX_H_
#define GIR_GRID_BLOCK_MAX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "core/types.h"

namespace gir {

/// BlockMaxIndex — persistent per-(scan-block, dimension) value extremes,
/// the WAND-style skip structure of the blocked scan engine (DESIGN.md
/// §14). Where RankPreparedMulti used to re-derive per-block aggregates
/// from the cell bounds on every batch, this index materializes the true
/// per-block coordinate ranges once at build time, quantized to 16-bit
/// fixed point over each dimension's global value range — 4 bytes per
/// (block, dimension) instead of 16, small enough that the skip metadata
/// for a 100M-point index stays L2-resident while scanning.
///
/// Quantization is exactness-preserving by construction (two-sided
/// rounding): each stored code pair satisfies
///
///   Dequantize(d, qmin) <= min_{j in block} p_j[d]   and
///   Dequantize(d, qmax) >= max_{j in block} p_j[d],
///
/// verified (and nudged outward where float rounding requires it) against
/// the raw doubles at build time. Weights are non-negative, so per weight
/// w the per-block score bounds
///
///   lo_b = sum_i w[i] * Dequantize(i, qmin[i][b])
///   hi_b = sum_i w[i] * Dequantize(i, qmax[i][b])
///
/// bracket every f_w(p) in the block up to accumulation rounding, which
/// the scanner absorbs with the same BoundMargin slack it applies to the
/// grid bounds. A block whose hi_b clears the margin below f_w(q)
/// contributes every non-dominated point to rank(w, q); one whose lo_b
/// clears it above contributes none; only the marginal blocks descend to
/// the per-point engine — so every verdict stays bit-identical to the
/// linear sweep (the skip decision is a proof, never an estimate).
///
/// Codes are stored dimension-major (all blocks of dimension 0, then
/// dimension 1, ...) so the per-dimension bound accumulation streams one
/// contiguous u16 run through simd::AccumulateScaledU16.
class BlockMaxIndex {
 public:
  /// One O(n·d) pass over `points` with scan blocks of `block_points`
  /// rows. InvalidArgument on an empty dataset or block_points == 0.
  static Result<BlockMaxIndex> Build(const Dataset& points,
                                     size_t block_points);

  /// Reassembles from persisted components (grid/index_io.cc). Validates
  /// shapes, finiteness, dim_lo <= dim_hi and qmin <= qmax per entry; the
  /// loader additionally re-verifies bound soundness against the dataset
  /// (the float fallback check) before attaching.
  static Result<BlockMaxIndex> FromParts(size_t dim, size_t num_points,
                                         size_t block_points,
                                         std::vector<double> dim_lo,
                                         std::vector<double> dim_hi,
                                         std::vector<uint16_t> qmin,
                                         std::vector<uint16_t> qmax);

  /// True if every stored bound actually brackets the corresponding block
  /// extreme of `points` — the soundness re-check the loader runs on
  /// hostile files (an unsound bound could silently change query results;
  /// a merely loose one cannot).
  bool SoundFor(const Dataset& points) const;

  /// Dequantized value bound for dimension i, code c.
  double Dequantize(size_t i, uint16_t c) const {
    return dim_lo_[i] + static_cast<double>(c) * step_[i];
  }

  /// Per-block score bounds for one (non-negative) weight row:
  /// lo[b] / hi[b] for b in [0, num_blocks()), both caller-sized. Also
  /// writes *cap = sum_i |w[i]| * max(|dim_lo[i]|, |dim_hi[i]|), the
  /// bound-magnitude cap the scanner feeds to BoundMargin (it dominates
  /// |lo_b|, |hi_b| and every |f_w(p)| in the dataset).
  void ScoreBounds(ConstRow w, double* lo, double* hi, double* cap) const;

  size_t dim() const { return dim_; }
  size_t num_points() const { return num_points_; }
  size_t block_points() const { return block_points_; }
  size_t num_blocks() const { return num_blocks_; }

  /// Raw component views for serialization (grid/index_io.cc).
  const std::vector<double>& dim_lo() const { return dim_lo_; }
  const std::vector<double>& dim_hi() const { return dim_hi_; }
  const std::vector<uint16_t>& qmin() const { return qmin_; }
  const std::vector<uint16_t>& qmax() const { return qmax_; }

  /// Resident bytes of the quantized entries + the per-dimension edges.
  size_t MemoryBytes() const;

 private:
  BlockMaxIndex() = default;

  /// Recomputes step_ from the edges; called after dim_lo_/dim_hi_ settle.
  void ComputeSteps();

  size_t dim_ = 0;
  size_t num_points_ = 0;
  size_t block_points_ = 0;
  size_t num_blocks_ = 0;
  std::vector<double> dim_lo_;   // per-dim global minimum (code 0)
  std::vector<double> dim_hi_;   // per-dim quantization upper edge
  std::vector<double> step_;     // (dim_hi - dim_lo) / 65535, derived
  /// Quantized block extremes, dimension-major: entry i * num_blocks_ + b.
  std::vector<uint16_t> qmin_;
  std::vector<uint16_t> qmax_;
};

}  // namespace gir

#endif  // GIR_GRID_BLOCK_MAX_H_

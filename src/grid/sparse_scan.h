#ifndef GIR_GRID_SPARSE_SCAN_H_
#define GIR_GRID_SPARSE_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/dataset.h"
#include "core/query_types.h"
#include "core/status.h"
#include "grid/gir_queries.h"

namespace gir {

/// Sparse-preference GIR (the paper's second future-work extension, §7):
/// when most users weight only a few attributes, W is stored in CSR form
/// and both the exact scores and the grid bounds skip zero-weight
/// dimensions entirely. Zero dimensions contribute exactly 0 to the score,
/// which is *tighter* than the dense grid bound (whose upper corner for
/// weight-cell 0 is alpha_p[pc+1] * alpha_w[1] > 0), so sparse bounds
/// filter at least as well while doing less work.
class SparseGir {
 public:
  /// Builds from a dense weight dataset; entries <= `zero_threshold` are
  /// treated as exact zeros. The dense GIR options control partitions and
  /// Domin use; bound_mode is ignored (the sparse scan always fuses L/U —
  /// with few non-zeros the second pass would dominate).
  static Result<SparseGir> Build(const Dataset& points, const Dataset& weights,
                                 const GirOptions& options = {},
                                 double zero_threshold = 0.0);

  /// Reverse top-k; identical results to GirIndex::ReverseTopK.
  ReverseTopKResult ReverseTopK(ConstRow q, size_t k,
                                QueryStats* stats = nullptr) const;

  /// Reverse k-ranks; identical results to GirIndex::ReverseKRanks.
  ReverseKRanksResult ReverseKRanks(ConstRow q, size_t k,
                                    QueryStats* stats = nullptr) const;

  /// Average non-zero entries per weight vector.
  double AverageNonZeros() const;

  size_t dim() const { return points_->dim(); }
  size_t weight_count() const { return row_offsets_.size() - 1; }

 private:
  SparseGir(const Dataset& points, const Dataset& weights, GridIndex grid,
            ApproxVectors point_cells, GirOptions options);

  /// Rank of q under sparse weight row i if < threshold, else
  /// kRankOverThreshold.
  int64_t SparseRank(size_t weight_row, Score query_score, int64_t threshold,
                     DominBuffer* domin, std::vector<VectorId>& candidates,
                     ConstRow q, QueryStats* stats) const;

  Score SparseScore(size_t weight_row, ConstRow x) const;

  const Dataset* points_;
  const Dataset* weights_;
  GridIndex grid_;
  ApproxVectors point_cells_;
  GirOptions options_;
  // CSR storage of the non-zero weight entries.
  std::vector<size_t> row_offsets_;
  std::vector<uint32_t> nz_dims_;
  std::vector<double> nz_values_;
  std::vector<uint8_t> nz_cells_;
};

}  // namespace gir

#endif  // GIR_GRID_SPARSE_SCAN_H_

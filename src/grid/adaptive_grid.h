#ifndef GIR_GRID_ADAPTIVE_GRID_H_
#define GIR_GRID_ADAPTIVE_GRID_H_

#include <cstddef>

#include "core/dataset.h"
#include "core/status.h"
#include "grid/gir_queries.h"
#include "grid/partitioner.h"

namespace gir {

/// Non-equal-width Grid-index (the paper's first future-work extension,
/// §7): partition boundaries are placed at value quantiles of the dataset
/// instead of equal widths, so skewed data (e.g. normalized weights, whose
/// mass concentrates near 1/d) gets full cell resolution where the values
/// actually are. The Grid table and the GIR scan are unchanged — only the
/// boundaries differ.

/// Builds an equal-frequency partitioner from the pooled values of
/// `dataset`: boundary i sits at the (i/n)-quantile, with duplicates nudged
/// to keep boundaries strictly increasing and the ends pinned to 0 and the
/// dataset maximum. `sample_cap` bounds the sorting cost on huge datasets
/// (0 means use every value).
Result<Partitioner> BuildQuantilePartitioner(const Dataset& dataset, size_t n,
                                             size_t sample_cap = 1 << 20);

/// GirIndex with quantile-adaptive partitioners on both P and W.
Result<GirIndex> BuildAdaptiveGir(const Dataset& points,
                                  const Dataset& weights,
                                  const GirOptions& options = {});

}  // namespace gir

#endif  // GIR_GRID_ADAPTIVE_GRID_H_

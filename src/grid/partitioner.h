#ifndef GIR_GRID_PARTITIONER_H_
#define GIR_GRID_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/status.h"

namespace gir {

/// Maps attribute values to partition cells (the paper's §3.1 value-range
/// division). A partitioner owns the n+1 boundary values
/// alpha[0] <= ... <= alpha[n]; value v belongs to cell c iff
/// alpha[c] <= v < alpha[c+1] (the last cell also includes v == alpha[n]).
///
/// Two constructions:
///   * Uniform(n, range): alpha[i] = i*range/n — the paper's equal-width
///     grid, with O(1) cell lookup.
///   * FromBoundaries: arbitrary strictly-increasing boundaries — the
///     non-equal-width extension (§7 future work), O(log n) lookup.
///
/// Cell ids fit in uint8_t; n is limited to kMaxPartitions = 255.
class Partitioner {
 public:
  static constexpr size_t kMaxPartitions = 255;

  /// Equal-width partitioning of [0, range] into n cells.
  /// InvalidArgument if n == 0, n > kMaxPartitions, or range <= 0.
  static Result<Partitioner> Uniform(size_t n, double range);

  /// General partitioning with the given boundaries (size n+1, strictly
  /// increasing, boundaries[0] == 0 so non-negative values below
  /// boundaries[1] land in cell 0).
  static Result<Partitioner> FromBoundaries(std::vector<double> boundaries);

  /// Number of cells n.
  size_t partitions() const { return boundaries_.size() - 1; }

  /// Boundary alpha[i], i in [0, partitions()].
  double Boundary(size_t i) const { return boundaries_[i]; }

  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Cell of value v, clamped into [0, partitions()-1]. Values above the
  /// top boundary clamp into the last cell — callers must construct the
  /// partitioner with range >= the dataset maximum for the grid bounds to
  /// hold (GridIndex::Make checks datasets it is given).
  uint8_t CellOf(double v) const;

  /// True for the O(1) equal-width fast path.
  bool is_uniform() const { return uniform_; }

 private:
  Partitioner(std::vector<double> boundaries, bool uniform)
      : boundaries_(std::move(boundaries)), uniform_(uniform) {
    if (uniform_) {
      inv_width_ = static_cast<double>(partitions()) / boundaries_.back();
    }
  }

  std::vector<double> boundaries_;
  bool uniform_;
  double inv_width_ = 0.0;
};

}  // namespace gir

#endif  // GIR_GRID_PARTITIONER_H_

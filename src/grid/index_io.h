#ifndef GIR_GRID_INDEX_IO_H_
#define GIR_GRID_INDEX_IO_H_

#include <memory>
#include <string>

#include "core/status.h"
#include "grid/dynamic_index.h"
#include "grid/gir_queries.h"
#include "grid/sharded_index.h"

namespace gir {

/// Persistence of a built GirIndex — the paper's §3.2 storage pipeline:
/// the approximate vectors are written bit-packed (b bits per cell,
/// b = ceil(log2(n))), so the on-disk index is a small fraction of the
/// original data, and queries can start from the packed file instead of
/// re-quantizing P and W.
///
/// File layout (little-endian): magic "GIRIDX01"; options (partitions,
/// bound mode, use_domin); both partitioners' boundary arrays (so
/// adaptive grids round-trip too); both cell arrays as bit-packed blobs.

/// Writes `index` to `path`, replacing any existing file.
Status SaveGirIndex(const std::string& path, const GirIndex& index);

/// Loads an index previously written with SaveGirIndex and re-attaches it
/// to `points` / `weights`, which must be the datasets the index was
/// built from (shape and range are validated; cell contents are trusted —
/// pass `verify_cells = true` to re-check every cell against the data).
/// Hostile headers (shape mismatches, payload sizes that disagree with
/// the file size, out-of-range partition counts) are rejected as
/// Corruption before anything is allocated from them.
Result<GirIndex> LoadGirIndex(const std::string& path, const Dataset& points,
                              const Dataset& weights,
                              bool verify_cells = false);

/// Persistence of a τ-index (grid/tau_index.h). File layout
/// (little-endian): magic "GIRTAU01"; k_cap, bins, dim as u32; |W|, |P| as
/// u64; then the raw component arrays — τ (k_cap·|W| doubles, k-major),
/// per-weight max scores (|W| doubles), prefix-summed histograms
/// (|W|·bins u32). Sizes are implied by the header; the loader checks the
/// implied payload (computed overflow-safely) against the actual file
/// size before allocating, so truncation, trailing garbage and
/// allocation-bomb headers are all rejected, and the arrays' internal
/// invariants (sorted τ rows, monotone prefixes summing to |P|) are
/// re-validated before accepting the file.
Status SaveTauIndex(const std::string& path, const TauIndex& index);

/// Loads a τ-index written with SaveTauIndex. `weights` must be the
/// preference set it was built from (the column mirror is rebuilt from
/// it); shape mismatches are rejected as Corruption.
Result<TauIndex> LoadTauIndex(const std::string& path,
                              const Dataset& weights);

/// Persistence of a DynamicGirIndex — the generation-stamped "GIRDYN01"
/// envelope. Unlike GIRIDX01, the envelope embeds the datasets themselves
/// (a churned index has no external file to re-attach to): magic; u64
/// generation; u32 dim; u32 flags (bit 0: τ blob present); the options
/// block; the four datasets (base/delta × points/weights, each u64 count
/// + raw doubles); the four alive bitmaps (raw bytes, sizes implied); and,
/// when the index runs in τ mode, the base generation's τ-index as an
/// embedded GIRTAU01 section so loading skips the P×W sweep. The grid and
/// the delta correction structures are deterministic functions of the
/// payload and are rebuilt at load.
Status SaveDynamicIndex(const std::string& path,
                        const DynamicGirIndex& index);

/// Loads an index written with SaveDynamicIndex. The result answers
/// queries bit-identically to the saved instance (same base generation,
/// same delta buffer, same tombstones).
Result<DynamicGirIndex> LoadDynamicIndex(const std::string& path);

/// Persistence of a ShardedGirIndex — the "GIRSHD01" sharded envelope.
/// Layout (little-endian): magic; u32 shard count; u32 dim; u64 admitted
/// sequence number; u64 round-robin weight insert counter; u64 live point
/// count; u64 live weight count followed by the owner map (u32 shard id
/// per global live weight, in global live order); then, per shard, a u64
/// byte length and an embedded generation-stamped GIRDYN01 blob. The
/// writer quiesces the router first, so the file captures one consistent
/// cut of the operation stream.
Status SaveShardedIndex(const std::string& path,
                        const ShardedGirIndex& index);

/// Loads a router written with SaveShardedIndex. Header fields and the
/// owner map are vetted against the file size and the shard count before
/// anything is allocated from them; each shard blob is parsed with the
/// full standalone GIRDYN01 validation battery; and the reassembled
/// router replays bit-identically to the saved instance. `use_workers`
/// and `background_compact` pick the execution mode of the loaded router
/// (the envelope does not pin them — they are deployment choices, not
/// index state; background compaction requires workers).
Result<std::unique_ptr<ShardedGirIndex>> LoadShardedIndex(
    const std::string& path, bool use_workers = true,
    bool background_compact = false);

/// The GIRSHD01 header + owner map without the shard blobs — what the
/// distributed router needs to boot: the cluster shape (shard count, dim,
/// sequence, insert counter) and the weight→owner assignment, leaving the
/// per-shard payloads to the shard servers that own them.
struct ShardedManifest {
  uint32_t shard_count = 0;
  uint32_t dim = 0;
  uint64_t sequence = 0;
  /// Round-robin weight insert counter (>= owner.size(); the difference
  /// is deleted weights).
  uint64_t insert_counter = 0;
  uint64_t live_points = 0;
  /// Owning shard id per global live weight, in global live order.
  std::vector<uint32_t> owner;
};

/// Reads the GIRSHD01 header + owner map of `path`, validated exactly as
/// LoadShardedIndex validates them, without touching the shard blobs.
Result<ShardedManifest> LoadShardedManifest(const std::string& path);

/// Extracts shard `lane` of a GIRSHD01 envelope as a standalone
/// DynamicGirIndex — the `gir_cli shard split` / `gir_serve --shard-lane`
/// loading path: preceding blobs are skipped by their length prefixes and
/// the selected blob gets the full standalone GIRDYN01 validation battery.
Result<DynamicGirIndex> LoadShardLane(const std::string& path, uint32_t lane);

}  // namespace gir

#endif  // GIR_GRID_INDEX_IO_H_

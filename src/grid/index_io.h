#ifndef GIR_GRID_INDEX_IO_H_
#define GIR_GRID_INDEX_IO_H_

#include <string>

#include "core/status.h"
#include "grid/gir_queries.h"

namespace gir {

/// Persistence of a built GirIndex — the paper's §3.2 storage pipeline:
/// the approximate vectors are written bit-packed (b bits per cell,
/// b = ceil(log2(n))), so the on-disk index is a small fraction of the
/// original data, and queries can start from the packed file instead of
/// re-quantizing P and W.
///
/// File layout (little-endian): magic "GIRIDX01"; options (partitions,
/// bound mode, use_domin); both partitioners' boundary arrays (so
/// adaptive grids round-trip too); both cell arrays as bit-packed blobs.

/// Writes `index` to `path`, replacing any existing file.
Status SaveGirIndex(const std::string& path, const GirIndex& index);

/// Loads an index previously written with SaveGirIndex and re-attaches it
/// to `points` / `weights`, which must be the datasets the index was
/// built from (shape and range are validated; cell contents are trusted —
/// pass `verify_cells = true` to re-check every cell against the data).
Result<GirIndex> LoadGirIndex(const std::string& path, const Dataset& points,
                              const Dataset& weights,
                              bool verify_cells = false);

}  // namespace gir

#endif  // GIR_GRID_INDEX_IO_H_

#include "grid/index_io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "grid/bit_packed.h"
#include "grid/block_max.h"
#include "grid/blocked_scan.h"
#include "grid/sharded_index.h"
#include "io/atomic_file.h"
#include "io/checked_reader.h"
#include "io/envelope.h"

namespace gir {

namespace {

// Shared envelope mechanics (io/envelope.h); every format below keeps its
// own error strings and validation policy.
using envio::PayloadBudget;
using envio::WithPath;
using envio::WriteDouble;
using envio::WriteDoubles;
using envio::WriteU32;
using envio::WriteU64;

constexpr char kMagic[8] = {'G', 'I', 'R', 'I', 'D', 'X', '0', '1'};
constexpr char kTauMagic[8] = {'G', 'I', 'R', 'T', 'A', 'U', '0', '1'};
constexpr char kDynMagic[8] = {'G', 'I', 'R', 'D', 'Y', 'N', '0', '1'};
constexpr char kBmxMagic[8] = {'G', 'I', 'R', 'B', 'M', 'X', '0', '1'};
constexpr char kShdMagic[8] = {'G', 'I', 'R', 'S', 'H', 'D', '0', '1'};

/// Partitioner boundary arrays are structurally capped far below this;
/// the embedded-count reads reject anything larger before allocating.
constexpr uint64_t kMaxBoundaryCount = 1u << 20;

uint32_t BitsForPartitions(size_t n) {
  uint32_t bits = 1;
  while ((size_t{1} << bits) < n) ++bits;
  return bits;
}

Status WritePacked(std::ostream& out, const ApproxVectors& cells,
                   size_t partitions) {
  auto packed = BitPackedVectors::Pack(cells, BitsForPartitions(partitions));
  if (!packed.ok()) return packed.status();
  const PackedBlob blob = packed.value().ToBlob();
  WriteU32(out, blob.bits_per_cell);
  WriteU32(out, blob.dim);
  WriteU64(out, blob.count);
  out.write(reinterpret_cast<const char*>(blob.payload.data()),
            static_cast<std::streamsize>(blob.payload.size()));
  return Status::OK();
}

/// `expected_count` / `expected_dim` come from the dataset the caller is
/// re-attaching to; a header that disagrees is rejected before the
/// payload size it implies is ever trusted (a forged count whose
/// BytesPerVector product wraps around would otherwise under-allocate and
/// let the unpack index out of range).
Result<ApproxVectors> ReadPacked(CheckedReader& reader, size_t expected_count,
                                 size_t expected_dim) {
  PackedBlob blob;
  if (!reader.ReadU32(&blob.bits_per_cell) || !reader.ReadU32(&blob.dim) ||
      !reader.ReadU64(&blob.count)) {
    return Status::Corruption("truncated packed header");
  }
  if (blob.bits_per_cell == 0 || blob.bits_per_cell > 8 || blob.dim == 0) {
    return Status::Corruption("invalid packed parameters");
  }
  if (blob.count != expected_count || blob.dim != expected_dim) {
    return Status::Corruption("packed shape does not match the dataset");
  }
  PayloadBudget budget(reader);
  if (!budget.Add(blob.count, blob.BytesPerVector()) || !budget.FitsFile()) {
    return Status::Corruption("packed payload exceeds the file size");
  }
  if (!reader.ReadArray(static_cast<size_t>(budget.total()),
                        &blob.payload)) {
    return Status::Corruption("truncated packed payload");
  }
  auto packed = BitPackedVectors::FromBlob(std::move(blob));
  if (!packed.ok()) return packed.status();
  return packed.value().Unpack();
}

Status SaveTauIndexToStream(std::ostream& out, const TauIndex& index) {
  out.write(kTauMagic, sizeof(kTauMagic));
  WriteU32(out, static_cast<uint32_t>(index.k_cap()));
  WriteU32(out, static_cast<uint32_t>(index.bins()));
  WriteU32(out, static_cast<uint32_t>(index.dim()));
  WriteU64(out, index.num_weights());
  WriteU64(out, index.num_points());
  const std::vector<double>& tau = index.tau();
  const std::vector<double>& score_max = index.score_max();
  const std::vector<uint32_t>& hist = index.hist_prefix();
  out.write(reinterpret_cast<const char*>(tau.data()),
            static_cast<std::streamsize>(tau.size() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(score_max.data()),
            static_cast<std::streamsize>(score_max.size() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(hist.data()),
            static_cast<std::streamsize>(hist.size() * sizeof(uint32_t)));
  return Status::OK();
}

/// `embedded` loads a GIRTAU01 section inside a larger envelope: payloads
/// may be followed by more envelope sections, so the no-trailing-bytes
/// check is skipped (the envelope loader does its own).
Result<TauIndex> LoadTauIndexFromStream(CheckedReader& reader,
                                        const Dataset& weights,
                                        bool embedded) {
  if (!reader.ReadMagic(kTauMagic)) {
    return Status::Corruption("bad tau index header");
  }
  uint32_t k_cap = 0, bins = 0, dim = 0;
  uint64_t num_weights = 0, num_points = 0;
  if (!reader.ReadU32(&k_cap) || !reader.ReadU32(&bins) ||
      !reader.ReadU32(&dim) || !reader.ReadU64(&num_weights) ||
      !reader.ReadU64(&num_points)) {
    return Status::Corruption("truncated tau index header");
  }
  if (k_cap == 0 || num_points == 0 || k_cap > num_points || bins < 2 ||
      bins > (1u << 20)) {
    return Status::Corruption("invalid tau index parameters");
  }
  if (dim != weights.dim() || num_weights != weights.size()) {
    return Status::Corruption(
        "tau index shape does not match the supplied weights");
  }
  // Vet the header-implied payload against the bytes actually present
  // before any allocation: k_cap and num_points are attacker-controlled,
  // and their products can reach allocation-bomb or wraparound territory.
  PayloadBudget budget(reader);
  if (!budget.Add(uint64_t{k_cap} * num_weights, sizeof(double)) ||
      !budget.Add(num_weights, sizeof(double)) ||
      !budget.Add(uint64_t{bins} * num_weights, sizeof(uint32_t))) {
    return Status::Corruption("tau index payload size overflows");
  }
  if (!budget.FitsFile()) {
    return Status::Corruption("tau index payload exceeds the file size");
  }
  std::vector<double> tau;
  std::vector<double> score_max;
  std::vector<uint32_t> hist;
  if (!reader.ReadArray(size_t{k_cap} * num_weights, &tau) ||
      !reader.ReadArray(num_weights, &score_max) ||
      !reader.ReadArray(size_t{bins} * num_weights, &hist)) {
    return Status::Corruption("truncated tau index payload");
  }
  if (!embedded && !reader.AtEnd()) {
    return Status::Corruption("trailing bytes after tau index");
  }
  return TauIndex::FromParts(weights, num_points, k_cap, bins,
                             std::move(tau), std::move(score_max),
                             std::move(hist));
}

void SaveBlockMaxToStream(std::ostream& out, const BlockMaxIndex& bmx) {
  out.write(kBmxMagic, sizeof(kBmxMagic));
  WriteU32(out, static_cast<uint32_t>(bmx.dim()));
  WriteU64(out, bmx.num_points());
  WriteU64(out, bmx.block_points());
  // Array lengths are implied by the header (2 * dim edges, 2 * dim *
  // num_blocks codes), so a forged length cannot disagree with the shape.
  out.write(reinterpret_cast<const char*>(bmx.dim_lo().data()),
            static_cast<std::streamsize>(bmx.dim_lo().size() *
                                         sizeof(double)));
  out.write(reinterpret_cast<const char*>(bmx.dim_hi().data()),
            static_cast<std::streamsize>(bmx.dim_hi().size() *
                                         sizeof(double)));
  out.write(reinterpret_cast<const char*>(bmx.qmin().data()),
            static_cast<std::streamsize>(bmx.qmin().size() *
                                         sizeof(uint16_t)));
  out.write(reinterpret_cast<const char*>(bmx.qmax().data()),
            static_cast<std::streamsize>(bmx.qmax().size() *
                                         sizeof(uint16_t)));
}

/// Parses a GIRBMX01 section and re-verifies its bounds against `points`
/// — the float fallback check: quantized bounds from an untrusted file
/// are only trusted after they provably bracket the raw doubles, since an
/// unsound bound would silently change query results (a merely loose one
/// cannot).
Result<BlockMaxIndex> LoadBlockMaxFromStream(CheckedReader& reader,
                                             const Dataset& points) {
  if (!reader.ReadMagic(kBmxMagic)) {
    return Status::Corruption("bad block-max section header");
  }
  uint32_t dim = 0;
  uint64_t num_points = 0, block_points = 0;
  if (!reader.ReadU32(&dim) || !reader.ReadU64(&num_points) ||
      !reader.ReadU64(&block_points)) {
    return Status::Corruption("truncated block-max header");
  }
  if (dim != points.dim() || num_points != points.size()) {
    return Status::Corruption(
        "block-max shape does not match the supplied points");
  }
  if (block_points == 0 || block_points > num_points + 8192) {
    return Status::Corruption("block-max block size out of range");
  }
  const uint64_t nb = (num_points + block_points - 1) / block_points;
  // Vet the header-implied payload against the bytes present before any
  // allocation; dim * nb products are attacker-controlled.
  PayloadBudget budget(reader);
  if (!budget.Add(uint64_t{dim} * 2, sizeof(double)) ||
      !budget.Add(uint64_t{dim} * nb * 2, sizeof(uint16_t))) {
    return Status::Corruption("block-max payload size overflows");
  }
  if (!budget.FitsFile()) {
    return Status::Corruption("block-max payload exceeds the file size");
  }
  std::vector<double> dim_lo, dim_hi;
  std::vector<uint16_t> qmin, qmax;
  if (!reader.ReadArray(dim, &dim_lo) || !reader.ReadArray(dim, &dim_hi) ||
      !reader.ReadArray(static_cast<size_t>(dim * nb), &qmin) ||
      !reader.ReadArray(static_cast<size_t>(dim * nb), &qmax)) {
    return Status::Corruption("truncated block-max payload");
  }
  auto bmx = BlockMaxIndex::FromParts(
      dim, num_points, block_points, std::move(dim_lo), std::move(dim_hi),
      std::move(qmin), std::move(qmax));
  if (!bmx.ok()) {
    return Status::Corruption("invalid block-max contents (" +
                              bmx.status().message() + ")");
  }
  if (!bmx.value().SoundFor(points)) {
    return Status::Corruption(
        "block-max bounds do not bracket the supplied points");
  }
  return bmx;
}

void WriteDataset(std::ostream& out, const Dataset& data) {
  WriteU64(out, data.size());
  out.write(reinterpret_cast<const char*>(data.flat().data()),
            static_cast<std::streamsize>(data.flat().size() *
                                         sizeof(double)));
}

Result<Dataset> ReadDataset(CheckedReader& reader, size_t dim) {
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return Status::Corruption("truncated dataset header");
  }
  PayloadBudget budget(reader);
  if (!budget.Add(count, uint64_t{dim} * sizeof(double)) ||
      !budget.FitsFile()) {
    return Status::Corruption("dataset payload exceeds the file size");
  }
  std::vector<double> flat;
  if (!reader.ReadArray(static_cast<size_t>(count) * dim, &flat)) {
    return Status::Corruption("truncated dataset payload");
  }
  return Dataset::FromFlat(dim, std::move(flat));
}

}  // namespace

Status SaveGirIndex(const std::string& path, const GirIndex& index) {
  // Atomic replace (io/atomic_file.h): a crash or full disk mid-save can
  // never clobber the previous good file — the same contract the other
  // three Save* entry points below now share.
  return AtomicWriteFile(path, [&index](std::ostream& out) -> Status {
    out.write(kMagic, sizeof(kMagic));
    const GirOptions& options = index.options();
    WriteU32(out, static_cast<uint32_t>(options.partitions));
    WriteU32(out, static_cast<uint32_t>(options.bound_mode));
    WriteU32(out, options.use_domin ? 1 : 0);
    WriteU32(out, index.grid().point_partitioner().is_uniform() ? 1 : 0);
    WriteU32(out, index.grid().weight_partitioner().is_uniform() ? 1 : 0);
    WriteDoubles(out, index.grid().point_partitioner().boundaries());
    WriteDoubles(out, index.grid().weight_partitioner().boundaries());
    Status s = WritePacked(out, index.point_cells(),
                           index.grid().point_partitions());
    if (!s.ok()) return s;
    s = WritePacked(out, index.weight_cells(),
                    index.grid().weight_partitions());
    if (!s.ok()) return s;
    // Optional trailing section: the block-max skip structure, so loads
    // can arm the blocked engine's cursor without an O(n·d) rebuild.
    // Files written by indexes built with use_block_max off simply end
    // here, and old readers never looked past the weight cells.
    if (index.block_max() != nullptr) {
      SaveBlockMaxToStream(out, *index.block_max());
    }
    return Status::OK();
  });
}

Result<GirIndex> LoadGirIndex(const std::string& path, const Dataset& points,
                              const Dataset& weights, bool verify_cells) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CheckedReader reader(in);
  if (!reader.ReadMagic(kMagic)) {
    return Status::Corruption("bad index header: " + path);
  }
  uint32_t partitions = 0, bound_mode = 0, use_domin = 0;
  uint32_t uniform_p = 0, uniform_w = 0;
  if (!reader.ReadU32(&partitions) || !reader.ReadU32(&bound_mode) ||
      !reader.ReadU32(&use_domin) || !reader.ReadU32(&uniform_p) ||
      !reader.ReadU32(&uniform_w)) {
    return Status::Corruption("truncated index options: " + path);
  }
  if (partitions == 0 || partitions > Partitioner::kMaxPartitions) {
    return Status::Corruption("partition count out of range: " + path);
  }
  if (bound_mode > static_cast<uint32_t>(BoundMode::kExactWeight)) {
    return Status::Corruption("unknown bound mode: " + path);
  }
  std::vector<double> p_bounds, w_bounds;
  if (!reader.ReadCountedDoubles(&p_bounds, kMaxBoundaryCount) ||
      !reader.ReadCountedDoubles(&w_bounds, kMaxBoundaryCount)) {
    return Status::Corruption("truncated boundaries: " + path);
  }
  if (p_bounds.size() > Partitioner::kMaxPartitions + 1 ||
      w_bounds.size() > Partitioner::kMaxPartitions + 1) {
    return Status::Corruption("boundary count out of range: " + path);
  }
  auto MakePartitioner = [](const std::vector<double>& bounds,
                            bool uniform) -> Result<Partitioner> {
    if (uniform) {
      if (bounds.size() < 2) {
        return Status::Corruption("invalid boundary count");
      }
      return Partitioner::Uniform(bounds.size() - 1, bounds.back());
    }
    return Partitioner::FromBoundaries(bounds);
  };
  auto pp = MakePartitioner(p_bounds, uniform_p != 0);
  if (!pp.ok()) return pp.status();
  auto wp = MakePartitioner(w_bounds, uniform_w != 0);
  if (!wp.ok()) return wp.status();

  auto point_cells = ReadPacked(reader, points.size(), points.dim());
  if (!point_cells.ok()) return point_cells.status();
  auto weight_cells = ReadPacked(reader, weights.size(), weights.dim());
  if (!weight_cells.ok()) return weight_cells.status();

  if (verify_cells) {
    auto check = [](const Dataset& data, const ApproxVectors& cells,
                    const Partitioner& part) {
      for (size_t i = 0; i < data.size(); ++i) {
        ConstRow row = data.row(i);
        for (size_t j = 0; j < data.dim(); ++j) {
          if (cells.row(i)[j] != part.CellOf(row[j])) return false;
        }
      }
      return true;
    };
    if (!check(points, point_cells.value(), pp.value()) ||
        !check(weights, weight_cells.value(), wp.value())) {
      return Status::Corruption(
          "persisted cells do not match the supplied datasets: " + path);
    }
  }

  // Optional trailing GIRBMX01 section. Legacy files end at the weight
  // cells; for those the skip structure is rebuilt from the points (one
  // O(n·d) pass), so old indexes gain the cursor on load too.
  std::shared_ptr<const BlockMaxIndex> bmx;
  // Remaining() peeks without consuming (AtEnd() would eat the first
  // magic byte of a present section).
  if (reader.Remaining() > 0) {
    auto loaded = LoadBlockMaxFromStream(reader, points);
    if (!loaded.ok()) return WithPath(loaded.status(), path);
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after block-max: " + path);
    }
    bmx = std::make_shared<const BlockMaxIndex>(std::move(loaded).value());
  } else {
    auto built = BlockMaxIndex::Build(
        points, BlockedScanner::BlockPointsFor(points.dim()));
    if (!built.ok()) return built.status();
    bmx = std::make_shared<const BlockMaxIndex>(std::move(built).value());
  }

  GirOptions options;
  options.partitions = partitions;
  options.bound_mode = static_cast<BoundMode>(bound_mode);
  options.use_domin = use_domin != 0;
  auto index = GirIndex::Assemble(points, weights, std::move(pp).value(),
                                  std::move(wp).value(),
                                  std::move(point_cells).value(),
                                  std::move(weight_cells).value(), options);
  if (!index.ok()) return index;
  Status attach = index.value().AttachBlockMax(std::move(bmx));
  if (!attach.ok()) {
    // A well-formed, sound section whose geometry nonetheless cannot arm
    // this build's scanner (e.g. a foreign block size) is corruption from
    // the loader's point of view.
    return Status::Corruption("unusable block-max section (" +
                              attach.message() + "): " + path);
  }
  return index;
}

Status SaveTauIndex(const std::string& path, const TauIndex& index) {
  return AtomicWriteFile(path, [&index](std::ostream& out) {
    return SaveTauIndexToStream(out, index);
  });
}

Result<TauIndex> LoadTauIndex(const std::string& path,
                              const Dataset& weights) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CheckedReader reader(in);
  auto loaded = LoadTauIndexFromStream(reader, weights, /*embedded=*/false);
  if (!loaded.ok()) {
    return WithPath(loaded.status(), path);
  }
  return loaded;
}

namespace {

/// Writes one GIRDYN01 envelope to `out` — the body shared by the
/// standalone file writer and the GIRSHD01 per-shard blobs.
Status SaveDynamicIndexToStream(std::ostream& out,
                                const DynamicGirIndex& index) {
  const DynamicIndexOptions& options = index.options();
  const TauIndex* tau = index.base().tau_index();
  const bool save_tau =
      options.gir.scan_mode == ScanMode::kTauIndex && tau != nullptr;
  out.write(kDynMagic, sizeof(kDynMagic));
  WriteU64(out, index.generation());
  WriteU32(out, static_cast<uint32_t>(index.dim()));
  WriteU32(out, save_tau ? 1 : 0);
  WriteU32(out, static_cast<uint32_t>(options.gir.partitions));
  WriteU32(out, static_cast<uint32_t>(options.gir.bound_mode));
  WriteU32(out, options.gir.use_domin ? 1 : 0);
  WriteU32(out, static_cast<uint32_t>(options.gir.scan_mode));
  WriteU32(out, static_cast<uint32_t>(options.gir.tau.k_max));
  WriteU32(out, static_cast<uint32_t>(options.gir.tau.bins));
  WriteDouble(out, options.compact_threshold);
  WriteU32(out, options.auto_compact ? 1 : 0);
  WriteDataset(out, index.base_points());
  WriteDataset(out, index.base_weights());
  WriteDataset(out, index.delta_points());
  WriteDataset(out, index.delta_weights());
  auto write_bitmap = [&out](const std::vector<uint8_t>& bitmap) {
    out.write(reinterpret_cast<const char*>(bitmap.data()),
              static_cast<std::streamsize>(bitmap.size()));
  };
  write_bitmap(index.base_point_alive());
  write_bitmap(index.base_weight_alive());
  write_bitmap(index.delta_point_alive());
  write_bitmap(index.delta_weight_alive());
  if (save_tau) {
    Status s = SaveTauIndexToStream(out, *tau);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// Parses one GIRDYN01 envelope. `embedded` skips the no-trailing-bytes
/// check (the GIRSHD01 loader bounds each blob itself). Error strings are
/// path-free; the public entry points attach the filename via WithPath.
Result<DynamicGirIndex> LoadDynamicIndexFromStream(CheckedReader& reader,
                                                   bool embedded) {
  if (!reader.ReadMagic(kDynMagic)) {
    return Status::Corruption("bad dynamic index header");
  }
  uint64_t generation = 0;
  uint32_t dim = 0, flags = 0;
  uint32_t partitions = 0, bound_mode = 0, use_domin = 0, scan_mode = 0;
  uint32_t tau_k_max = 0, tau_bins = 0;
  double compact_threshold = 0.0;
  uint32_t auto_compact = 0;
  if (!reader.ReadU64(&generation) || !reader.ReadU32(&dim) ||
      !reader.ReadU32(&flags) || !reader.ReadU32(&partitions) ||
      !reader.ReadU32(&bound_mode) || !reader.ReadU32(&use_domin) ||
      !reader.ReadU32(&scan_mode) || !reader.ReadU32(&tau_k_max) ||
      !reader.ReadU32(&tau_bins) || !reader.ReadDouble(&compact_threshold) ||
      !reader.ReadU32(&auto_compact)) {
    return Status::Corruption("truncated dynamic index header");
  }
  if (dim == 0 || dim > (1u << 16)) {
    return Status::Corruption("dimension out of range");
  }
  if (flags > 1) {
    return Status::Corruption("unknown dynamic index flags");
  }
  if (partitions == 0 || partitions > Partitioner::kMaxPartitions) {
    return Status::Corruption("partition count out of range");
  }
  if (bound_mode > static_cast<uint32_t>(BoundMode::kExactWeight)) {
    return Status::Corruption("unknown bound mode");
  }
  if (scan_mode > static_cast<uint32_t>(ScanMode::kTauIndex)) {
    return Status::Corruption("unknown scan mode");
  }
  if (!(compact_threshold > 0.0) || compact_threshold > 1e6) {
    return Status::Corruption("compact threshold out of range");
  }
  DynamicIndexOptions options;
  options.gir.partitions = partitions;
  options.gir.bound_mode = static_cast<BoundMode>(bound_mode);
  options.gir.use_domin = use_domin != 0;
  options.gir.scan_mode = static_cast<ScanMode>(scan_mode);
  options.gir.tau.k_max = tau_k_max;
  options.gir.tau.bins = tau_bins;
  options.compact_threshold = compact_threshold;
  options.auto_compact = auto_compact != 0;

  auto base_points = ReadDataset(reader, dim);
  if (!base_points.ok()) return base_points.status();
  auto base_weights = ReadDataset(reader, dim);
  if (!base_weights.ok()) return base_weights.status();
  auto delta_points = ReadDataset(reader, dim);
  if (!delta_points.ok()) return delta_points.status();
  auto delta_weights = ReadDataset(reader, dim);
  if (!delta_weights.ok()) return delta_weights.status();
  PayloadBudget budget(reader);
  if (!budget.Add(base_points.value().size(), 1) ||
      !budget.Add(base_weights.value().size(), 1) ||
      !budget.Add(delta_points.value().size(), 1) ||
      !budget.Add(delta_weights.value().size(), 1) || !budget.FitsFile()) {
    return Status::Corruption("alive bitmaps exceed the file size");
  }
  std::vector<uint8_t> bp_alive, bw_alive, dp_alive, dw_alive;
  if (!reader.ReadArray(base_points.value().size(), &bp_alive) ||
      !reader.ReadArray(base_weights.value().size(), &bw_alive) ||
      !reader.ReadArray(delta_points.value().size(), &dp_alive) ||
      !reader.ReadArray(delta_weights.value().size(), &dw_alive)) {
    return Status::Corruption("truncated alive bitmaps");
  }
  std::shared_ptr<const TauIndex> tau;
  if ((flags & 1) != 0) {
    if (options.gir.scan_mode != ScanMode::kTauIndex) {
      return Status::Corruption("tau blob present but scan mode is not tau");
    }
    auto loaded = LoadTauIndexFromStream(reader, base_weights.value(),
                                         /*embedded=*/true);
    if (!loaded.ok()) return loaded.status();
    tau = std::make_shared<const TauIndex>(std::move(loaded).value());
  }
  if (!embedded && !reader.AtEnd()) {
    return Status::Corruption("trailing bytes after dynamic index");
  }
  auto index = DynamicGirIndex::FromParts(
      options, generation, std::move(base_points).value(),
      std::move(base_weights).value(), std::move(bp_alive),
      std::move(bw_alive), std::move(delta_points).value(),
      std::move(delta_weights).value(), std::move(dp_alive),
      std::move(dw_alive), std::move(tau));
  if (!index.ok()) {
    // A structurally well-formed file whose contents violate the index
    // invariants (bad bitmap bytes, dead shapes) is still corruption from
    // the loader's point of view.
    return Status::Corruption("invalid dynamic index contents (" +
                              index.status().message() + ")");
  }
  return index;
}

}  // namespace

Status SaveDynamicIndex(const std::string& path,
                        const DynamicGirIndex& index) {
  return AtomicWriteFile(path, [&index](std::ostream& out) {
    return SaveDynamicIndexToStream(out, index);
  });
}

Result<DynamicGirIndex> LoadDynamicIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CheckedReader reader(in);
  auto loaded = LoadDynamicIndexFromStream(reader, /*embedded=*/false);
  if (!loaded.ok()) return WithPath(loaded.status(), path);
  return loaded;
}

Status SaveShardedIndex(const std::string& path,
                        const ShardedGirIndex& index) {
  // Drain every admitted operation first: the shard snapshots below read
  // raw shard state, which is only stable once the lanes are empty. A
  // caller racing new mutations against Save gets some consistent prefix.
  index.Quiesce();
  return AtomicWriteFile(path, [&index](std::ostream& out) -> Status {
    const std::vector<uint32_t> owner = index.WeightOwners();
    out.write(kShdMagic, sizeof(kShdMagic));
    WriteU32(out, static_cast<uint32_t>(index.shard_count()));
    WriteU32(out, static_cast<uint32_t>(index.dim()));
    WriteU64(out, index.sequence());
    WriteU64(out, index.weight_insert_counter());
    WriteU64(out, index.live_point_count());
    WriteU64(out, owner.size());
    out.write(reinterpret_cast<const char*>(owner.data()),
              static_cast<std::streamsize>(owner.size() * sizeof(uint32_t)));
    // Each shard is one length-prefixed, generation-stamped GIRDYN01 blob
    // — the same envelope the standalone writer emits, so the shard
    // format inherits every GIRDYN01 validation on the way back in.
    for (size_t s = 0; s < index.shard_count(); ++s) {
      std::ostringstream blob(std::ios::binary);
      Status st = SaveDynamicIndexToStream(blob, index.shard(s));
      if (!st.ok()) return st;
      const std::string bytes = std::move(blob).str();
      WriteU64(out, bytes.size());
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    return Status::OK();
  });
}

namespace {

/// Parses the GIRSHD01 header + owner map (everything before the shard
/// blobs), with the same validation battery LoadShardedIndex has always
/// applied — shared by the full loader, the manifest loader and the
/// single-lane extractor.
Status ReadShardedHeader(CheckedReader& reader, const std::string& path,
                         ShardedManifest* out) {
  if (!reader.ReadMagic(kShdMagic)) {
    return Status::Corruption("bad sharded index header: " + path);
  }
  uint64_t num_weights = 0;
  if (!reader.ReadU32(&out->shard_count) || !reader.ReadU32(&out->dim) ||
      !reader.ReadU64(&out->sequence) ||
      !reader.ReadU64(&out->insert_counter) ||
      !reader.ReadU64(&out->live_points) || !reader.ReadU64(&num_weights)) {
    return Status::Corruption("truncated sharded index header: " + path);
  }
  if (out->shard_count == 0 || out->shard_count > ShardedGirIndex::kMaxShards) {
    return Status::Corruption("shard count out of range: " + path);
  }
  if (out->dim == 0 || out->dim > (1u << 16)) {
    return Status::Corruption("dimension out of range: " + path);
  }
  if (out->insert_counter < num_weights) {
    return Status::Corruption("weight insert counter below the live count: " +
                              path);
  }
  PayloadBudget owner_budget(reader);
  if (!owner_budget.Add(num_weights, sizeof(uint32_t)) ||
      !owner_budget.FitsFile()) {
    return Status::Corruption("owner map exceeds the file size: " + path);
  }
  if (!reader.ReadArray(static_cast<size_t>(num_weights), &out->owner)) {
    return Status::Corruption("truncated owner map: " + path);
  }
  for (uint32_t s : out->owner) {
    if (s >= out->shard_count) {
      return Status::Corruption("weight owner out of range: " + path);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ShardedGirIndex>> LoadShardedIndex(
    const std::string& path, bool use_workers, bool background_compact) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CheckedReader reader(in);
  ShardedManifest manifest;
  Status header = ReadShardedHeader(reader, path, &manifest);
  if (!header.ok()) return header;
  const uint32_t num_shards = manifest.shard_count;
  const uint32_t dim = manifest.dim;
  const uint64_t sequence = manifest.sequence;
  const uint64_t insert_counter = manifest.insert_counter;
  const uint64_t live_points = manifest.live_points;
  std::vector<uint32_t> owner = std::move(manifest.owner);
  std::vector<std::unique_ptr<DynamicGirIndex>> shards;
  shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint64_t blob_bytes = 0;
    if (!reader.ReadU64(&blob_bytes)) {
      return Status::Corruption("truncated shard blob header: " + path);
    }
    PayloadBudget blob_budget(reader);
    if (!blob_budget.Add(blob_bytes, 1) || !blob_budget.FitsFile()) {
      return Status::Corruption("shard blob exceeds the file size: " + path);
    }
    // Parse the blob from its own bounded stream so the embedded GIRDYN01
    // envelope gets the full standalone validation battery, including the
    // trailing-garbage check at the declared blob boundary.
    std::vector<char> bytes;
    if (!reader.ReadArray(static_cast<size_t>(blob_bytes), &bytes)) {
      return Status::Corruption("truncated shard blob: " + path);
    }
    std::istringstream blob_in(std::string(bytes.data(), bytes.size()),
                               std::ios::binary);
    CheckedReader blob_reader(blob_in);
    auto loaded = LoadDynamicIndexFromStream(blob_reader, /*embedded=*/false);
    if (!loaded.ok()) {
      return WithPath(
          Status::Corruption("shard " + std::to_string(s) + ": " +
                             loaded.status().message()),
          path);
    }
    shards.push_back(
        std::make_unique<DynamicGirIndex>(std::move(loaded).value()));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after sharded index: " + path);
  }
  if (shards[0]->dim() != dim ||
      shards[0]->live_point_count() != live_points) {
    return Status::Corruption(
        "sharded header disagrees with the shard blobs: " + path);
  }
  ShardedIndexOptions options;
  options.shards = num_shards;
  options.dynamic = shards[0]->options();
  options.use_workers = use_workers;
  options.background_compact = background_compact && use_workers;
  auto index = ShardedGirIndex::FromParts(std::move(options),
                                          std::move(shards), std::move(owner),
                                          sequence, insert_counter);
  if (!index.ok()) {
    return Status::Corruption("invalid sharded index contents (" +
                              index.status().message() + "): " + path);
  }
  return index;
}

Result<ShardedManifest> LoadShardedManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CheckedReader reader(in);
  ShardedManifest manifest;
  Status header = ReadShardedHeader(reader, path, &manifest);
  if (!header.ok()) return header;
  return manifest;
}

Result<DynamicGirIndex> LoadShardLane(const std::string& path,
                                      uint32_t lane) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  CheckedReader reader(in);
  ShardedManifest manifest;
  Status header = ReadShardedHeader(reader, path, &manifest);
  if (!header.ok()) return header;
  if (lane >= manifest.shard_count) {
    return Status::InvalidArgument(
        "shard lane " + std::to_string(lane) + " out of range (file has " +
        std::to_string(manifest.shard_count) + " shards): " + path);
  }
  for (uint32_t s = 0; s <= lane; ++s) {
    uint64_t blob_bytes = 0;
    if (!reader.ReadU64(&blob_bytes)) {
      return Status::Corruption("truncated shard blob header: " + path);
    }
    PayloadBudget blob_budget(reader);
    if (!blob_budget.Add(blob_bytes, 1) || !blob_budget.FitsFile()) {
      return Status::Corruption("shard blob exceeds the file size: " + path);
    }
    std::vector<char> bytes;
    if (!reader.ReadArray(static_cast<size_t>(blob_bytes), &bytes)) {
      return Status::Corruption("truncated shard blob: " + path);
    }
    if (s < lane) continue;  // a preceding lane: skipped by its length
    std::istringstream blob_in(std::string(bytes.data(), bytes.size()),
                               std::ios::binary);
    CheckedReader blob_reader(blob_in);
    auto loaded = LoadDynamicIndexFromStream(blob_reader, /*embedded=*/false);
    if (!loaded.ok()) {
      return WithPath(Status::Corruption("shard " + std::to_string(s) + ": " +
                                         loaded.status().message()),
                      path);
    }
    return loaded;
  }
  return Status::Internal("unreachable");
}

}  // namespace gir

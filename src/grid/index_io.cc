#include "grid/index_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "grid/bit_packed.h"

namespace gir {

namespace {

constexpr char kMagic[8] = {'G', 'I', 'R', 'I', 'D', 'X', '0', '1'};
constexpr char kTauMagic[8] = {'G', 'I', 'R', 'T', 'A', 'U', '0', '1'};

uint32_t BitsForPartitions(size_t n) {
  uint32_t bits = 1;
  while ((size_t{1} << bits) < n) ++bits;
  return bits;
}

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteDoubles(std::ofstream& out, const std::vector<double>& v) {
  WriteU64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}
bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}
bool ReadDoubles(std::ifstream& in, std::vector<double>* v) {
  uint64_t count = 0;
  if (!ReadU64(in, &count)) return false;
  if (count > (1u << 20)) return false;  // boundaries are at most 256 long
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return static_cast<bool>(in);
}

Status WritePacked(std::ofstream& out, const ApproxVectors& cells,
                   size_t partitions) {
  auto packed = BitPackedVectors::Pack(cells, BitsForPartitions(partitions));
  if (!packed.ok()) return packed.status();
  const PackedBlob blob = packed.value().ToBlob();
  WriteU32(out, blob.bits_per_cell);
  WriteU32(out, blob.dim);
  WriteU64(out, blob.count);
  out.write(reinterpret_cast<const char*>(blob.payload.data()),
            static_cast<std::streamsize>(blob.payload.size()));
  return Status::OK();
}

Result<ApproxVectors> ReadPacked(std::ifstream& in) {
  PackedBlob blob;
  if (!ReadU32(in, &blob.bits_per_cell) || !ReadU32(in, &blob.dim) ||
      !ReadU64(in, &blob.count)) {
    return Status::Corruption("truncated packed header");
  }
  if (blob.bits_per_cell == 0 || blob.bits_per_cell > 8 || blob.dim == 0) {
    return Status::Corruption("invalid packed parameters");
  }
  blob.payload.resize(blob.BytesPerVector() * blob.count);
  in.read(reinterpret_cast<char*>(blob.payload.data()),
          static_cast<std::streamsize>(blob.payload.size()));
  if (!in) return Status::Corruption("truncated packed payload");
  auto packed = BitPackedVectors::FromBlob(std::move(blob));
  if (!packed.ok()) return packed.status();
  return packed.value().Unpack();
}

/// Reads exactly `count` elements of a raw array whose size the header
/// implies (unlike ReadDoubles there is no embedded count — τ components
/// can far exceed the boundary-array cap).
template <typename T>
bool ReadArray(std::ifstream& in, size_t count, std::vector<T>* v) {
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveGirIndex(const std::string& path, const GirIndex& index) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const GirOptions& options = index.options();
  WriteU32(out, static_cast<uint32_t>(options.partitions));
  WriteU32(out, static_cast<uint32_t>(options.bound_mode));
  WriteU32(out, options.use_domin ? 1 : 0);
  WriteU32(out, index.grid().point_partitioner().is_uniform() ? 1 : 0);
  WriteU32(out, index.grid().weight_partitioner().is_uniform() ? 1 : 0);
  WriteDoubles(out, index.grid().point_partitioner().boundaries());
  WriteDoubles(out, index.grid().weight_partitioner().boundaries());
  Status s = WritePacked(out, index.point_cells(),
                         index.grid().point_partitions());
  if (!s.ok()) return s;
  s = WritePacked(out, index.weight_cells(),
                  index.grid().weight_partitions());
  if (!s.ok()) return s;
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<GirIndex> LoadGirIndex(const std::string& path, const Dataset& points,
                              const Dataset& weights, bool verify_cells) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad index header: " + path);
  }
  uint32_t partitions = 0, bound_mode = 0, use_domin = 0;
  uint32_t uniform_p = 0, uniform_w = 0;
  if (!ReadU32(in, &partitions) || !ReadU32(in, &bound_mode) ||
      !ReadU32(in, &use_domin) || !ReadU32(in, &uniform_p) ||
      !ReadU32(in, &uniform_w)) {
    return Status::Corruption("truncated index options: " + path);
  }
  if (bound_mode > static_cast<uint32_t>(BoundMode::kExactWeight)) {
    return Status::Corruption("unknown bound mode: " + path);
  }
  std::vector<double> p_bounds, w_bounds;
  if (!ReadDoubles(in, &p_bounds) || !ReadDoubles(in, &w_bounds)) {
    return Status::Corruption("truncated boundaries: " + path);
  }
  auto MakePartitioner = [](const std::vector<double>& bounds,
                            bool uniform) -> Result<Partitioner> {
    if (uniform) {
      if (bounds.size() < 2) {
        return Status::Corruption("invalid boundary count");
      }
      return Partitioner::Uniform(bounds.size() - 1, bounds.back());
    }
    return Partitioner::FromBoundaries(bounds);
  };
  auto pp = MakePartitioner(p_bounds, uniform_p != 0);
  if (!pp.ok()) return pp.status();
  auto wp = MakePartitioner(w_bounds, uniform_w != 0);
  if (!wp.ok()) return wp.status();

  auto point_cells = ReadPacked(in);
  if (!point_cells.ok()) return point_cells.status();
  auto weight_cells = ReadPacked(in);
  if (!weight_cells.ok()) return weight_cells.status();

  if (verify_cells) {
    auto check = [](const Dataset& data, const ApproxVectors& cells,
                    const Partitioner& part) {
      for (size_t i = 0; i < data.size(); ++i) {
        ConstRow row = data.row(i);
        for (size_t j = 0; j < data.dim(); ++j) {
          if (cells.row(i)[j] != part.CellOf(row[j])) return false;
        }
      }
      return true;
    };
    if (!check(points, point_cells.value(), pp.value()) ||
        !check(weights, weight_cells.value(), wp.value())) {
      return Status::Corruption(
          "persisted cells do not match the supplied datasets: " + path);
    }
  }

  GirOptions options;
  options.partitions = partitions;
  options.bound_mode = static_cast<BoundMode>(bound_mode);
  options.use_domin = use_domin != 0;
  return GirIndex::Assemble(points, weights, std::move(pp).value(),
                            std::move(wp).value(),
                            std::move(point_cells).value(),
                            std::move(weight_cells).value(), options);
}

Status SaveTauIndex(const std::string& path, const TauIndex& index) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kTauMagic, sizeof(kTauMagic));
  WriteU32(out, static_cast<uint32_t>(index.k_cap()));
  WriteU32(out, static_cast<uint32_t>(index.bins()));
  WriteU32(out, static_cast<uint32_t>(index.dim()));
  WriteU64(out, index.num_weights());
  WriteU64(out, index.num_points());
  const std::vector<double>& tau = index.tau();
  const std::vector<double>& score_max = index.score_max();
  const std::vector<uint32_t>& hist = index.hist_prefix();
  out.write(reinterpret_cast<const char*>(tau.data()),
            static_cast<std::streamsize>(tau.size() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(score_max.data()),
            static_cast<std::streamsize>(score_max.size() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(hist.data()),
            static_cast<std::streamsize>(hist.size() * sizeof(uint32_t)));
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<TauIndex> LoadTauIndex(const std::string& path,
                              const Dataset& weights) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTauMagic, sizeof(kTauMagic)) != 0) {
    return Status::Corruption("bad tau index header: " + path);
  }
  uint32_t k_cap = 0, bins = 0, dim = 0;
  uint64_t num_weights = 0, num_points = 0;
  if (!ReadU32(in, &k_cap) || !ReadU32(in, &bins) || !ReadU32(in, &dim) ||
      !ReadU64(in, &num_weights) || !ReadU64(in, &num_points)) {
    return Status::Corruption("truncated tau index header: " + path);
  }
  if (k_cap == 0 || num_points == 0 || k_cap > num_points || bins < 2 ||
      bins > (1u << 20)) {
    return Status::Corruption("invalid tau index parameters: " + path);
  }
  if (dim != weights.dim() || num_weights != weights.size()) {
    return Status::Corruption(
        "tau index shape does not match the supplied weights: " + path);
  }
  std::vector<double> tau;
  std::vector<double> score_max;
  std::vector<uint32_t> hist;
  if (!ReadArray(in, size_t{k_cap} * num_weights, &tau) ||
      !ReadArray(in, num_weights, &score_max) ||
      !ReadArray(in, size_t{bins} * num_weights, &hist)) {
    return Status::Corruption("truncated tau index payload: " + path);
  }
  char extra;
  if (in.read(&extra, 1)) {
    return Status::Corruption("trailing bytes after tau index: " + path);
  }
  return TauIndex::FromParts(weights, num_points, k_cap, bins,
                             std::move(tau), std::move(score_max),
                             std::move(hist));
}

}  // namespace gir

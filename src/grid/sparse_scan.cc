#include "grid/sparse_scan.h"

#include <algorithm>
#include <utility>

namespace gir {

SparseGir::SparseGir(const Dataset& points, const Dataset& weights,
                     GridIndex grid, ApproxVectors point_cells,
                     GirOptions options)
    : points_(&points),
      weights_(&weights),
      grid_(std::move(grid)),
      point_cells_(std::move(point_cells)),
      options_(options) {}

Result<SparseGir> SparseGir::Build(const Dataset& points,
                                   const Dataset& weights,
                                   const GirOptions& options,
                                   double zero_threshold) {
  if (points.empty()) {
    return Status::InvalidArgument("point set must be non-empty");
  }
  if (points.dim() != weights.dim()) {
    return Status::InvalidArgument("dimension mismatch between P and W");
  }
  const double point_range = std::max(points.MaxValue(), 1e-300);
  const double weight_range = std::max(weights.MaxValue(), 1e-300);
  auto pp = Partitioner::Uniform(options.partitions, point_range);
  if (!pp.ok()) return pp.status();
  auto wp = Partitioner::Uniform(options.partitions, weight_range);
  if (!wp.ok()) return wp.status();
  GridIndex grid =
      GridIndex::Make(std::move(pp).value(), std::move(wp).value());
  ApproxVectors pa = ApproxVectors::Build(points, grid.point_partitioner());

  SparseGir index(points, weights, std::move(grid), std::move(pa), options);
  const Partitioner& wpart = index.grid_.weight_partitioner();
  index.row_offsets_.reserve(weights.size() + 1);
  index.row_offsets_.push_back(0);
  for (size_t i = 0; i < weights.size(); ++i) {
    ConstRow w = weights.row(i);
    for (size_t j = 0; j < w.size(); ++j) {
      if (w[j] > zero_threshold) {
        index.nz_dims_.push_back(static_cast<uint32_t>(j));
        index.nz_values_.push_back(w[j]);
        index.nz_cells_.push_back(wpart.CellOf(w[j]));
      }
    }
    index.row_offsets_.push_back(index.nz_dims_.size());
  }
  return index;
}

Score SparseGir::SparseScore(size_t weight_row, ConstRow x) const {
  Score s = 0.0;
  for (size_t t = row_offsets_[weight_row]; t < row_offsets_[weight_row + 1];
       ++t) {
    s += nz_values_[t] * x[nz_dims_[t]];
  }
  return s;
}

int64_t SparseGir::SparseRank(size_t weight_row, Score query_score,
                              int64_t threshold, DominBuffer* domin,
                              std::vector<VectorId>& candidates, ConstRow q,
                              QueryStats* stats) const {
  const size_t n = points_->size();
  const size_t nz_begin = row_offsets_[weight_row];
  const size_t nz_end = row_offsets_[weight_row + 1];
  const double* g = grid_.data();
  const size_t stride = grid_.stride();
  const size_t up_off = grid_.upper_offset();

  candidates.clear();
  uint64_t visited = 0, filtered = 0, refined = 0, dominated = 0;
  uint64_t bound_evals = 0, inner_products = 0, mults = 0;

  int64_t rank = (domin != nullptr) ? domin->count() : 0;
  bool over = rank >= threshold;
  for (size_t j = 0; !over && j < n; ++j) {
    if (domin != nullptr && domin->Contains(j)) {
      ++dominated;
      continue;
    }
    ++visited;
    const uint8_t* pc = point_cells_.row(j);
    // Zero-weight dimensions contribute exactly 0 to both bounds.
    Score lower = 0.0, upper = 0.0;
    for (size_t t = nz_begin; t < nz_end; ++t) {
      const size_t base =
          static_cast<size_t>(pc[nz_dims_[t]]) * stride + nz_cells_[t];
      lower += g[base];
      upper += g[base + up_off];
    }
    bound_evals += 2;
    if (upper < query_score) {
      ++filtered;
      if (domin != nullptr && Dominates(points_->row(j), q)) domin->Add(j);
      if (++rank >= threshold) over = true;
    } else if (lower < query_score) {
      candidates.push_back(static_cast<VectorId>(j));
    } else {
      ++filtered;
    }
  }
  if (!over) {
    for (VectorId id : candidates) {
      ++refined;
      ++inner_products;
      mults += nz_end - nz_begin;
      if (SparseScore(weight_row, points_->row(id)) < query_score) {
        if (++rank >= threshold) {
          over = true;
          break;
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->points_visited += visited;
    stats->points_filtered += filtered;
    stats->points_refined += refined;
    stats->points_dominated += dominated;
    stats->bound_evaluations += bound_evals;
    stats->inner_products += inner_products + 1;
    stats->multiplications += mults + (nz_end - nz_begin);
  }
  return over ? kRankOverThreshold : rank;
}

ReverseTopKResult SparseGir::ReverseTopK(ConstRow q, size_t k,
                                         QueryStats* stats) const {
  DominBuffer domin(points_->size());
  DominBuffer* domin_ptr = options_.use_domin ? &domin : nullptr;
  std::vector<VectorId> scratch;
  ReverseTopKResult result;
  const int64_t threshold = static_cast<int64_t>(k);
  for (size_t i = 0; i < weight_count(); ++i) {
    const Score qs = SparseScore(i, q);
    const int64_t rank =
        SparseRank(i, qs, threshold, domin_ptr, scratch, q, stats);
    if (rank != kRankOverThreshold) {
      result.push_back(static_cast<VectorId>(i));
    }
    if (domin_ptr != nullptr && domin_ptr->count() >= threshold) return {};
  }
  if (stats != nullptr) stats->weights_evaluated += weight_count();
  return result;
}

ReverseKRanksResult SparseGir::ReverseKRanks(ConstRow q, size_t k,
                                             QueryStats* stats) const {
  DominBuffer domin(points_->size());
  DominBuffer* domin_ptr = options_.use_domin ? &domin : nullptr;
  std::vector<VectorId> scratch;
  std::vector<RankedWeight> heap;
  heap.reserve(k + 1);
  const int64_t no_threshold = static_cast<int64_t>(points_->size()) + 1;
  for (size_t i = 0; i < weight_count(); ++i) {
    const int64_t threshold =
        (heap.size() == k && k > 0) ? heap.front().rank : no_threshold;
    const Score qs = SparseScore(i, q);
    const int64_t rank =
        SparseRank(i, qs, threshold, domin_ptr, scratch, q, stats);
    if (rank == kRankOverThreshold || k == 0) continue;
    RankedWeight entry{static_cast<VectorId>(i), rank};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end());
    } else {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end());
    }
  }
  if (stats != nullptr) stats->weights_evaluated += weight_count();
  std::sort(heap.begin(), heap.end());
  return heap;
}

double SparseGir::AverageNonZeros() const {
  if (weight_count() == 0) return 0.0;
  return static_cast<double>(nz_dims_.size()) /
         static_cast<double>(weight_count());
}

}  // namespace gir

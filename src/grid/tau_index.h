#ifndef GIR_GRID_TAU_INDEX_H_
#define GIR_GRID_TAU_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/dataset.h"
#include "core/query_types.h"
#include "core/status.h"
#include "core/types.h"

namespace gir {

/// Build knobs of the τ-index (thresholds + score histograms per weight).
struct TauIndexOptions {
  /// Largest k the threshold vector answers exactly: τ_1(w)..τ_K(w) are
  /// materialized per weight, K = min(k_max, |P|). Reverse top-k for
  /// k <= K is a single O(|W|·d) pass; larger k (up to |P|) falls back to
  /// the scan engines.
  size_t k_max = 64;
  /// Fixed-width score-histogram bins per weight over
  /// [min_score(w), max_score(w)]; prefix-summed at build. More bins make
  /// the reverse k-ranks bounds tighter at 4 bytes per (weight, bin).
  size_t bins = 64;
  /// Build parallelism: worker threads striping over W. 0 uses
  /// hardware_concurrency(); 1 builds on the calling thread.
  size_t threads = 0;
};

/// Per-weight rank bounds derived from the τ vector and the score
/// histogram: lo <= rank(w, q) <= hi, exact iff lo == hi.
struct TauRankBounds {
  int64_t lo = 0;
  int64_t hi = 0;
  bool exact() const { return lo == hi; }
};

/// The preference-side τ-index. Where the scan engines re-derive every
/// rank(w, q) from the product set per query — O(|W|·|P|) work — this
/// index pays the P-side cost once at build time: all of P is scored
/// under all of W with the SIMD kernels of core/simd.h, and per weight it
/// materializes
///   * the exact order statistics τ_1(w) <= ... <= τ_K(w) of the score
///     multiset {f_w(p) : p in P} (K = min(k_max, |P|)), and
///   * a prefix-summed fixed-width histogram of the scores over
///     [τ_1(w), max_score(w)].
///
/// Under the library's strict `<` rank convention,
///     rank(w, q) < k  ⟺  f_w(q) <= τ_k(w),
/// so reverse top-k for k <= K is a single vectorized pass over W — score
/// f_w(q) with AccumulateScaledDoubles over the column-major mirror of W,
/// compare against the τ_k column — with no product scan at all, and the
/// answer is exact (τ_k is an exact double, the comparison has no rounding
/// slack). The histogram brackets rank(w, q) for reverse k-ranks so that
/// only an unresolved band of weights needs a scan (DESIGN.md §10).
///
/// Scores are accumulated dimension-at-a-time with an unfused
/// multiply-then-add, so every score is bit-identical to the scalar
/// InnerProduct the naive oracle and the scan engines compute (in the
/// default build; see DESIGN.md §10 on -march=native contraction).
///
/// The index is self-contained: it copies what it needs from W at build
/// time (the column-major mirror), so the datasets may be released after
/// Build — only loading (index_io) needs W again to rebuild the mirror.
class TauIndex {
 public:
  /// Scores |P| x |W| pairs (striped over `options.threads` workers) and
  /// materializes the thresholds and histograms. InvalidArgument on empty
  /// P, dimension mismatch, k_max == 0 or bins < 2.
  static Result<TauIndex> Build(const Dataset& points, const Dataset& weights,
                                const TauIndexOptions& options = {});

  /// Reassembles an index from persisted components (grid/index_io.h).
  /// `weights` must be the preference set the index was built from (size
  /// and dimension are validated; the column mirror is rebuilt from it).
  static Result<TauIndex> FromParts(const Dataset& weights, size_t num_points,
                                    size_t k_cap, size_t bins,
                                    std::vector<double> tau,
                                    std::vector<double> score_max,
                                    std::vector<uint32_t> hist_prefix);

  /// True if the τ vector answers reverse top-k for this k exactly:
  /// k == 0 (empty answer), k <= k_cap() (threshold test), or k > |P|
  /// (every rank is < k). The remaining band k_cap() < k <= |P| needs a
  /// scan engine.
  bool CanAnswerTopK(size_t k) const {
    return k == 0 || k <= k_cap_ || k > num_points_;
  }

  /// Reverse top-k over all of W. Precondition: CanAnswerTopK(k) and
  /// q.size() == dim(). Identical to NaiveReverseTopK.
  ReverseTopKResult ReverseTopK(ConstRow q, size_t k,
                                QueryStats* stats = nullptr) const;

  /// Appends the qualifying ids of weights [w_begin, w_end) to `out` in
  /// ascending order — the striped unit the parallel driver fans out.
  /// Precondition: CanAnswerTopK(k).
  void TopKRange(ConstRow q, size_t k, size_t w_begin, size_t w_end,
                 ReverseTopKResult& out) const;

  /// scores[i] = f_{w_begin+i}(q) for i in [0, w_end - w_begin), computed
  /// in 16-weight-wide SIMD batches over the column mirror of W.
  void ScoreRange(ConstRow q, size_t w_begin, size_t w_end,
                  double* scores) const;

  /// Multi-query scoring: scores[r * stride + i] = f_{w_begin+i}(q_r) for
  /// each of the `num_queries` rows in `queries`, one register-tiled sweep
  /// over the column mirror of W (core/simd.h ScoreTileColumns) so every
  /// weight column loaded feeds the whole query block. Same rounding as
  /// ScoreRange — bit-identical to InnerProduct(w, q).
  void ScoreBlock(const double* const* queries, size_t num_queries,
                  size_t w_begin, size_t w_end, double* scores,
                  size_t stride) const;

  /// Batch analogue of TopKRange: resolves the whole query block against
  /// weights [w_begin, w_end) chunk by chunk — one tiled scoring sweep,
  /// then the τ_k membership test per query row — appending qualifying
  /// ids to results[r] in ascending order. Precondition: CanAnswerTopK(k).
  void TopKBatchRange(const double* const* queries, size_t num_queries,
                      size_t k, size_t w_begin, size_t w_end,
                      ReverseTopKResult* results) const;

  /// Brackets rank(w, q) given score = f_w(q): exact (lo == hi) whenever
  /// rank < k_cap() or the histogram pins it; sound in all cases.
  TauRankBounds BoundRank(size_t w, double score) const;

  /// O(1) lower bound on rank(w, q) from the histogram alone — the prefix
  /// count of full bins strictly below `score`, with no τ-column binary
  /// search. Looser than BoundRank().lo but touches only w-contiguous
  /// rows, so a pass over all weights streams; the dynamic index's
  /// correction-free reject test (DESIGN.md §12) is built on it.
  int64_t RankLowerBound(size_t w, double score) const;

  /// τ_k(w), the k-th smallest product score under w. 1 <= k <= k_cap().
  double Threshold(size_t w, size_t k) const {
    return tau_[(k - 1) * num_weights_ + w];
  }

  size_t dim() const { return dim_; }
  size_t num_points() const { return num_points_; }
  size_t num_weights() const { return num_weights_; }
  size_t k_cap() const { return k_cap_; }
  size_t bins() const { return bins_; }

  /// Raw component views for serialization (grid/index_io.cc).
  const std::vector<double>& tau() const { return tau_; }
  const std::vector<double>& score_max() const { return score_max_; }
  const std::vector<uint32_t>& hist_prefix() const { return hist_prefix_; }

  /// Bytes of thresholds + histograms + the W column mirror.
  size_t MemoryBytes() const;

 private:
  TauIndex() = default;

  /// Builds the column-major double mirror of W the scoring kernels read.
  void BuildWeightColumns(const Dataset& weights);

  /// Reusable per-stripe buffers for Materialize: the per-score bin
  /// vector, the extra partial histograms that break the scatter's
  /// store-to-load dependency, and the histogram-guided selection band.
  struct MaterializeScratch {
    std::vector<uint32_t> bins;
    std::vector<uint32_t> partial;
    std::vector<double> band;
  };

  /// Thresholds/histogram extraction for one weight, given its n scores.
  void Materialize(size_t w, const double* scores,
                   MaterializeScratch& scratch);

  size_t dim_ = 0;
  size_t num_points_ = 0;
  size_t num_weights_ = 0;
  size_t k_cap_ = 0;
  size_t bins_ = 0;
  /// τ order statistics, k-major: tau_[(k-1) * |W| + w] = τ_k(w). The
  /// k-major layout makes the reverse top-k comparison a contiguous
  /// column, one cache line per 8 weights.
  std::vector<double> tau_;
  /// Per-weight maximum score (the histogram's upper edge; the lower edge
  /// is τ_1(w)).
  std::vector<double> score_max_;
  /// Prefix-summed histograms, weight-major:
  /// hist_prefix_[w * bins + b] = #points whose score bins at <= b.
  std::vector<uint32_t> hist_prefix_;
  /// Column-major mirror of W: wcol_[i * |W| + w] = W[w][i].
  std::vector<double> wcol_;
};

}  // namespace gir

#endif  // GIR_GRID_TAU_INDEX_H_

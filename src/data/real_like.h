#ifndef GIR_DATA_REAL_LIKE_H_
#define GIR_DATA_REAL_LIKE_H_

#include <cstddef>
#include <cstdint>

#include "core/dataset.h"

namespace gir {

/// Synthetic stand-ins for the paper's three real datasets (§6.1), which we
/// do not have access to. Each generator reproduces the cardinality,
/// dimensionality and qualitative shape the experiments depend on; the
/// substitution is documented in DESIGN.md §4.

/// HOUSE (Household): 201,760 6-d tuples of an American family's annual
/// payment *percentages* across gas / electricity / water / heating /
/// insurance / property tax. Rows are compositional (sum to 100): modeled
/// as a Dirichlet mixture with category-skewed concentration (property tax
/// and insurance dominate; water is small), scaled to percent.
Dataset MakeHouseLike(size_t n, uint64_t seed);
inline constexpr size_t kHouseCardinality = 201760;
inline constexpr size_t kHouseDim = 6;

/// COLOR: 68,040 9-d HSV image-feature tuples (Corel collection). Feature
/// values are moments in [0, 1] with strong inter-channel correlation:
/// modeled as a 32-component Gaussian mixture on [0,1]^9 with per-component
/// anisotropic spread.
Dataset MakeColorLike(size_t n, uint64_t seed);
inline constexpr size_t kColorCardinality = 68040;
inline constexpr size_t kColorDim = 9;

/// DIANPING restaurants: 209,132 6-d average review-score vectors (overall
/// rate, flavor, cost, service, environment, waiting time) on a 0-5 star
/// scale. A latent per-restaurant quality drives all six scores; review
/// averaging shrinks the noise. Lower = better to match the paper's
/// min-preferred convention (scores are stored as 5 - stars).
Dataset MakeDianpingRestaurantsLike(size_t n, uint64_t seed);
inline constexpr size_t kDianpingRestaurantCardinality = 209132;

/// DIANPING users: 510,071 6-d preference vectors derived from per-user
/// review averages, normalized to sum 1. Users emphasize flavor and cost
/// over waiting time on average, with heavy per-user variation.
Dataset MakeDianpingUsersLike(size_t n, uint64_t seed);
inline constexpr size_t kDianpingUserCardinality = 510071;
inline constexpr size_t kDianpingDim = 6;

}  // namespace gir

#endif  // GIR_DATA_REAL_LIKE_H_

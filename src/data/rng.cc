#include "data/rng.h"

#include <cmath>

namespace gir {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  // Modulo bias is < 2^-40 for any n used in this library.
  return NextU64() % n;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double lambda) {
  // -log(1 - U) with U in [0, 1); 1-U never 0.
  return -std::log(1.0 - NextDouble()) / lambda;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace gir

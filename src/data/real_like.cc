#include "data/real_like.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "data/rng.h"

namespace gir {

namespace {

/// Dirichlet(alpha) sample via normalized Gamma draws; Gamma(shape < 1)
/// handled with the Ahrens-Dieter boost, shape >= 1 with Marsaglia-Tsang.
double SampleGamma(Rng& rng, double shape) {
  if (shape < 1.0) {
    const double u = rng.NextDouble();
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    return SampleGamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = rng.NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

void SampleDirichlet(Rng& rng, const double* alpha, size_t d,
                     std::vector<double>& out) {
  double sum = 0.0;
  for (size_t i = 0; i < d; ++i) {
    out[i] = SampleGamma(rng, alpha[i]);
    sum += out[i];
  }
  for (size_t i = 0; i < d; ++i) out[i] /= sum;
}

}  // namespace

Dataset MakeHouseLike(size_t n, uint64_t seed) {
  // Concentration per category: gas, electricity, water, heating,
  // insurance, property tax. Skew mirrors typical household budgets.
  static constexpr std::array<double, kHouseDim> kBaseAlpha = {
      2.0, 4.0, 1.2, 2.5, 5.0, 8.0};
  Rng rng(seed);
  Dataset ds(kHouseDim);
  ds.Reserve(n);
  std::vector<double> row(kHouseDim);
  for (size_t i = 0; i < n; ++i) {
    // Household-level heterogeneity: scale the whole concentration vector,
    // sharper vectors produce the near-deterministic budget shapes that
    // appear in the real data.
    const double sharpness = 0.5 + 3.0 * rng.NextDouble();
    std::array<double, kHouseDim> alpha;
    for (size_t j = 0; j < kHouseDim; ++j) {
      alpha[j] = kBaseAlpha[j] * sharpness;
    }
    SampleDirichlet(rng, alpha.data(), kHouseDim, row);
    for (double& v : row) v *= 100.0;  // percentages
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset MakeColorLike(size_t n, uint64_t seed) {
  constexpr size_t kComponents = 32;
  Rng rng(seed);
  // Component means in [0,1]^9 with correlated channels: a base brightness
  // value shifts all moments of a component together.
  std::vector<double> means(kComponents * kColorDim);
  std::vector<double> sigmas(kComponents * kColorDim);
  for (size_t c = 0; c < kComponents; ++c) {
    const double brightness = rng.NextDouble();
    for (size_t j = 0; j < kColorDim; ++j) {
      const double channel_offset = 0.35 * (rng.NextDouble() - 0.5);
      means[c * kColorDim + j] =
          std::clamp(brightness + channel_offset, 0.02, 0.98);
      sigmas[c * kColorDim + j] = 0.02 + 0.10 * rng.NextDouble();
    }
  }
  Dataset ds(kColorDim);
  ds.Reserve(n);
  std::vector<double> row(kColorDim);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(kComponents);
    for (size_t j = 0; j < kColorDim; ++j) {
      const double v = rng.NextGaussian(means[c * kColorDim + j],
                                        sigmas[c * kColorDim + j]);
      row[j] = std::clamp(v, 0.0, 1.0);
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset MakeDianpingRestaurantsLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(kDianpingDim);
  ds.Reserve(n);
  std::vector<double> row(kDianpingDim);
  for (size_t i = 0; i < n; ++i) {
    // Latent quality on a 0-5 star scale; most restaurants are mid-pack.
    const double quality = std::clamp(rng.NextGaussian(3.6, 0.7), 0.5, 5.0);
    // Review count controls how much averaging shrinks per-aspect noise.
    const double reviews = 1.0 + rng.NextExponential(1.0 / 30.0);
    const double noise = 1.1 / std::sqrt(reviews);
    for (size_t j = 0; j < kDianpingDim; ++j) {
      const double aspect_bias = 0.25 * (rng.NextDouble() - 0.5);
      const double stars = std::clamp(
          rng.NextGaussian(quality + aspect_bias, noise), 0.0, 5.0);
      // Min-preferred convention: store "badness" = 5 - stars.
      row[j] = 5.0 - stars;
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset MakeDianpingUsersLike(size_t n, uint64_t seed) {
  // Average emphasis: rate, flavor, cost, service, environment, waiting.
  static constexpr std::array<double, kDianpingDim> kBaseAlpha = {
      3.0, 5.0, 4.0, 2.5, 2.0, 1.5};
  Rng rng(seed);
  Dataset ds(kDianpingDim);
  ds.Reserve(n);
  std::vector<double> row(kDianpingDim);
  for (size_t i = 0; i < n; ++i) {
    SampleDirichlet(rng, kBaseAlpha.data(), kDianpingDim, row);
    ds.AppendUnchecked(row);
  }
  return ds;
}

}  // namespace gir

#ifndef GIR_DATA_WEIGHTS_H_
#define GIR_DATA_WEIGHTS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "core/status.h"

namespace gir {

/// Preference-set distributions used in the paper: UN and CL (Table 5) plus
/// NORMAL/EXP for the Table 4 filtering study. All generators produce valid
/// preference vectors: non-negative entries summing to 1.
enum class WeightDistribution {
  kUniform,
  kClustered,
  kNormal,
  kExponential,
  kSparse,
};

/// Parses "UN" / "CL" / "NORMAL" / "EXP" / "SPARSE" (case-insensitive).
Result<WeightDistribution> ParseWeightDistribution(const std::string& name);

/// Short paper-style name.
const char* WeightDistributionName(WeightDistribution dist);

struct WeightGeneratorOptions {
  /// Number of clusters for kClustered; 0 means cbrt(n) (Table 5).
  size_t num_clusters = 0;
  /// Cluster noise before renormalization (absolute, on the simplex scale).
  double sigma = 0.1;
  /// Rate for kExponential raw values.
  double exponential_lambda = 2.0;
  /// For kSparse: expected fraction of non-zero entries (at least one entry
  /// is always non-zero).
  double sparsity_nonzero_fraction = 0.3;
};

/// n preference vectors uniform on the (d-1)-simplex (Dirichlet(1,...,1),
/// sampled as normalized exponentials).
Dataset GenerateWeightsUniform(size_t n, size_t d, uint64_t seed,
                               const WeightGeneratorOptions& opts = {});

/// Clustered preferences: cluster centers uniform on the simplex; members
/// are centers plus Gaussian noise, clamped non-negative, renormalized.
Dataset GenerateWeightsClustered(size_t n, size_t d, uint64_t seed,
                                 const WeightGeneratorOptions& opts = {});

/// Raw per-dimension |N(0.5, 0.1)| values, renormalized to sum 1.
Dataset GenerateWeightsNormal(size_t n, size_t d, uint64_t seed,
                              const WeightGeneratorOptions& opts = {});

/// Raw per-dimension Exp(lambda) values, renormalized to sum 1.
Dataset GenerateWeightsExponential(size_t n, size_t d, uint64_t seed,
                                   const WeightGeneratorOptions& opts = {});

/// Sparse preferences (§7 future work: users care about few attributes):
/// each vector has a random non-empty support, uniform simplex weights on
/// the support, exact zeros elsewhere.
Dataset GenerateWeightsSparse(size_t n, size_t d, uint64_t seed,
                              const WeightGeneratorOptions& opts = {});

/// Dispatch over WeightDistribution.
Dataset GenerateWeights(WeightDistribution dist, size_t n, size_t d,
                        uint64_t seed,
                        const WeightGeneratorOptions& opts = {});

}  // namespace gir

#endif  // GIR_DATA_WEIGHTS_H_

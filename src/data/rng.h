#ifndef GIR_DATA_RNG_H_
#define GIR_DATA_RNG_H_

#include <cstdint>

namespace gir {

/// Deterministic, seedable PRNG (xoshiro256++ seeded through SplitMix64).
/// All dataset generators take explicit seeds so every experiment in this
/// repository is reproducible run-to-run and machine-to-machine.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextIndex(uint64_t n);

  /// Standard normal via the Marsaglia polar method.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Exponential with rate lambda (mean 1/lambda). Precondition: lambda > 0.
  double NextExponential(double lambda);

  /// Derives an independent child generator; stream i of the same parent
  /// seed is stable across calls in the same order.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace gir

#endif  // GIR_DATA_RNG_H_

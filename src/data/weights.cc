#include "data/weights.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <vector>

#include "data/rng.h"

namespace gir {

namespace {

size_t DefaultClusters(size_t n, size_t configured) {
  if (configured > 0) return configured;
  const size_t c = static_cast<size_t>(std::cbrt(static_cast<double>(n)));
  return std::max<size_t>(1, c);
}

void SampleSimplexUniform(Rng& rng, std::vector<double>& w) {
  // Normalized i.i.d. exponentials are Dirichlet(1,...,1): uniform on the
  // simplex.
  double sum = 0.0;
  for (double& v : w) {
    v = rng.NextExponential(1.0);
    sum += v;
  }
  for (double& v : w) v /= sum;
}

void NormalizeNonNegative(std::vector<double>& w, Rng& rng) {
  double sum = 0.0;
  for (double& v : w) {
    v = std::max(v, 0.0);
    sum += v;
  }
  if (sum <= 0.0) {
    // Degenerate draw; fall back to a fresh uniform simplex sample.
    SampleSimplexUniform(rng, w);
    return;
  }
  for (double& v : w) v /= sum;
}

}  // namespace

Result<WeightDistribution> ParseWeightDistribution(const std::string& name) {
  std::string up;
  up.reserve(name.size());
  for (char c : name) up.push_back(static_cast<char>(std::toupper(c)));
  if (up == "UN" || up == "UNIFORM") return WeightDistribution::kUniform;
  if (up == "CL" || up == "CLUSTERED") return WeightDistribution::kClustered;
  if (up == "NORMAL" || up == "NO") return WeightDistribution::kNormal;
  if (up == "EXP" || up == "EXPONENTIAL") {
    return WeightDistribution::kExponential;
  }
  if (up == "SPARSE") return WeightDistribution::kSparse;
  return Status::InvalidArgument("unknown weight distribution: " + name);
}

const char* WeightDistributionName(WeightDistribution dist) {
  switch (dist) {
    case WeightDistribution::kUniform:
      return "UN";
    case WeightDistribution::kClustered:
      return "CL";
    case WeightDistribution::kNormal:
      return "NORMAL";
    case WeightDistribution::kExponential:
      return "EXP";
    case WeightDistribution::kSparse:
      return "SPARSE";
  }
  return "?";
}

Dataset GenerateWeightsUniform(size_t n, size_t d, uint64_t seed,
                               const WeightGeneratorOptions& /*opts*/) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> w(d);
  for (size_t i = 0; i < n; ++i) {
    SampleSimplexUniform(rng, w);
    ds.AppendUnchecked(w);
  }
  return ds;
}

Dataset GenerateWeightsClustered(size_t n, size_t d, uint64_t seed,
                                 const WeightGeneratorOptions& opts) {
  Rng rng(seed);
  const size_t clusters = DefaultClusters(n, opts.num_clusters);
  std::vector<double> centers(clusters * d);
  std::vector<double> w(d);
  for (size_t c = 0; c < clusters; ++c) {
    SampleSimplexUniform(rng, w);
    std::copy(w.begin(), w.end(), centers.begin() + c * d);
  }
  Dataset ds(d);
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(clusters);
    for (size_t j = 0; j < d; ++j) {
      w[j] = centers[c * d + j] + rng.NextGaussian(0.0, opts.sigma);
    }
    NormalizeNonNegative(w, rng);
    ds.AppendUnchecked(w);
  }
  return ds;
}

Dataset GenerateWeightsNormal(size_t n, size_t d, uint64_t seed,
                              const WeightGeneratorOptions& /*opts*/) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> w(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      w[j] = std::abs(rng.NextGaussian(0.5, 0.1));
    }
    NormalizeNonNegative(w, rng);
    ds.AppendUnchecked(w);
  }
  return ds;
}

Dataset GenerateWeightsExponential(size_t n, size_t d, uint64_t seed,
                                   const WeightGeneratorOptions& opts) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> w(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      w[j] = rng.NextExponential(opts.exponential_lambda);
    }
    NormalizeNonNegative(w, rng);
    ds.AppendUnchecked(w);
  }
  return ds;
}

Dataset GenerateWeightsSparse(size_t n, size_t d, uint64_t seed,
                              const WeightGeneratorOptions& opts) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> w(d);
  std::vector<size_t> support;
  for (size_t i = 0; i < n; ++i) {
    support.clear();
    for (size_t j = 0; j < d; ++j) {
      if (rng.NextDouble() < opts.sparsity_nonzero_fraction) {
        support.push_back(j);
      }
    }
    if (support.empty()) support.push_back(rng.NextIndex(d));
    std::fill(w.begin(), w.end(), 0.0);
    double sum = 0.0;
    for (size_t j : support) {
      w[j] = rng.NextExponential(1.0);
      sum += w[j];
    }
    for (size_t j : support) w[j] /= sum;
    ds.AppendUnchecked(w);
  }
  return ds;
}

Dataset GenerateWeights(WeightDistribution dist, size_t n, size_t d,
                        uint64_t seed, const WeightGeneratorOptions& opts) {
  switch (dist) {
    case WeightDistribution::kUniform:
      return GenerateWeightsUniform(n, d, seed, opts);
    case WeightDistribution::kClustered:
      return GenerateWeightsClustered(n, d, seed, opts);
    case WeightDistribution::kNormal:
      return GenerateWeightsNormal(n, d, seed, opts);
    case WeightDistribution::kExponential:
      return GenerateWeightsExponential(n, d, seed, opts);
    case WeightDistribution::kSparse:
      return GenerateWeightsSparse(n, d, seed, opts);
  }
  return Dataset(d);
}

}  // namespace gir

#include "data/generators.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <vector>

#include "data/rng.h"

namespace gir {

namespace {

double Clamp01Range(double v, double range) {
  // Values live in [0, range); keep strictly below range so grid cells and
  // histogram buckets built with r = range never see v == range.
  const double hi = std::nexttoward(range, 0.0);
  return std::clamp(v, 0.0, hi);
}

size_t DefaultClusters(size_t n, const GeneratorOptions& opts) {
  if (opts.num_clusters > 0) return opts.num_clusters;
  const size_t c = static_cast<size_t>(std::cbrt(static_cast<double>(n)));
  return std::max<size_t>(1, c);
}

}  // namespace

Result<PointDistribution> ParsePointDistribution(const std::string& name) {
  std::string up;
  up.reserve(name.size());
  for (char c : name) up.push_back(static_cast<char>(std::toupper(c)));
  if (up == "UN" || up == "UNIFORM") return PointDistribution::kUniform;
  if (up == "CL" || up == "CLUSTERED") return PointDistribution::kClustered;
  if (up == "AC" || up == "ANTICORRELATED") {
    return PointDistribution::kAnticorrelated;
  }
  if (up == "NORMAL" || up == "NO") return PointDistribution::kNormal;
  if (up == "EXP" || up == "EXPONENTIAL") {
    return PointDistribution::kExponential;
  }
  return Status::InvalidArgument("unknown distribution: " + name);
}

const char* PointDistributionName(PointDistribution dist) {
  switch (dist) {
    case PointDistribution::kUniform:
      return "UN";
    case PointDistribution::kClustered:
      return "CL";
    case PointDistribution::kAnticorrelated:
      return "AC";
    case PointDistribution::kNormal:
      return "NORMAL";
    case PointDistribution::kExponential:
      return "EXP";
  }
  return "?";
}

Dataset GenerateUniform(size_t n, size_t d, uint64_t seed,
                        const GeneratorOptions& opts) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.NextDouble(0.0, opts.range);
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset GenerateClustered(size_t n, size_t d, uint64_t seed,
                          const GeneratorOptions& opts) {
  Rng rng(seed);
  const size_t clusters = DefaultClusters(n, opts);
  const double sigma = opts.sigma_fraction * opts.range;
  std::vector<double> centers(clusters * d);
  for (double& c : centers) c = rng.NextDouble(0.0, opts.range);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(clusters);
    for (size_t j = 0; j < d; ++j) {
      row[j] = Clamp01Range(rng.NextGaussian(centers[c * d + j], sigma),
                            opts.range);
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset GenerateAnticorrelated(size_t n, size_t d, uint64_t seed,
                               const GeneratorOptions& opts) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> row(d);
  const double dd = static_cast<double>(d);
  for (size_t i = 0; i < n; ++i) {
    // Unit-scale construction, multiplied out to the value range at the end.
    double sum = 0.0;
    for (size_t j = 0; j < d; ++j) {
      row[j] = rng.NextDouble();
      sum += row[j];
    }
    // Target coordinate sum concentrated near d/2: points trade off across
    // dimensions instead of being uniformly good or bad.
    const double target = rng.NextGaussian(0.5 * dd, 0.05 * dd);
    const double shift = (target - sum) / dd;
    for (size_t j = 0; j < d; ++j) {
      row[j] = Clamp01Range((row[j] + shift) * opts.range, opts.range);
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset GenerateNormal(size_t n, size_t d, uint64_t seed,
                       const GeneratorOptions& opts) {
  Rng rng(seed);
  const double mean = 0.5 * opts.range;
  const double sigma = opts.sigma_fraction * opts.range;
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      row[j] = Clamp01Range(rng.NextGaussian(mean, sigma), opts.range);
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset GenerateExponential(size_t n, size_t d, uint64_t seed,
                            const GeneratorOptions& opts) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double unit = rng.NextExponential(opts.exponential_lambda);
      row[j] = Clamp01Range(unit * opts.range, opts.range);
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

Dataset GeneratePoints(PointDistribution dist, size_t n, size_t d,
                       uint64_t seed, const GeneratorOptions& opts) {
  switch (dist) {
    case PointDistribution::kUniform:
      return GenerateUniform(n, d, seed, opts);
    case PointDistribution::kClustered:
      return GenerateClustered(n, d, seed, opts);
    case PointDistribution::kAnticorrelated:
      return GenerateAnticorrelated(n, d, seed, opts);
    case PointDistribution::kNormal:
      return GenerateNormal(n, d, seed, opts);
    case PointDistribution::kExponential:
      return GenerateExponential(n, d, seed, opts);
  }
  return Dataset(d);
}

}  // namespace gir

#ifndef GIR_DATA_GENERATORS_H_
#define GIR_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "core/status.h"

namespace gir {

/// Synthetic product-set distributions from the paper's evaluation (§6.1):
/// UN (uniform), CL (clustered), AC (anti-correlated); NORMAL and
/// EXPONENTIAL additionally appear in the Table 4 filtering study.
enum class PointDistribution {
  kUniform,
  kClustered,
  kAnticorrelated,
  kNormal,
  kExponential,
};

/// Parses "UN" / "CL" / "AC" / "NORMAL" / "EXP" (case-insensitive).
Result<PointDistribution> ParsePointDistribution(const std::string& name);

/// Short paper-style name ("UN", "CL", ...).
const char* PointDistributionName(PointDistribution dist);

/// Options shared by the synthetic generators. Defaults follow Table 5:
/// attribute range [0, 10K), cbrt(n) clusters, sigma = 0.1 (relative to the
/// range) for clustered data.
struct GeneratorOptions {
  /// Attribute values fall in [0, range).
  double range = 10000.0;
  /// Number of clusters for kClustered; 0 means cbrt(n) (Table 5).
  size_t num_clusters = 0;
  /// Cluster/normal standard deviation as a fraction of `range`.
  double sigma_fraction = 0.1;
  /// Rate of the exponential distribution (Table 4 uses lambda = 2, on
  /// values scaled to the unit range before multiplying by `range`).
  double exponential_lambda = 2.0;
};

/// n i.i.d. points uniform on [0, range)^d.
Dataset GenerateUniform(size_t n, size_t d, uint64_t seed,
                        const GeneratorOptions& opts = {});

/// Gaussian clusters around uniformly placed centers, clamped to
/// [0, range). Cluster count and sigma from `opts` (Table 5 defaults).
Dataset GenerateClustered(size_t n, size_t d, uint64_t seed,
                          const GeneratorOptions& opts = {});

/// Anti-correlated data (the standard skyline-benchmark construction):
/// points concentrate around the hyperplane sum(x) = d/2 so that good
/// values in one dimension trade off against the others. Each point starts
/// uniform, then is shifted along (1,...,1) so its coordinate sum matches a
/// Gaussian sample centered at d/2, and clamped to [0, range).
Dataset GenerateAnticorrelated(size_t n, size_t d, uint64_t seed,
                               const GeneratorOptions& opts = {});

/// i.i.d. Gaussian per dimension, mean range/2, stddev sigma_fraction*range,
/// clamped to [0, range).
Dataset GenerateNormal(size_t n, size_t d, uint64_t seed,
                       const GeneratorOptions& opts = {});

/// i.i.d. exponential per dimension with rate `exponential_lambda` on the
/// unit scale, multiplied by `range` and clamped to [0, range).
Dataset GenerateExponential(size_t n, size_t d, uint64_t seed,
                            const GeneratorOptions& opts = {});

/// Dispatch over PointDistribution.
Dataset GeneratePoints(PointDistribution dist, size_t n, size_t d,
                       uint64_t seed, const GeneratorOptions& opts = {});

}  // namespace gir

#endif  // GIR_DATA_GENERATORS_H_

// Bundle recommendation: aggregate reverse rank queries.
//
// Reverse top-k and reverse k-ranks target a single product, but sellers
// bundle: a phone + earbuds + a charger. The aggregate reverse rank query
// (the authors' DEXA'16 follow-up, implemented in grid/aggregate.h) finds
// the customers whose preference ranks the *bundle as a whole* best —
// the sum of the members' ranks.
//
// Build & run:  ./build/examples/bundle_recommendation

#include <cstdio>
#include <vector>

#include "core/rank.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/aggregate.h"
#include "grid/gir_queries.h"

int main() {
  using namespace gir;

  // Product catalog: 5 normalized "badness" attributes (price, quality,
  // weight, battery, compatibility); 30K products, 10K customers.
  const size_t d = 5;
  GeneratorOptions gen;
  gen.range = 1.0;
  Dataset catalog = GenerateClustered(30000, d, 101, gen);
  Dataset customers = GenerateWeightsUniform(10000, d, 102);
  auto index_result = GirIndex::Build(catalog, customers);
  if (!index_result.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index_result.status().ToString().c_str());
    return 1;
  }
  const GirIndex& index = index_result.value();

  // The bundle: three catalog items sold together.
  const std::vector<size_t> bundle_ids = {1234, 8765, 20000};
  Dataset bundle(d);
  std::printf("Bundle contents (attribute badness, lower = better):\n");
  for (size_t id : bundle_ids) {
    bundle.AppendUnchecked(catalog.row(id));
    std::printf("  item %5zu:", id);
    for (double v : catalog.row(id)) std::printf(" %.2f", v);
    std::printf("\n");
  }

  // Top-10 customers for the bundle as a whole.
  QueryStats stats;
  auto targets = GirAggregateReverseRank(index, bundle, 10, &stats);
  std::printf("\nBest 10 customers for the bundle (aggregate rank = sum of "
              "the three items' ranks):\n");
  for (const auto& t : targets) {
    std::printf("  customer %5u  aggregate rank %6lld  (items rank:",
                t.weight_id, static_cast<long long>(t.aggregate_rank));
    for (size_t qi = 0; qi < bundle.size(); ++qi) {
      std::printf(" %lld",
                  static_cast<long long>(RankOfQuery(
                      catalog, customers.row(t.weight_id), bundle.row(qi))));
    }
    std::printf(")\n");
  }

  // Contrast with single-item targeting: the best customers for item 1
  // alone are usually not the best for the bundle.
  auto single = index.ReverseKRanks(catalog.row(bundle_ids[0]), 10);
  size_t overlap = 0;
  for (const auto& s : single) {
    for (const auto& t : targets) overlap += s.weight_id == t.weight_id;
  }
  std::printf("\nOverlap with the top-10 for item %zu alone: %zu of 10\n",
              bundle_ids[0], overlap);
  std::printf("Query cost: %llu exact inner products over a %zu x %zu x %zu "
              "search space.\n",
              static_cast<unsigned long long>(stats.inner_products),
              catalog.size(), customers.size(), bundle.size());
  return 0;
}

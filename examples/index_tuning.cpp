// Index tuning: choosing and validating Grid-index parameters.
//
// Walks through the §5.3 performance model: pick n from Theorem 1 for a
// target filter rate, compare the model's worst-case prediction with the
// measured rate on real workloads, and see when the non-equal-width
// (quantile-adaptive) grid and the sparse-preference scan pay off.
//
// Build & run:  ./build/examples/index_tuning

#include <cstdio>
#include <vector>

#include "core/counters.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/adaptive_grid.h"
#include "grid/sparse_scan.h"
#include "stats/model.h"

namespace {

double MeasuredFilterRate(const gir::GirIndex& index,
                          const gir::Dataset& points, size_t query_row) {
  gir::QueryStats stats;
  index.ReverseKRanks(points.row(query_row), 20, &stats);
  return stats.FilterRate();
}

}  // namespace

int main() {
  using namespace gir;

  const size_t d = 16;
  Dataset points = GenerateUniform(30000, d, 91);
  Dataset weights = GenerateWeightsUniform(5000, d, 92);

  // --- 1. Theorem 1 sizing ---------------------------------------------
  std::printf("Theorem 1: partitions needed for d = %zu\n", d);
  for (double eps : {0.10, 0.01, 0.001}) {
    auto n = RequiredPartitions(d, eps);
    auto n2 = RequiredPartitionsPow2(d, eps);
    std::printf("  target %5.1f%% filtering -> n >= %3zu (pow2: %3zu, "
                "table %6zu bytes)\n",
                100.0 * (1.0 - eps), n.value(), n2.value(),
                GridTableBytes(n2.value()));
  }

  // --- 2. Model vs measurement across n --------------------------------
  std::printf("\nWorst-case model vs measured filter rate (uniform grid):\n");
  for (size_t n : {8u, 16u, 32u, 64u}) {
    GirOptions options;
    options.partitions = n;
    auto index = GirIndex::Build(points, weights, options).value();
    std::printf("  n = %3zu: model >= %6.2f%%   measured %6.2f%%\n", n,
                100.0 * WorstCaseFilterRate(d, n),
                100.0 * MeasuredFilterRate(index, points, 7));
  }
  std::printf("  (the model assumes ideal product-interval quantization;\n"
              "   see EXPERIMENTS.md for why measurements can sit below it\n"
              "   on the paper-faithful 2-D grid and match it with the\n"
              "   default exact-weight rows)\n");

  // --- 3. Adaptive grid on skewed data ----------------------------------
  std::printf("\nSkewed (exponential) products, uniform vs adaptive grid:\n");
  Dataset skewed = GenerateExponential(30000, d, 93);
  {
    GirOptions options;
    options.partitions = 16;
    auto uniform = GirIndex::Build(skewed, weights, options).value();
    auto adaptive = BuildAdaptiveGir(skewed, weights, options).value();
    std::printf("  uniform grid  n=16: filter %6.2f%%\n",
                100.0 * MeasuredFilterRate(uniform, skewed, 7));
    std::printf("  adaptive grid n=16: filter %6.2f%%\n",
                100.0 * MeasuredFilterRate(adaptive, skewed, 7));
  }

  // --- 4. Sparse preferences -------------------------------------------
  std::printf("\nSparse preferences (20%% non-zero), dense vs sparse scan:\n");
  WeightGeneratorOptions wopts;
  wopts.sparsity_nonzero_fraction = 0.2;
  Dataset sparse_weights = GenerateWeightsSparse(5000, d, 94, wopts);
  auto dense = GirIndex::Build(points, sparse_weights).value();
  auto sparse = SparseGir::Build(points, sparse_weights).value();
  QueryStats dense_stats, sparse_stats;
  dense.ReverseKRanks(points.row(7), 20, &dense_stats);
  sparse.ReverseKRanks(points.row(7), 20, &sparse_stats);
  std::printf("  dense scan : %llu multiplications\n",
              static_cast<unsigned long long>(dense_stats.multiplications));
  std::printf("  sparse scan: %llu multiplications (avg %.1f non-zeros of "
              "%zu dims)\n",
              static_cast<unsigned long long>(sparse_stats.multiplications),
              sparse.AverageNonZeros(), d);
  return 0;
}

// Quickstart: the paper's Figure 1 cell-phone example, end to end.
//
// Five phones scored on "smart" and "rating" (lower = better), three users
// with preference weights. We run a top-k query per user, then the two
// reverse rank queries (reverse top-k and reverse k-ranks) through the
// GIR index and print the same answers the paper's Figure 1 shows.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/dataset.h"
#include "core/naive.h"
#include "core/topk.h"
#include "grid/gir_queries.h"

int main() {
  using namespace gir;

  // Figure 1(b): cell phones, attributes (smart, rating), min preferred.
  auto phones_result = Dataset::FromRows({{0.6, 0.7},    // p1
                                          {0.2, 0.3},    // p2
                                          {0.1, 0.6},    // p3
                                          {0.7, 0.5},    // p4
                                          {0.8, 0.2}});  // p5
  // Figure 1(a): user preference weights (sum to 1).
  auto users_result = Dataset::FromRows({{0.8, 0.2},    // Tom
                                         {0.3, 0.7},    // Jerry
                                         {0.9, 0.1}});  // Spike
  if (!phones_result.ok() || !users_result.ok()) {
    std::fprintf(stderr, "dataset construction failed\n");
    return 1;
  }
  const Dataset& phones = phones_result.value();
  const Dataset& users = users_result.value();
  const char* user_names[] = {"Tom", "Jerry", "Spike"};

  // --- Top-2 per user (Definition 1) -----------------------------------
  std::printf("Top-2 phones per user:\n");
  for (size_t u = 0; u < users.size(); ++u) {
    auto top2 = TopK(phones, users.row(u), 2);
    std::printf("  %-5s -> p%u (%.2f), p%u (%.2f)\n", user_names[u],
                top2[0].id + 1, top2[0].score, top2[1].id + 1, top2[1].score);
  }

  // --- Build the GIR index once, query it for every phone --------------
  auto index_result = GirIndex::Build(phones, users);
  if (!index_result.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index_result.status().ToString().c_str());
    return 1;
  }
  const GirIndex& index = index_result.value();

  // Reverse top-2 (Definition 2): which users put this phone in their
  // top 2? Matches Figure 1(b)'s RT-2 column.
  std::printf("\nReverse top-2 (RT-2) per phone:\n");
  for (size_t p = 0; p < phones.size(); ++p) {
    auto result = index.ReverseTopK(phones.row(p), 2);
    std::printf("  p%zu: ", p + 1);
    if (result.empty()) std::printf("(no user)");
    for (VectorId w : result) std::printf("%s ", user_names[w]);
    std::printf("\n");
  }

  // Reverse 1-ranks (Definition 3): the single user who ranks this phone
  // best. Matches Figure 1(c)'s R-1Rank column.
  std::printf("\nReverse 1-rank (R1-R) per phone:\n");
  for (size_t p = 0; p < phones.size(); ++p) {
    auto result = index.ReverseKRanks(phones.row(p), 1);
    std::printf("  p%zu: %s (rank %lld: %lld phones score better)\n", p + 1,
                user_names[result[0].weight_id],
                static_cast<long long>(result[0].rank) + 1,
                static_cast<long long>(result[0].rank));
  }

  // Sanity: the index agrees with the exhaustive oracle.
  for (size_t p = 0; p < phones.size(); ++p) {
    if (index.ReverseTopK(phones.row(p), 2) !=
        NaiveReverseTopK(phones, users, phones.row(p), 2)) {
      std::fprintf(stderr, "mismatch against oracle!\n");
      return 1;
    }
  }
  std::printf("\nAll answers verified against the exhaustive oracle.\n");
  return 0;
}

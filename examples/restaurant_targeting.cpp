// Restaurant targeting: the paper's DIANPING business-reviewing scenario.
//
// A review platform holds per-restaurant average scores on six aspects
// (overall rate, flavor, cost, service, environment, waiting time) and
// per-user preference profiles derived from their review histories. For a
// given restaurant, reverse k-ranks finds the users who rank it best —
// the audience a promotion should target — even if the restaurant is in
// nobody's absolute top-k.
//
// Build & run:  ./build/examples/restaurant_targeting

#include <cstdio>
#include <vector>

#include "core/counters.h"
#include "core/dataset.h"
#include "data/real_like.h"
#include "grid/gir_queries.h"

int main() {
  using namespace gir;

  // Synthetic stand-ins with the DIANPING schema (DESIGN.md §4); scaled
  // down from the real 209K x 510K for an example that runs in seconds.
  const size_t num_restaurants = 20000;
  const size_t num_users = 50000;
  Dataset restaurants = MakeDianpingRestaurantsLike(num_restaurants, 81);
  Dataset users = MakeDianpingUsersLike(num_users, 82);
  static const char* kAspects[] = {"rate",    "flavor",      "cost",
                                   "service", "environment", "waiting"};

  auto index_result = GirIndex::Build(restaurants, users);
  if (!index_result.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index_result.status().ToString().c_str());
    return 1;
  }
  const GirIndex& index = index_result.value();
  std::printf("Indexed %zu restaurants x %zu users (GIR, n = %zu, %.1f KB)\n",
              restaurants.size(), users.size(), index.options().partitions,
              static_cast<double>(index.MemoryBytes()) / 1024.0);

  // Pick a mid-pack restaurant (id 4242) and profile it.
  const size_t rid = 4242;
  ConstRow r = restaurants.row(rid);
  std::printf("\nRestaurant #%zu aspect scores (0 = perfect, 5 = worst):\n ",
              rid);
  for (size_t i = 0; i < restaurants.dim(); ++i) {
    std::printf(" %s=%.2f", kAspects[i], r[i]);
  }
  std::printf("\n");

  // Reverse top-k: is it in anyone's top-50?
  QueryStats rtk_stats;
  auto fans = index.ReverseTopK(r, 50, &rtk_stats);
  std::printf("\nUsers with this restaurant in their top-50: %zu\n",
              fans.size());

  // Reverse k-ranks never comes back empty: the 15 best-matched users.
  QueryStats rkr_stats;
  auto targets = index.ReverseKRanks(r, 15, &rkr_stats);
  std::printf("\nBest 15 users to target (rank = #restaurants they'd "
              "prefer):\n");
  for (const RankedWeight& t : targets) {
    ConstRow w = users.row(t.weight_id);
    // The user's dominant aspect explains *why* they match.
    size_t top_aspect = 0;
    for (size_t i = 1; i < users.dim(); ++i) {
      if (w[i] > w[top_aspect]) top_aspect = i;
    }
    std::printf("  user %6u  rank %5lld  (cares most about %s: %.2f)\n",
                t.weight_id, static_cast<long long>(t.rank),
                kAspects[top_aspect], w[top_aspect]);
  }

  std::printf("\nQuery work: RTK resolved %.2f%% of scanned points via the "
              "grid;\nRKR refined only %llu of %llu visited points with "
              "exact scores.\n",
              100.0 * rtk_stats.FilterRate(),
              static_cast<unsigned long long>(rkr_stats.points_refined),
              static_cast<unsigned long long>(rkr_stats.points_visited));
  return 0;
}

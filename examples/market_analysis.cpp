// Market analysis: the paper's motivating manufacturer scenario.
//
// A phone maker is about to launch a handset and wants to know, against a
// catalog of 50K competing products and 20K customer preference profiles:
//   1. Which customers would see the new phone in their top-100?
//      (reverse top-k = the phone's potential customer base)
//   2. How does the customer base change across three candidate configs?
//   3. How large must the Grid-index be for this catalog? (Theorem 1)
//
// Build & run:  ./build/examples/market_analysis

#include <cstdio>
#include <vector>

#include "core/dataset.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/gir_queries.h"
#include "stats/model.h"

int main() {
  using namespace gir;

  // Catalog: 8 attributes (price, cpu, storage, size, battery, camera,
  // weight, heat) — all normalized so lower is better. Clustered like real
  // product lines.
  const size_t d = 8;
  GeneratorOptions gen;
  gen.range = 1.0;
  Dataset catalog = GenerateClustered(50000, d, /*seed=*/71, gen);
  Dataset customers = GenerateWeightsUniform(20000, d, /*seed=*/72);

  // Theorem 1: pick the grid resolution guaranteeing > 99% filtering.
  auto n = RequiredPartitionsPow2(d, 0.01);
  GirOptions options;
  options.partitions = n.ok() ? n.value() : 32;
  std::printf("Theorem 1 sizing: d = %zu, eps = 1%% -> n = %zu partitions "
              "(grid table = %zu bytes)\n\n",
              d, options.partitions, GridTableBytes(options.partitions));

  auto index_result = GirIndex::Build(catalog, customers, options);
  if (!index_result.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index_result.status().ToString().c_str());
    return 1;
  }
  const GirIndex& index = index_result.value();
  std::printf("GIR index over |P| = %zu products x |W| = %zu customers: "
              "%.1f KB\n\n",
              catalog.size(), customers.size(),
              static_cast<double>(index.MemoryBytes()) / 1024.0);

  // Three candidate configurations for the new phone. Attributes are
  // "badness" in [0, 1]: the budget model sacrifices cpu/camera, the
  // flagship is good everywhere but pricey, the balanced sits between.
  struct Candidate {
    const char* name;
    std::vector<double> attrs;
  };
  const std::vector<Candidate> candidates = {
      {"budget  ", {0.15, 0.65, 0.55, 0.40, 0.35, 0.70, 0.45, 0.50}},
      {"balanced", {0.45, 0.35, 0.35, 0.35, 0.30, 0.35, 0.35, 0.35}},
      {"flagship", {0.85, 0.10, 0.10, 0.30, 0.20, 0.10, 0.30, 0.25}},
  };

  std::printf("Potential customer base (reverse top-100):\n");
  for (const Candidate& c : candidates) {
    QueryStats stats;
    auto fans = index.ReverseTopK(c.attrs, 100, &stats);
    std::printf(
        "  %s -> %5zu customers (%.1f%% of market)  "
        "[grid resolved %.1f%% of scanned points]\n",
        c.name, fans.size(),
        100.0 * static_cast<double>(fans.size()) /
            static_cast<double>(customers.size()),
        100.0 * stats.FilterRate());
  }

  // Visibility profile: how the reach of the balanced config grows with k.
  std::printf("\nVisibility of the balanced config vs k:\n");
  for (size_t k : {10u, 50u, 100u, 500u}) {
    auto fans = index.ReverseTopK(candidates[1].attrs, k);
    std::printf("  top-%-4zu -> %5zu customers\n", k, fans.size());
  }

  // Who are the best-matched customers overall? Reverse k-ranks returns
  // them even if the phone makes nobody's top-100.
  std::printf("\n10 best-matched customer profiles for the flagship:\n");
  auto best = index.ReverseKRanks(candidates[2].attrs, 10);
  for (const RankedWeight& rw : best) {
    std::printf("  customer %6u ranks it #%lld in the whole catalog\n",
                rw.weight_id, static_cast<long long>(rw.rank) + 1);
  }
  return 0;
}

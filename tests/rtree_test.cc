#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "data/rng.h"
#include "rtree/mbr.h"
#include "rtree/rtree.h"
#include "rtree/rtree_stats.h"

namespace gir {
namespace {

// ---------------------------------------------------------------- Mbr

TEST(MbrTest, ExpandFromEmpty) {
  Mbr box(2);
  EXPECT_TRUE(box.empty());
  std::vector<double> p{1.0, 2.0};
  box.Expand(p);
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(box.hi(), (std::vector<double>{1.0, 2.0}));
  std::vector<double> p2{0.0, 5.0};
  box.Expand(p2);
  EXPECT_EQ(box.lo(), (std::vector<double>{0.0, 2.0}));
  EXPECT_EQ(box.hi(), (std::vector<double>{1.0, 5.0}));
}

TEST(MbrTest, ExpandWithMbr) {
  Mbr a({0.0, 0.0}, {1.0, 1.0});
  Mbr b({2.0, -1.0}, {3.0, 0.5});
  a.Expand(b);
  EXPECT_EQ(a.lo(), (std::vector<double>{0.0, -1.0}));
  EXPECT_EQ(a.hi(), (std::vector<double>{3.0, 1.0}));
}

TEST(MbrTest, IntersectsAndContains) {
  Mbr a({0.0, 0.0}, {2.0, 2.0});
  Mbr b({1.0, 1.0}, {3.0, 3.0});
  Mbr c({2.5, 2.5}, {4.0, 4.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
  // Touching edges count as intersecting (closed boxes).
  Mbr d({2.0, 0.0}, {3.0, 2.0});
  EXPECT_TRUE(a.Intersects(d));
  std::vector<double> inside{1.0, 1.5};
  std::vector<double> outside{1.0, 2.5};
  EXPECT_TRUE(a.Contains(inside));
  EXPECT_FALSE(a.Contains(outside));
  EXPECT_TRUE(a.ContainsMbr(Mbr({0.5, 0.5}, {1.5, 1.5})));
  EXPECT_FALSE(a.ContainsMbr(b));
}

TEST(MbrTest, EmptyNeverIntersects) {
  Mbr empty(2);
  Mbr a({0.0, 0.0}, {5.0, 5.0});
  EXPECT_FALSE(empty.Intersects(a));
  EXPECT_FALSE(a.Intersects(empty));
  std::vector<double> p{1.0, 1.0};
  EXPECT_FALSE(empty.Contains(p));
}

TEST(MbrTest, Geometry) {
  Mbr box({0.0, 0.0, 0.0}, {3.0, 4.0, 0.5});
  EXPECT_DOUBLE_EQ(box.DiagonalLength(), std::sqrt(9.0 + 16.0 + 0.25));
  EXPECT_DOUBLE_EQ(box.MarginSum(), 7.5);
  EXPECT_DOUBLE_EQ(box.Volume(), 6.0);
  EXPECT_NEAR(box.Log10Volume(), std::log10(6.0), 1e-12);
  EXPECT_DOUBLE_EQ(box.ShapeRatio(), 8.0);
}

TEST(MbrTest, DegenerateGeometry) {
  Mbr point({1.0, 1.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(point.DiagonalLength(), 0.0);
  EXPECT_DOUBLE_EQ(point.ShapeRatio(), 1.0);
  EXPECT_TRUE(std::isinf(point.Log10Volume()));
  Mbr slab({0.0, 0.0}, {1.0, 0.0});
  EXPECT_TRUE(std::isinf(slab.ShapeRatio()));
}

TEST(MbrTest, OverlapVolume) {
  Mbr a({0.0, 0.0}, {2.0, 2.0});
  Mbr b({1.0, 1.0}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  EXPECT_NEAR(a.OverlapLog10Volume(b), 0.0, 1e-12);
  Mbr c({5.0, 5.0}, {6.0, 6.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
  EXPECT_TRUE(std::isinf(a.OverlapLog10Volume(c)));
}

TEST(MbrTest, HighDimensionalLogVolumeStable) {
  // 24 dims of edge 10K: volume 1e96 overflows nothing in log form.
  std::vector<double> lo(24, 0.0), hi(24, 10000.0);
  Mbr box(lo, hi);
  EXPECT_NEAR(box.Log10Volume(), 96.0, 1e-9);
  EXPECT_TRUE(std::isinf(box.Volume()) || box.Volume() > 1e90);
}

// ---------------------------------------------------------------- RTree

std::vector<VectorId> BruteForceRange(const Dataset& ds, const Mbr& box) {
  std::vector<VectorId> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (box.Contains(ds.row(i))) out.push_back(static_cast<VectorId>(i));
  }
  return out;
}

void CheckTreeInvariants(const RTree& tree) {
  const Dataset& ds = tree.points();
  size_t total_points = 0;
  std::set<VectorId> seen;
  tree.VisitNodes([&](const RTreeNode& node, size_t depth) {
    EXPECT_LE(depth, tree.height() - 1);
    if (node.is_leaf) {
      EXPECT_EQ(node.subtree_count, node.entries.size());
      total_points += node.entries.size();
      for (VectorId id : node.entries) {
        EXPECT_TRUE(node.mbr.Contains(ds.row(id)))
            << "leaf MBR must contain its points";
        EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      }
    } else {
      EXPECT_FALSE(node.children.empty());
      size_t child_total = 0;
      for (const auto& child : node.children) {
        EXPECT_TRUE(node.mbr.ContainsMbr(child->mbr))
            << "parent MBR must contain child MBRs";
        child_total += child->subtree_count;
      }
      EXPECT_EQ(node.subtree_count, child_total);
    }
  });
  EXPECT_EQ(total_points, tree.size());
}

class RTreeBulkLoad
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(RTreeBulkLoad, InvariantsAndRangeQueries) {
  const auto [n, d, cap] = GetParam();
  Dataset ds = GenerateUniform(n, d, 31);
  RTree::Options options;
  options.max_entries = cap;
  RTree tree = RTree::BulkLoad(ds, options);
  EXPECT_EQ(tree.size(), n);
  CheckTreeInvariants(tree);
  // Leaves respect capacity.
  tree.VisitNodes([&](const RTreeNode& node, size_t) {
    if (node.is_leaf) {
      EXPECT_LE(node.entries.size(), cap);
    } else {
      EXPECT_LE(node.children.size(), cap);
    }
  });
  // Range queries agree with brute force.
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      const double a = rng.NextDouble(0.0, 10000.0);
      const double b = rng.NextDouble(0.0, 10000.0);
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    Mbr box(lo, hi);
    std::vector<VectorId> got;
    tree.RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceRange(ds, box));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RTreeBulkLoad,
    ::testing::Values(std::make_tuple(size_t{1}, size_t{2}, size_t{4}),
                      std::make_tuple(size_t{100}, size_t{2}, size_t{4}),
                      std::make_tuple(size_t{1000}, size_t{3}, size_t{10}),
                      std::make_tuple(size_t{5000}, size_t{6}, size_t{100}),
                      std::make_tuple(size_t{777}, size_t{9}, size_t{16}),
                      std::make_tuple(size_t{2000}, size_t{4}, size_t{25})));

TEST(RTreeTest, BulkLoadEmptyDataset) {
  Dataset ds(3);
  RTree tree = RTree::BulkLoad(ds);
  EXPECT_EQ(tree.size(), 0u);
  std::vector<VectorId> out;
  tree.RangeQuery(Mbr({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Dataset ds = GenerateUniform(10000, 2, 33);
  RTree::Options options;
  options.max_entries = 10;
  RTree tree = RTree::BulkLoad(ds, options);
  // 10000 points at fanout 10: exactly 4 levels.
  EXPECT_EQ(tree.height(), 4u);
  EXPECT_GT(tree.NodeCount(), tree.LeafCount());
  EXPECT_GE(tree.LeafCount(), 1000u);
}

TEST(RTreeTest, InsertBuildsValidTree) {
  Dataset ds = GenerateUniform(2000, 3, 34);
  RTree::Options options;
  options.max_entries = 8;
  RTree tree = RTree::CreateEmpty(ds, options);
  for (size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(tree.Insert(static_cast<VectorId>(i)).ok());
  }
  EXPECT_EQ(tree.size(), 2000u);
  CheckTreeInvariants(tree);
  Rng rng(35);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      const double a = rng.NextDouble(0.0, 10000.0);
      const double b = rng.NextDouble(0.0, 10000.0);
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    Mbr box(lo, hi);
    std::vector<VectorId> got;
    tree.RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceRange(ds, box));
  }
}

TEST(RTreeTest, InsertRejectsOutOfRangeId) {
  Dataset ds = GenerateUniform(10, 2, 36);
  RTree tree = RTree::CreateEmpty(ds);
  EXPECT_FALSE(tree.Insert(10).ok());
  EXPECT_TRUE(tree.Insert(9).ok());
}

TEST(RTreeTest, InsertDuplicatePointsSupported) {
  auto ds = Dataset::FromRows({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}}).value();
  RTree::Options options;
  options.max_entries = 2;
  RTree tree = RTree::CreateEmpty(ds, options);
  for (VectorId i = 0; i < 3; ++i) ASSERT_TRUE(tree.Insert(i).ok());
  CheckTreeInvariants(tree);
  std::vector<VectorId> out;
  tree.RangeQuery(Mbr({0.0, 0.0}, {2.0, 2.0}), &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(RTreeTest, RangeQueryCountsPrunedNodes) {
  Dataset ds = GenerateUniform(5000, 4, 37);
  RTree tree = RTree::BulkLoad(ds);
  QueryStats stats;
  std::vector<VectorId> out;
  // Tiny box: most of the tree should be pruned.
  tree.RangeQuery(Mbr({0.0, 0.0, 0.0, 0.0}, {10.0, 10.0, 10.0, 10.0}), &out,
                  &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.nodes_pruned, 0u);
}

// ------------------------------------------------------------- Stats

TEST(RTreeStatsTest, ObservationShape) {
  Dataset ds = GenerateUniform(20000, 6, 38);
  RTree tree = RTree::BulkLoad(ds);
  MbrObservation obs = ObserveLeafMbrs(tree, 0.01, 20, 39);
  EXPECT_EQ(obs.num_mbrs, tree.LeafCount());
  EXPECT_GT(obs.avg_diagonal, 0.0);
  EXPECT_GE(obs.avg_shape_ratio, 1.0);
  EXPECT_GT(obs.overlap_fraction, 0.0);
  EXPECT_LE(obs.overlap_fraction, 1.0);
}

TEST(RTreeStatsTest, OverlapGrowsWithDimension) {
  // The paper's Table 3: a 1%-volume query overlaps ~30% of MBRs at d = 3
  // and ~100% at d >= 9.
  double overlap_low = 0.0, overlap_high = 0.0;
  {
    Dataset ds = GenerateUniform(20000, 3, 40);
    RTree tree = RTree::BulkLoad(ds);
    overlap_low = ObserveLeafMbrs(tree, 0.01, 10, 41).overlap_fraction;
  }
  {
    Dataset ds = GenerateUniform(20000, 12, 42);
    RTree tree = RTree::BulkLoad(ds);
    overlap_high = ObserveLeafMbrs(tree, 0.01, 10, 43).overlap_fraction;
  }
  EXPECT_LT(overlap_low, 0.9);
  EXPECT_GT(overlap_high, 0.95);
  EXPECT_GT(overlap_high, overlap_low);
}

TEST(RTreeStatsTest, EmptyTreeObservation) {
  Dataset ds(2);
  RTree tree = RTree::BulkLoad(ds);
  MbrObservation obs = ObserveLeafMbrs(tree, 0.01, 5, 44);
  // The empty tree has a single empty leaf (the root).
  EXPECT_LE(obs.num_mbrs, 1u);
  EXPECT_DOUBLE_EQ(obs.avg_diagonal, 0.0);
}


// ------------------------------------------------------------- kNN

std::vector<RTree::Neighbor> BruteForceKnn(const Dataset& ds, ConstRow q,
                                           size_t k) {
  std::vector<RTree::Neighbor> all;
  for (size_t i = 0; i < ds.size(); ++i) {
    double sq = 0.0;
    for (size_t j = 0; j < ds.dim(); ++j) {
      const double delta = ds.row(i)[j] - q[j];
      sq += delta * delta;
    }
    all.push_back({static_cast<VectorId>(i), std::sqrt(sq)});
  }
  std::sort(all.begin(), all.end(),
            [](const RTree::Neighbor& a, const RTree::Neighbor& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.id < b.id);
            });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(MbrTest, MinDistSquared) {
  Mbr box({1.0, 1.0}, {3.0, 3.0});
  std::vector<double> inside{2.0, 2.0};
  EXPECT_DOUBLE_EQ(box.MinDistSquared(inside), 0.0);
  std::vector<double> left{0.0, 2.0};
  EXPECT_DOUBLE_EQ(box.MinDistSquared(left), 1.0);
  std::vector<double> corner{0.0, 0.0};
  EXPECT_DOUBLE_EQ(box.MinDistSquared(corner), 2.0);
  Mbr empty(2);
  EXPECT_TRUE(std::isinf(empty.MinDistSquared(corner)));
}

TEST(RTreeKnnTest, MatchesBruteForce) {
  Dataset ds = GenerateUniform(3000, 4, 51);
  RTree::Options options;
  options.max_entries = 20;
  RTree tree = RTree::BulkLoad(ds, options);
  Rng rng(52);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(4);
    for (double& v : q) v = rng.NextDouble(0.0, 10000.0);
    for (size_t k : {1u, 5u, 20u}) {
      auto got = tree.NearestNeighbors(q, k);
      auto expected = BruteForceKnn(ds, q, k);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "trial " << trial;
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(RTreeKnnTest, KLargerThanTree) {
  Dataset ds = GenerateUniform(7, 2, 53);
  RTree tree = RTree::BulkLoad(ds);
  std::vector<double> q{0.0, 0.0};
  EXPECT_EQ(tree.NearestNeighbors(q, 100).size(), 7u);
  EXPECT_TRUE(tree.NearestNeighbors(q, 0).empty());
}

TEST(RTreeKnnTest, EmptyTree) {
  Dataset ds(3);
  RTree tree = RTree::BulkLoad(ds);
  std::vector<double> q{1.0, 2.0, 3.0};
  EXPECT_TRUE(tree.NearestNeighbors(q, 5).empty());
}

TEST(RTreeKnnTest, PrunesNodesInLowDimensions) {
  Dataset ds = GenerateUniform(20000, 2, 54);
  RTree tree = RTree::BulkLoad(ds);
  std::vector<double> q{5000.0, 5000.0};
  QueryStats stats;
  auto result = tree.NearestNeighbors(q, 10, &stats);
  EXPECT_EQ(result.size(), 10u);
  // Best-first search should touch a small fraction of the points.
  EXPECT_LT(stats.points_visited, 2000u);
}

}  // namespace
}  // namespace gir

// Property tests for the preference-side τ-index: reverse top-k and
// reverse k-ranks under ScanMode::kTauIndex must be bit-identical to the
// naive oracle and to both scan engines across dimensions, tie-heavy
// data and k at/above the K_max boundary — for the sequential, parallel
// and batched entry points — plus serialization round-trip and
// corrupt/truncated-file rejection for the index_io format.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/naive.h"
#include "core/rank.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/gir_queries.h"
#include "grid/index_io.h"
#include "grid/parallel_gir.h"
#include "grid/tau_index.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeTieHeavy;

struct Case {
  size_t d;
  bool tie_heavy;
  size_t k_max;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return "d" + std::to_string(c.d) + (c.tie_heavy ? "Ties" : "Smooth") +
         "Kmax" + std::to_string(c.k_max);
}

class TauEquivalence : public ::testing::TestWithParam<Case> {
 protected:
  static constexpr size_t kN = 384;
  static constexpr size_t kM = 60;

  void SetUp() override {
    const Case& c = GetParam();
    points_ = c.tie_heavy ? MakeTieHeavy(kN, c.d, 11)
                          : GenerateUniform(kN, c.d, 11);
    weights_ = GenerateWeightsUniform(kM, c.d, 12);

    GirOptions serial_opts;
    GirOptions blocked_opts;
    blocked_opts.scan_mode = ScanMode::kBlocked;
    GirOptions tau_opts;
    tau_opts.scan_mode = ScanMode::kTauIndex;
    tau_opts.tau.k_max = c.k_max;
    // Few bins so the histogram leaves a real unresolved band for the
    // k-ranks fallback to exercise.
    tau_opts.tau.bins = 8;
    tau_opts.tau.threads = 2;
    serial_ = GirIndex::Build(points_, weights_, serial_opts).value();
    blocked_ = GirIndex::Build(points_, weights_, blocked_opts).value();
    tau_ = GirIndex::Build(points_, weights_, tau_opts).value();
  }

  std::vector<std::vector<double>> Queries() const {
    std::vector<std::vector<double>> qs;
    for (size_t qi : {size_t{0}, size_t{7}, size_t{128}}) {
      qs.emplace_back(points_.row(qi).begin(), points_.row(qi).end());
    }
    // A point dominated by much of the data (near-max corner) and one
    // dominating most of it (near zero).
    qs.emplace_back(points_.dim(), 9500.0);
    qs.emplace_back(points_.dim(), 3.0);
    return qs;
  }

  /// k values straddling every τ regime: fully indexed, the K_max
  /// boundary, the fallback band, and k > |P|.
  std::vector<size_t> TopKValues() const {
    const size_t k_max = GetParam().k_max;
    return {1, k_max - 1, k_max, k_max + 1, 100, kN + 5};
  }

  Dataset points_{1};
  Dataset weights_{1};
  std::optional<GirIndex> serial_;
  std::optional<GirIndex> blocked_;
  std::optional<GirIndex> tau_;
};

TEST_P(TauEquivalence, ReverseTopKMatchesOracleAndBothEngines) {
  ASSERT_NE(tau_->tau_index(), nullptr);
  for (const auto& q : Queries()) {
    for (size_t k : TopKValues()) {
      const ReverseTopKResult expected =
          NaiveReverseTopK(points_, weights_, q, k);
      EXPECT_EQ(tau_->ReverseTopK(q, k), expected) << "k=" << k;
      EXPECT_EQ(serial_->ReverseTopK(q, k), expected) << "k=" << k;
      EXPECT_EQ(blocked_->ReverseTopK(q, k), expected) << "k=" << k;
    }
  }
}

TEST_P(TauEquivalence, ReverseKRanksMatchesOracleAndBothEngines) {
  for (const auto& q : Queries()) {
    for (size_t k : {size_t{1}, size_t{5}, size_t{25}}) {
      const ReverseKRanksResult expected =
          NaiveReverseKRanks(points_, weights_, q, k);
      EXPECT_EQ(tau_->ReverseKRanks(q, k), expected) << "k=" << k;
      EXPECT_EQ(serial_->ReverseKRanks(q, k), expected) << "k=" << k;
      EXPECT_EQ(blocked_->ReverseKRanks(q, k), expected) << "k=" << k;
    }
  }
}

TEST_P(TauEquivalence, ParallelTauMatchesSerial) {
  ThreadPool pool(3);
  for (const auto& q : Queries()) {
    EXPECT_EQ(ParallelReverseTopK(*tau_, q, 20, pool),
              serial_->ReverseTopK(q, 20));
    EXPECT_EQ(ParallelReverseKRanks(*tau_, q, 10, pool),
              serial_->ReverseKRanks(q, 10));
  }
}

TEST_P(TauEquivalence, BatchedQueriesMatchSingleQuery) {
  Dataset queries(points_.dim());
  for (const auto& q : Queries()) queries.AppendUnchecked(q);
  const auto rtk = tau_->ReverseTopKBatch(queries, 12);
  const auto rkr = tau_->ReverseKRanksBatch(queries, 8);
  ASSERT_EQ(rtk.size(), queries.size());
  ASSERT_EQ(rkr.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(rtk[qi], serial_->ReverseTopK(queries.row(qi), 12)) << qi;
    EXPECT_EQ(rkr[qi], serial_->ReverseKRanks(queries.row(qi), 8)) << qi;
  }
}

TEST_P(TauEquivalence, BoundRankBracketsTrueRankAndPinsSmallRanks) {
  const TauIndex& tau = *tau_->tau_index();
  for (const auto& q : Queries()) {
    for (size_t w = 0; w < weights_.size(); ++w) {
      const double score = InnerProduct(weights_.row(w), q);
      const int64_t rank = RankOfQuery(points_, weights_.row(w), q);
      const TauRankBounds bounds = tau.BoundRank(w, score);
      EXPECT_LE(bounds.lo, rank) << "w=" << w;
      EXPECT_GE(bounds.hi, rank) << "w=" << w;
      if (rank < static_cast<int64_t>(tau.k_cap())) {
        // Ranks below the τ vector's reach are exact by construction.
        EXPECT_TRUE(bounds.exact()) << "w=" << w << " rank=" << rank;
        EXPECT_EQ(bounds.lo, rank) << "w=" << w;
      }
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (size_t d : {2, 4, 16, 50}) {
    for (bool ties : {false, true}) {
      for (size_t k_max : {size_t{8}, size_t{64}}) {
        cases.push_back(Case{d, ties, k_max});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TauEquivalence,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------------------- semantics

TEST(TauIndexTest, CanAnswerTopKCoversExactlyTheIndexedBand) {
  Dataset points = GenerateUniform(100, 4, 51);
  Dataset weights = GenerateWeightsUniform(10, 4, 52);
  TauIndexOptions options;
  options.k_max = 16;
  auto tau = TauIndex::Build(points, weights, options).value();
  EXPECT_EQ(tau.k_cap(), 16u);
  EXPECT_TRUE(tau.CanAnswerTopK(0));
  EXPECT_TRUE(tau.CanAnswerTopK(1));
  EXPECT_TRUE(tau.CanAnswerTopK(16));
  EXPECT_FALSE(tau.CanAnswerTopK(17));
  EXPECT_FALSE(tau.CanAnswerTopK(100));
  EXPECT_TRUE(tau.CanAnswerTopK(101));  // k > |P|: every weight qualifies

  // k_max above |P| clamps to |P|, closing the fallback band entirely.
  options.k_max = 1000;
  auto clamped = TauIndex::Build(points, weights, options).value();
  EXPECT_EQ(clamped.k_cap(), 100u);
  EXPECT_TRUE(clamped.CanAnswerTopK(100));
  EXPECT_TRUE(clamped.CanAnswerTopK(101));
}

TEST(TauIndexTest, ThresholdsAreExactOrderStatistics) {
  Dataset points = GenerateUniform(200, 3, 61);
  Dataset weights = GenerateWeightsUniform(7, 3, 62);
  TauIndexOptions options;
  options.k_max = 5;
  auto tau = TauIndex::Build(points, weights, options).value();
  for (size_t w = 0; w < weights.size(); ++w) {
    std::vector<double> scores;
    scores.reserve(points.size());
    for (size_t j = 0; j < points.size(); ++j) {
      scores.push_back(InnerProduct(weights.row(w), points.row(j)));
    }
    std::sort(scores.begin(), scores.end());
    for (size_t k = 1; k <= tau.k_cap(); ++k) {
      EXPECT_EQ(tau.Threshold(w, k), scores[k - 1]) << "w=" << w << " k=" << k;
    }
  }
}

TEST(TauIndexTest, BuildRejectsInvalidArguments) {
  Dataset points = GenerateUniform(50, 3, 71);
  Dataset weights = GenerateWeightsUniform(5, 3, 72);
  Dataset empty(3);
  EXPECT_FALSE(TauIndex::Build(empty, weights).ok());
  Dataset wrong_dim = GenerateWeightsUniform(5, 4, 72);
  EXPECT_FALSE(TauIndex::Build(points, wrong_dim).ok());
  TauIndexOptions bad_k;
  bad_k.k_max = 0;
  EXPECT_FALSE(TauIndex::Build(points, weights, bad_k).ok());
  TauIndexOptions bad_bins;
  bad_bins.bins = 1;
  EXPECT_FALSE(TauIndex::Build(points, weights, bad_bins).ok());
}

TEST(TauIndexTest, AttachRejectsShapeMismatch) {
  Dataset points = GenerateUniform(80, 3, 81);
  Dataset weights = GenerateWeightsUniform(6, 3, 82);
  auto index = GirIndex::Build(points, weights).value();
  EXPECT_FALSE(index.AttachTauIndex(nullptr).ok());

  Dataset other_weights = GenerateWeightsUniform(7, 3, 83);
  auto mismatched = TauIndex::Build(points, other_weights).value();
  EXPECT_FALSE(
      index
          .AttachTauIndex(
              std::make_shared<const TauIndex>(std::move(mismatched)))
          .ok());

  auto matching = TauIndex::Build(points, weights).value();
  EXPECT_TRUE(
      index
          .AttachTauIndex(std::make_shared<const TauIndex>(std::move(matching)))
          .ok());
  EXPECT_NE(index.tau_index(), nullptr);
}

// ------------------------------------------------------------ persistence

class TauIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    points_ = MakeTieHeavy(256, 5, 91);
    weights_ = GenerateWeightsUniform(40, 5, 92);
    TauIndexOptions options;
    options.k_max = 12;
    options.bins = 8;
    tau_ = TauIndex::Build(points_, weights_, options).value();
    path_ = ::testing::TempDir() + "tau_io_test.bin";
    ASSERT_TRUE(SaveTauIndex(path_, *tau_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<char> ReadAll() const {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  void WriteAll(const std::vector<char>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Dataset points_{1};
  Dataset weights_{1};
  std::optional<TauIndex> tau_;
  std::string path_;
};

TEST_F(TauIoTest, RoundTripPreservesEveryComponentAndAllResults) {
  auto loaded = LoadTauIndex(path_, weights_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().k_cap(), tau_->k_cap());
  EXPECT_EQ(loaded.value().bins(), tau_->bins());
  EXPECT_EQ(loaded.value().num_points(), tau_->num_points());
  EXPECT_EQ(loaded.value().tau(), tau_->tau());
  EXPECT_EQ(loaded.value().score_max(), tau_->score_max());
  EXPECT_EQ(loaded.value().hist_prefix(), tau_->hist_prefix());

  // Query through a GirIndex with the loaded τ attached: bit-identical to
  // the oracle, same as the freshly built index.
  auto index = GirIndex::Build(points_, weights_).value();
  ASSERT_TRUE(index
                  .AttachTauIndex(std::make_shared<const TauIndex>(
                      std::move(loaded).value()))
                  .ok());
  index.set_scan_mode(ScanMode::kTauIndex);
  for (size_t qi : {size_t{3}, size_t{100}}) {
    ConstRow q = points_.row(qi);
    EXPECT_EQ(index.ReverseTopK(q, 10),
              NaiveReverseTopK(points_, weights_, q, 10));
    EXPECT_EQ(index.ReverseKRanks(q, 5),
              NaiveReverseKRanks(points_, weights_, q, 5));
  }
}

TEST_F(TauIoTest, RejectsBadMagic) {
  auto bytes = ReadAll();
  bytes[3] ^= 0x5a;
  WriteAll(bytes);
  const auto loaded = LoadTauIndex(path_, weights_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(TauIoTest, RejectsTruncation) {
  const auto bytes = ReadAll();
  // Truncations at several depths: inside the magic, the header, and the
  // payload arrays.
  for (size_t keep : {size_t{4}, size_t{20}, bytes.size() / 2,
                      bytes.size() - 1}) {
    WriteAll(std::vector<char>(bytes.begin(), bytes.begin() + keep));
    const auto loaded = LoadTauIndex(path_, weights_);
    EXPECT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "keep=" << keep;
  }
}

TEST_F(TauIoTest, RejectsTrailingGarbage) {
  auto bytes = ReadAll();
  bytes.push_back('x');
  WriteAll(bytes);
  EXPECT_FALSE(LoadTauIndex(path_, weights_).ok());
}

TEST_F(TauIoTest, RejectsCorruptedPayloadInvariants) {
  const auto pristine = ReadAll();
  // Header is magic(8) + k_cap(4) + bins(4) + dim(4) + |W|(8) + |P|(8).
  const size_t header = 8 + 4 + 4 + 4 + 8 + 8;

  // Zero k_cap: parameter validation.
  auto bytes = pristine;
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0;
  WriteAll(bytes);
  EXPECT_FALSE(LoadTauIndex(path_, weights_).ok());

  // Scramble the first τ column so the per-weight thresholds are no
  // longer sorted: invariant validation.
  bytes = pristine;
  const size_t m = weights_.size();
  const size_t tau0 = header;                         // τ_1 of weight 0
  const size_t tau1 = header + m * sizeof(double);    // τ_2 of weight 0
  for (size_t b = 0; b < sizeof(double); ++b) {
    std::swap(bytes[tau0 + b], bytes[tau1 + b]);
  }
  // Only reject if the swap actually broke the order (τ_1 < τ_2 strictly
  // fails on ties, where the swap is a no-op semantically).
  if (tau_->Threshold(0, 1) != tau_->Threshold(0, 2)) {
    WriteAll(bytes);
    EXPECT_FALSE(LoadTauIndex(path_, weights_).ok());
  }

  // Histogram prefix that no longer sums to |P|.
  bytes = pristine;
  const size_t hist_off =
      header + (tau_->tau().size() + m) * sizeof(double);
  bytes[hist_off + (tau_->bins() - 1) * sizeof(uint32_t)] ^= 0x01;
  WriteAll(bytes);
  EXPECT_FALSE(LoadTauIndex(path_, weights_).ok());
}

TEST_F(TauIoTest, RejectsMismatchedWeightSet) {
  Dataset fewer = GenerateWeightsUniform(10, 5, 92);
  EXPECT_FALSE(LoadTauIndex(path_, fewer).ok());
  Dataset wrong_dim = GenerateWeightsUniform(40, 4, 92);
  EXPECT_FALSE(LoadTauIndex(path_, wrong_dim).ok());
}

}  // namespace
}  // namespace gir

// Unit tests of the version-bracketed result cache (server/result_cache.h)
// against its documented invalidation rules: bracket semantics of
// lookup/fill, the per-mutation survival probes (point band, weight-insert
// head certificate, weight-delete id rule, compaction), conservative
// handling of out-of-order passes, the LRU byte budget, and key
// separation between query families / k / configuration fingerprints.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/query_types.h"
#include "core/types.h"
#include "server/result_cache.h"

namespace gir {
namespace {

ConstRow Row(const std::vector<double>& values) {
  return ConstRow(values.data(), values.size());
}

ReverseKRanksResult Ranks(std::vector<RankedWeight> entries) {
  return entries;
}

TEST(ResultCacheTest, LookupHitsOnlyInsideTheVersionBracket) {
  ResultCache cache(ResultCacheOptions{}, /*fingerprint=*/1, nullptr);
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const ReverseTopKResult answer = {3, 7};
  cache.FillTopK(Row(q), 4, /*version=*/5, answer);

  ReverseTopKResult out;
  EXPECT_FALSE(cache.LookupTopK(Row(q), 4, 4, &out));  // below v_lo
  EXPECT_TRUE(cache.LookupTopK(Row(q), 4, 5, &out));
  EXPECT_EQ(out, answer);
  EXPECT_FALSE(cache.LookupTopK(Row(q), 4, 6, &out));  // above v_hi

  // Same query, different k or family: distinct keys, no hit.
  EXPECT_FALSE(cache.LookupTopK(Row(q), 5, 5, &out));
  ReverseKRanksResult ranks_out;
  EXPECT_FALSE(cache.LookupKRanks(Row(q), 4, 5, &ranks_out));
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, PointMutationExtendsOrDropsByBand) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q1 = {1.0};
  const std::vector<double> q2 = {2.0};
  cache.FillTopK(Row(q1), /*k=*/4, /*version=*/0, {1});
  cache.FillKRanks(Row(q2), /*k=*/4, /*version=*/0,
                   Ranks({{0, 2}, {3, 6}}));  // max stored rank 6

  // band 8: both survive — RTK needs k < band (4 < 8), RKR needs
  // maxRank + 1 < band (7 < 8).
  cache.OnPointMutation(/*seq=*/1, /*band=*/8);
  ReverseTopKResult out;
  ReverseKRanksResult ranks_out;
  EXPECT_TRUE(cache.LookupTopK(Row(q1), 4, 1, &out));
  EXPECT_TRUE(cache.LookupKRanks(Row(q2), 4, 1, &ranks_out));

  // band 7: RTK k=4 < 7 survives; RKR needs maxRank+1 = 7 < 7 -> drops.
  cache.OnPointMutation(2, 7);
  EXPECT_TRUE(cache.LookupTopK(Row(q1), 4, 2, &out));
  EXPECT_FALSE(cache.LookupKRanks(Row(q2), 4, 2, &ranks_out));

  // band 4: RTK k=4 < 4 fails -> drops.
  cache.OnPointMutation(3, 4);
  EXPECT_FALSE(cache.LookupTopK(Row(q1), 4, 3, &out));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, WeightInsertUsesTheHeadCertificate) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q = {10.0};  // score under w = {1.0} is 10
  const std::vector<double> w = {1.0};
  cache.FillTopK(Row(q), /*k=*/2, /*version=*/0, {1});

  // head[k-1] = head[1] = 3.0 < 10: at least two live points score below
  // q, so the new weight does not enter its reverse top-2 — survives.
  cache.OnWeightInsert(1, w, /*head=*/{1.0, 3.0, 5.0});
  ReverseTopKResult out;
  EXPECT_TRUE(cache.LookupTopK(Row(q), 2, 1, &out));

  // head[1] = 20 >= 10: the certificate fails, entry drops.
  cache.OnWeightInsert(2, w, {1.0, 20.0});
  EXPECT_FALSE(cache.LookupTopK(Row(q), 2, 2, &out));

  // An empty head (probe unavailable) drops everything.
  cache.FillTopK(Row(q), 2, 2, {1});
  cache.OnWeightInsert(3, w, {});
  EXPECT_FALSE(cache.LookupTopK(Row(q), 2, 3, &out));

  // A partial RKR answer (fewer than k entries) holds every live weight,
  // so a weight insert always changes it.
  cache.FillKRanks(Row(q), /*k=*/4, 3, Ranks({{0, 1}}));
  cache.OnWeightInsert(4, w, {1.0, 3.0, 5.0, 7.0});
  ReverseKRanksResult ranks_out;
  EXPECT_FALSE(cache.LookupKRanks(Row(q), 4, 4, &ranks_out));

  // A full RKR answer survives when the head certifies the new weight's
  // rank is at least the stored maximum (here rank >= 2 via head[1] < 10).
  cache.FillKRanks(Row(q), /*k=*/2, 4, Ranks({{0, 1}, {1, 2}}));
  cache.OnWeightInsert(5, w, {1.0, 3.0});
  EXPECT_TRUE(cache.LookupKRanks(Row(q), 2, 5, &ranks_out));
  EXPECT_EQ(ranks_out.size(), 2u);
}

TEST(ResultCacheTest, WeightDeleteKeepsOnlyAnswersBelowTheDeletedId) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q1 = {1.0};
  const std::vector<double> q2 = {2.0};
  const std::vector<double> q3 = {3.0};
  cache.FillTopK(Row(q1), 2, 0, {0, 3});  // stores id 3
  cache.FillTopK(Row(q2), 2, 0, {0, 1});  // all ids < 3
  cache.FillTopK(Row(q3), 2, 0, {});      // empty answer: vacuously safe

  cache.OnWeightDelete(/*seq=*/1, /*deleted_id=*/3);
  ReverseTopKResult out;
  EXPECT_FALSE(cache.LookupTopK(Row(q1), 2, 1, &out));
  EXPECT_TRUE(cache.LookupTopK(Row(q2), 2, 1, &out));
  EXPECT_TRUE(cache.LookupTopK(Row(q3), 2, 1, &out));
}

TEST(ResultCacheTest, CompactionExtendsEveryBracket) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q = {1.0, 1.0};
  cache.FillKRanks(Row(q), 3, 0, Ranks({{2, 9}}));
  cache.OnCompact(1);
  cache.OnCompact(2);
  ReverseKRanksResult out;
  EXPECT_TRUE(cache.LookupKRanks(Row(q), 3, 2, &out));
  EXPECT_EQ(out, Ranks({{2, 9}}));
  // The bracket covers the whole range, not just the endpoints.
  EXPECT_TRUE(cache.LookupKRanks(Row(q), 3, 0, &out));
  EXPECT_TRUE(cache.LookupKRanks(Row(q), 3, 1, &out));
}

TEST(ResultCacheTest, OutOfOrderPassDropsInsteadOfBridging) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q = {1.0};
  cache.FillTopK(Row(q), 2, 0, {1});
  // The pass for sequence 1 never ran (its reader lost the race); the
  // pass for sequence 2 must not extend across the unobserved gap, no
  // matter how harmless its own probe says it is.
  cache.OnPointMutation(/*seq=*/2, /*band=*/UINT32_MAX);
  ReverseTopKResult out;
  EXPECT_FALSE(cache.LookupTopK(Row(q), 2, 2, &out));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, PassLeavesEntriesAlreadyAtOrPastTheSequence) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q = {1.0};
  cache.FillTopK(Row(q), 2, /*version=*/5, {1});
  // A duplicate / late pass for an already-covered sequence is a no-op.
  cache.OnPointMutation(/*seq=*/5, /*band=*/0);
  cache.OnPointMutation(/*seq=*/4, /*band=*/0);
  ReverseTopKResult out;
  EXPECT_TRUE(cache.LookupTopK(Row(q), 2, 5, &out));
}

TEST(ResultCacheTest, LruEvictionHoldsTheByteBudget) {
  ResultCacheOptions options;
  options.max_bytes = 1024;
  ResultCache cache(options, 1, nullptr);
  for (int i = 0; i < 64; ++i) {
    const std::vector<double> q = {static_cast<double>(i)};
    cache.FillTopK(Row(q), 2, 0, {0, 1, 2});
  }
  EXPECT_LE(cache.bytes(), options.max_bytes);
  EXPECT_LT(cache.entries(), 64u);
  // The most recently filled key is the one guaranteed to survive.
  const std::vector<double> last = {63.0};
  ReverseTopKResult out;
  EXPECT_TRUE(cache.LookupTopK(Row(last), 2, 0, &out));
}

TEST(ResultCacheTest, RefillAfterInvalidationServesTheNewAnswer) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q = {1.0};
  cache.FillTopK(Row(q), 2, 0, {1});
  cache.OnPointMutation(1, /*band=*/1);  // drops the entry
  cache.FillTopK(Row(q), 2, 1, {1, 4});
  ReverseTopKResult out;
  ASSERT_TRUE(cache.LookupTopK(Row(q), 2, 1, &out));
  EXPECT_EQ(out, ReverseTopKResult({1, 4}));
  // A stale re-fill at an older version must not clobber the fresh entry.
  cache.FillTopK(Row(q), 2, 0, {1});
  ASSERT_TRUE(cache.LookupTopK(Row(q), 2, 1, &out));
  EXPECT_EQ(out, ReverseTopKResult({1, 4}));
}

TEST(ResultCacheTest, FlushDropsEverything) {
  ResultCache cache(ResultCacheOptions{}, 1, nullptr);
  const std::vector<double> q = {1.0};
  cache.FillTopK(Row(q), 2, 0, {1});
  cache.FillKRanks(Row(q), 2, 0, Ranks({{0, 0}}));
  EXPECT_EQ(cache.entries(), 2u);
  cache.Flush();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, FingerprintSeparatesServingConfigurations) {
  // Same queries hashed under different fingerprints must not collide on
  // identical keys: each cache only answers what it was filled with.
  ResultCache one_shard(ResultCacheOptions{}, /*fingerprint=*/1, nullptr);
  ResultCache two_shards(ResultCacheOptions{}, /*fingerprint=*/2, nullptr);
  const std::vector<double> q = {1.0, 2.0};
  one_shard.FillTopK(Row(q), 2, 0, {1});
  ReverseTopKResult out;
  EXPECT_FALSE(two_shards.LookupTopK(Row(q), 2, 0, &out));
  EXPECT_TRUE(one_shard.LookupTopK(Row(q), 2, 0, &out));
}

}  // namespace
}  // namespace gir

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/counters.h"
#include "core/dataset.h"
#include "core/domin.h"
#include "core/rank.h"
#include "core/status.h"
#include "core/topk.h"
#include "data/generators.h"
#include "data/rng.h"
#include "data/weights.h"

namespace gir {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kIOError, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, FromRowsBasic) {
  auto ds = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().size(), 2u);
  EXPECT_EQ(ds.value().dim(), 2u);
  EXPECT_DOUBLE_EQ(ds.value().row(1)[0], 3.0);
}

TEST(DatasetTest, FromRowsRejectsRaggedRows) {
  auto ds = Dataset::FromRows({{1.0, 2.0}, {3.0}});
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, FromFlatRejectsShapeMismatch) {
  auto ds = Dataset::FromFlat(3, {1.0, 2.0});
  EXPECT_FALSE(ds.ok());
}

TEST(DatasetTest, FromFlatRejectsZeroDim) {
  auto ds = Dataset::FromFlat(0, {});
  EXPECT_FALSE(ds.ok());
}

TEST(DatasetTest, RejectsNegativeValues) {
  auto ds = Dataset::FromRows({{1.0, -2.0}});
  EXPECT_FALSE(ds.ok());
}

TEST(DatasetTest, RejectsNonFiniteValues) {
  auto ds =
      Dataset::FromRows({{1.0, std::numeric_limits<double>::infinity()}});
  EXPECT_FALSE(ds.ok());
  auto nan_ds =
      Dataset::FromRows({{std::numeric_limits<double>::quiet_NaN(), 0.0}});
  EXPECT_FALSE(nan_ds.ok());
}

TEST(DatasetTest, AppendValidatesWidth) {
  Dataset ds(3);
  std::vector<double> narrow{1.0, 2.0};
  EXPECT_FALSE(ds.Append(narrow).ok());
  std::vector<double> good{1.0, 2.0, 3.0};
  EXPECT_TRUE(ds.Append(good).ok());
  EXPECT_EQ(ds.size(), 1u);
}

TEST(DatasetTest, MinMaxValues) {
  auto ds = Dataset::FromRows({{1.0, 7.0}, {3.0, 0.5}}).value();
  EXPECT_DOUBLE_EQ(ds.MaxValue(), 7.0);
  EXPECT_DOUBLE_EQ(ds.MinValue(), 0.5);
}

TEST(DatasetTest, EmptyDatasetMinMaxIsZero) {
  Dataset ds(4);
  EXPECT_DOUBLE_EQ(ds.MaxValue(), 0.0);
  EXPECT_DOUBLE_EQ(ds.MinValue(), 0.0);
  EXPECT_EQ(ds.PerDimMin(), std::vector<double>(4, 0.0));
}

TEST(DatasetTest, PerDimMinMax) {
  auto ds = Dataset::FromRows({{1.0, 7.0}, {3.0, 0.5}}).value();
  EXPECT_EQ(ds.PerDimMin(), (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(ds.PerDimMax(), (std::vector<double>{3.0, 7.0}));
}

TEST(DatasetTest, FlatIsRowMajor) {
  auto ds = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}}).value();
  EXPECT_EQ(ds.flat(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

// ---------------------------------------------------------------- Weights

TEST(WeightValidationTest, AcceptsSimplexVector) {
  std::vector<double> w{0.25, 0.75};
  EXPECT_TRUE(ValidateWeight(w).ok());
}

TEST(WeightValidationTest, RejectsBadSum) {
  std::vector<double> w{0.25, 0.25};
  EXPECT_FALSE(ValidateWeight(w).ok());
}

TEST(WeightValidationTest, RejectsNegative) {
  std::vector<double> w{1.25, -0.25};
  EXPECT_FALSE(ValidateWeight(w).ok());
}

TEST(WeightValidationTest, NormalizeRescalesToUnitSum) {
  std::vector<double> w{2.0, 6.0};
  ASSERT_TRUE(NormalizeWeight(w).ok());
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
}

TEST(WeightValidationTest, NormalizeRejectsZeroSum) {
  std::vector<double> w{0.0, 0.0};
  EXPECT_FALSE(NormalizeWeight(w).ok());
}

TEST(WeightValidationTest, ValidateDatasetReportsRow) {
  auto weights = Dataset::FromRows({{0.5, 0.5}, {0.9, 0.9}}).value();
  Status s = ValidateWeightDataset(weights);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("row 1"), std::string::npos);
}

// ---------------------------------------------------------------- Scoring

TEST(InnerProductTest, MatchesManualComputation) {
  std::vector<double> w{0.8, 0.2};
  std::vector<double> p{0.6, 0.7};
  EXPECT_DOUBLE_EQ(InnerProduct(w, p), 0.62);  // the paper's Fig. 1 example
}

TEST(DominatesTest, StrictAllDimensions) {
  std::vector<double> p{1.0, 2.0};
  std::vector<double> q{2.0, 3.0};
  EXPECT_TRUE(Dominates(p, q));
  EXPECT_FALSE(Dominates(q, p));
  std::vector<double> tie{1.0, 3.0};  // ties on dim 1
  EXPECT_FALSE(Dominates(tie, q));
}

TEST(DominatesTest, DominanceImpliesBetterScoreForAllWeights) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p(4), q(4), w(4);
    for (size_t i = 0; i < 4; ++i) {
      q[i] = rng.NextDouble(0.1, 1.0);
      p[i] = q[i] * rng.NextDouble(0.0, 0.999);
      w[i] = rng.NextDouble();
    }
    NormalizeWeight(w).ok();
    ASSERT_TRUE(Dominates(p, q));
    EXPECT_LT(InnerProduct(w, p), InnerProduct(w, q));
  }
}

// ---------------------------------------------------------------- Counters

TEST(CountersTest, AccumulateAddsFieldwise) {
  QueryStats a, b;
  a.inner_products = 3;
  a.points_visited = 5;
  b.inner_products = 2;
  b.nodes_pruned = 7;
  a += b;
  EXPECT_EQ(a.inner_products, 5u);
  EXPECT_EQ(a.points_visited, 5u);
  EXPECT_EQ(a.nodes_pruned, 7u);
}

TEST(CountersTest, FilterRate) {
  QueryStats s;
  EXPECT_DOUBLE_EQ(s.FilterRate(), 0.0);
  s.points_visited = 100;
  s.points_filtered = 99;
  EXPECT_DOUBLE_EQ(s.FilterRate(), 0.99);
}

TEST(CountersTest, ToStringSkipsZeros) {
  QueryStats s;
  EXPECT_EQ(s.ToString(), "(all zero)");
  s.inner_products = 4;
  EXPECT_EQ(s.ToString(), "inner_products=4");
}

TEST(CountersTest, ResetClearsEverything) {
  QueryStats s;
  s.inner_products = 4;
  s.weights_pruned = 2;
  s.Reset();
  EXPECT_EQ(s.ToString(), "(all zero)");
}

// ---------------------------------------------------------------- Domin

TEST(DominBufferTest, AddIsIdempotent) {
  DominBuffer domin(10);
  EXPECT_EQ(domin.count(), 0);
  domin.Add(3);
  domin.Add(3);
  EXPECT_EQ(domin.count(), 1);
  EXPECT_TRUE(domin.Contains(3));
  EXPECT_FALSE(domin.Contains(4));
}

// ---------------------------------------------------------------- TopK

TEST(TopKTest, PaperFigure1Example) {
  // Cell phones from Fig. 1(b): (smart, rating), min preferred.
  auto phones = Dataset::FromRows({{0.6, 0.7},
                                   {0.2, 0.3},
                                   {0.1, 0.6},
                                   {0.7, 0.5},
                                   {0.8, 0.2}})
                    .value();
  std::vector<double> tom{0.8, 0.2};
  auto top2 = TopK(phones, tom, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 2u);  // p3 in the paper's 1-based labels
  EXPECT_EQ(top2[1].id, 1u);  // p2

  std::vector<double> jerry{0.3, 0.7};
  auto jerry_top2 = TopK(phones, jerry, 2);
  EXPECT_EQ(jerry_top2[0].id, 1u);  // p2
  EXPECT_EQ(jerry_top2[1].id, 4u);  // p5

  std::vector<double> spike{0.9, 0.1};
  auto spike_top2 = TopK(phones, spike, 2);
  // Fig. 1(a) lists Spike's top-2 as "p2,p3" but the scores rank p3
  // (0.9*0.1+0.1*0.6 = 0.15) ahead of p2 (0.21); Fig. 1(c) confirms p3 is
  // Spike's rank-1. The figure's column is unordered.
  EXPECT_EQ(spike_top2[0].id, 2u);  // p3
  EXPECT_EQ(spike_top2[1].id, 1u);  // p2
}

TEST(TopKTest, KLargerThanDatasetReturnsAll) {
  auto ds = Dataset::FromRows({{1.0}, {2.0}}).value();
  std::vector<double> w{1.0};
  auto top = TopK(ds, w, 10);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopKTest, KZeroReturnsEmpty) {
  auto ds = Dataset::FromRows({{1.0}, {2.0}}).value();
  std::vector<double> w{1.0};
  EXPECT_TRUE(TopK(ds, w, 0).empty());
}

TEST(TopKTest, TieBrokenBySmallerId) {
  auto ds = Dataset::FromRows({{2.0}, {1.0}, {1.0}}).value();
  std::vector<double> w{1.0};
  auto top = TopK(ds, w, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_EQ(top[1].id, 2u);
}

TEST(TopKTest, ResultSortedAscendingByScore) {
  Dataset ds = GenerateUniform(200, 3, 11);
  Dataset ws = GenerateWeightsUniform(1, 3, 12);
  auto top = TopK(ds, ws.row(0), 20);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].score, top[i].score);
  }
}

TEST(TopKTest, CountsInnerProducts) {
  Dataset ds = GenerateUniform(100, 3, 13);
  Dataset ws = GenerateWeightsUniform(1, 3, 14);
  QueryStats stats;
  TopK(ds, ws.row(0), 5, &stats);
  EXPECT_EQ(stats.inner_products, 100u);
  EXPECT_EQ(stats.multiplications, 300u);
}

// ---------------------------------------------------------------- Rank

TEST(RankTest, StrictRankIgnoresTies) {
  auto ds = Dataset::FromRows({{1.0}, {2.0}, {2.0}, {3.0}}).value();
  std::vector<double> w{1.0};
  std::vector<double> q{2.0};
  EXPECT_EQ(RankOfQuery(ds, w, q), 1);  // only the 1.0 point is better
}

TEST(RankTest, QueryFromDatasetDoesNotCountItself) {
  Dataset ds = GenerateUniform(50, 4, 21);
  Dataset ws = GenerateWeightsUniform(1, 4, 22);
  // q == row 10; its own equal score must not count.
  const int64_t rank = RankOfQuery(ds, ws.row(0), ds.row(10));
  EXPECT_GE(rank, 0);
  EXPECT_LT(rank, 50);
}

TEST(RankTest, ThresholdVariantMatchesExactBelowThreshold) {
  Dataset ds = GenerateUniform(300, 5, 31);
  Dataset ws = GenerateWeightsUniform(10, 5, 32);
  for (size_t wi = 0; wi < ws.size(); ++wi) {
    const int64_t exact = RankOfQuery(ds, ws.row(wi), ds.row(0));
    const int64_t capped =
        RankWithThreshold(ds, ws.row(wi), ds.row(0), exact + 1);
    EXPECT_EQ(capped, exact);
    EXPECT_EQ(RankWithThreshold(ds, ws.row(wi), ds.row(0), exact),
              kRankOverThreshold);
  }
}

TEST(RankTest, ThresholdZeroAlwaysOver) {
  Dataset ds = GenerateUniform(10, 2, 41);
  Dataset ws = GenerateWeightsUniform(1, 2, 42);
  EXPECT_EQ(RankWithThreshold(ds, ws.row(0), ds.row(0), 0),
            kRankOverThreshold);
}

TEST(RankTest, EarlyTerminationVisitsFewerPoints) {
  Dataset ds = GenerateUniform(10000, 4, 51);
  Dataset ws = GenerateWeightsUniform(1, 4, 52);
  // Pick the worst point (highest score) so nearly everything out-ranks it:
  // threshold 10 must terminate long before the end.
  size_t worst = 0;
  double worst_score = -1.0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const double s = InnerProduct(ws.row(0), ds.row(i));
    if (s > worst_score) {
      worst_score = s;
      worst = i;
    }
  }
  QueryStats stats;
  EXPECT_EQ(RankWithThreshold(ds, ws.row(0), ds.row(worst), 10, &stats),
            kRankOverThreshold);
  EXPECT_LT(stats.points_visited, 5000u);
}

}  // namespace
}  // namespace gir

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/bbr.h"
#include "baselines/mpa.h"
#include "core/naive.h"
#include "core/status.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/gir_queries.h"
#include "grid/partitioner.h"
#include "rtree/rtree.h"
#include "rtree/rtree_stats.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

TEST(ResultExtraTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(PartitionerExtraTest, NegativeValuesClampToCellZero) {
  auto uniform = Partitioner::Uniform(8, 1.0).value();
  EXPECT_EQ(uniform.CellOf(-0.5), 0);
  auto general = Partitioner::FromBoundaries({0.0, 0.3, 1.0}).value();
  EXPECT_EQ(general.CellOf(-0.5), 0);
}

TEST(PartitionerExtraTest, ValuesAboveRangeClampToLastCell) {
  auto uniform = Partitioner::Uniform(8, 1.0).value();
  EXPECT_EQ(uniform.CellOf(99.0), 7);
  auto general = Partitioner::FromBoundaries({0.0, 0.3, 1.0}).value();
  EXPECT_EQ(general.CellOf(99.0), 1);
}

TEST(PartitionerExtraTest, TopBoundaryIsExactRange) {
  // range * n / n can round below range; the constructor must pin it.
  for (double range : {10000.0, 0.9573684210526316, 3.3333333333333335}) {
    for (size_t n : {3u, 7u, 32u, 128u}) {
      auto part = Partitioner::Uniform(n, range).value();
      EXPECT_EQ(part.Boundary(n), range) << "n=" << n << " range=" << range;
    }
  }
}

TEST(GirExtraTest, KLargerThanPointsAcceptsEveryWeight) {
  Workload wl = MakeWorkload(40, 15, 3, 1);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  auto result = index.ReverseTopK(wl.points.row(0), wl.points.size() + 10);
  EXPECT_EQ(result.size(), wl.weights.size());
}

TEST(GirExtraTest, RepeatedQueriesAreIndependent) {
  // The same index must give identical answers across repeated calls (no
  // leaking per-query state).
  Workload wl = MakeWorkload(200, 40, 4, 2);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  const auto first = index.ReverseKRanks(wl.points.row(5), 8);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(index.ReverseKRanks(wl.points.row(5), 8), first);
  }
}

TEST(GirExtraTest, PartitionCountOneStillCorrect) {
  // n = 1: the grid is a single cell — everything unresolved, everything
  // refined, still exact.
  Workload wl = MakeWorkload(100, 20, 3, 3);
  GirOptions opts;
  opts.partitions = 1;
  auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
  ConstRow q = wl.points.row(50);
  EXPECT_EQ(index.ReverseTopK(q, 10),
            NaiveReverseTopK(wl.points, wl.weights, q, 10));
  EXPECT_EQ(index.ReverseKRanks(q, 10),
            NaiveReverseKRanks(wl.points, wl.weights, q, 10));
}

TEST(BbrExtraTest, TinyFanoutTree) {
  Workload wl = MakeWorkload(150, 40, 3, 4);
  BbrOptions options;
  options.max_entries = 2;
  auto bbr = BbrReverseTopK::Build(wl.points, wl.weights, options).value();
  ConstRow q = wl.points.row(75);
  EXPECT_EQ(bbr.ReverseTopK(q, 7),
            NaiveReverseTopK(wl.points, wl.weights, q, 7));
}

TEST(MpaExtraTest, ManyIntervalsPerDim) {
  Workload wl = MakeWorkload(200, 60, 3, 5);
  MpaOptions options;
  options.intervals_per_dim = 15;  // most buckets hold a single weight
  auto mpa = MpaReverseKRanks::Build(wl.points, wl.weights, options).value();
  ConstRow q = wl.points.row(3);
  EXPECT_EQ(mpa.ReverseKRanks(q, 9),
            NaiveReverseKRanks(wl.points, wl.weights, q, 9));
}

TEST(RTreeStatsExtraTest, FullVolumeQueryOverlapsEverything) {
  Dataset ds = GenerateUniform(3000, 4, 6);
  RTree tree = RTree::BulkLoad(ds);
  MbrObservation obs = ObserveLeafMbrs(tree, 1.0, 4, 7);
  EXPECT_GT(obs.overlap_fraction, 0.99);
}

TEST(RTreeExtraTest, IncrementalTreeMatchesBulkLoad) {
  Dataset ds = GenerateUniform(1000, 3, 8);
  RTree::Options options;
  options.max_entries = 16;
  RTree tree = RTree::BulkLoad(ds, options);
  // An incremental tree over the same data must answer identically.
  RTree incremental = RTree::CreateEmpty(ds, options);
  for (VectorId i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(incremental.Insert(i).ok());
  }
  Mbr probe({1000.0, 1000.0, 1000.0}, {4000.0, 4000.0, 4000.0});
  std::vector<VectorId> bulk_hits, incr_hits;
  tree.RangeQuery(probe, &bulk_hits);
  incremental.RangeQuery(probe, &incr_hits);
  std::sort(bulk_hits.begin(), bulk_hits.end());
  std::sort(incr_hits.begin(), incr_hits.end());
  EXPECT_EQ(bulk_hits, incr_hits);
}

TEST(WeightHistogramExtraTest, IdenticalWeightsShareOneBucket) {
  Dataset weights(3);
  std::vector<double> w{0.2, 0.3, 0.5};
  for (int i = 0; i < 25; ++i) weights.AppendUnchecked(w);
  auto hist = WeightHistogram::Build(weights, 5).value();
  EXPECT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.buckets()[0].members.size(), 25u);
  // Degenerate bounds: lo == hi == the weight itself.
  EXPECT_EQ(hist.buckets()[0].bounds.lo(), hist.buckets()[0].bounds.hi());
}

TEST(NaiveExtraTest, StatsCountEveryPair) {
  Workload wl = MakeWorkload(50, 20, 3, 9);
  QueryStats stats;
  NaiveReverseTopK(wl.points, wl.weights, wl.points.row(0), 5, &stats);
  EXPECT_EQ(stats.points_visited, 50u * 20u);
  // One score per point per weight plus one query score per weight.
  EXPECT_EQ(stats.inner_products, (50u + 1u) * 20u);
}

}  // namespace
}  // namespace gir

// End-to-end distributed-router tests (DESIGN.md §18): fork N real
// `gir_serve --shard-lane` worker processes plus a real `gir_router`
// front end over loopback, drive a randomized mutation + query stream
// through the router's GIRNET01 port, and require the cluster's answers
// to be bit-identical to a single in-process DynamicGirIndex fed exactly
// the same stream — ids, ranks, tie order, live counts — at shard counts
// 1, 2 and 4.
//
// The failure arm SIGKILLs one worker mid-serve and requires
// degraded-never-wrong: every answer is flagged kDegraded with an
// accurate shard-coverage bitmap, and the payload equals the oracle's
// answer restricted to the weights the covered shards own — never a
// wrong merge, never a silent gap.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "data/weights.h"
#include "grid/dynamic_index.h"
#include "grid/index_io.h"
#include "grid/sharded_index.h"
#include "server/client.h"

#ifndef GIR_SERVE_PATH
#error "GIR_SERVE_PATH must be defined by the build"
#endif
#ifndef GIR_ROUTER_PATH
#error "GIR_ROUTER_PATH must be defined by the build"
#endif

namespace gir {
namespace {

constexpr size_t kDim = 3;

class DistRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_dist_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    points_ = GeneratePoints(PointDistribution::kUniform, 60, kDim, 901);
    weights_ = GenerateWeights(WeightDistribution::kUniform, 48, kDim, 902);
  }

  void TearDown() override {
    StopCluster();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Builds the GIRSHD01 envelope at `n` shards, forks one
  /// `gir_serve --shard-lane` per lane (read-only: the router is the only
  /// write path) and one `gir_router` over them, and waits for every port
  /// file. Also rebuilds the round-robin owner snapshot the degraded arm
  /// filters by.
  void StartCluster(size_t n) {
    ASSERT_TRUE(shard_pids_.empty()) << "cluster already running";
    ShardedIndexOptions options;
    options.shards = n;
    auto sharded = ShardedGirIndex::Build(points_, weights_, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE(SaveShardedIndex(Path("shd.bin"), *sharded.value()).ok());

    std::string shard_list;
    for (size_t s = 0; s < n; ++s) {
      const std::string port_file = Path("s" + std::to_string(s) + ".port");
      std::filesystem::remove(port_file);
      shard_pids_.push_back(Spawn(
          GIR_SERVE_PATH,
          {"--index", Path("shd.bin"), "--shard-lane", std::to_string(s),
           "--read-only", "--port", "0", "--port-file", port_file},
          "s" + std::to_string(s) + ".log"));
    }
    for (size_t s = 0; s < n; ++s) {
      const uint16_t port =
          AwaitPort(Path("s" + std::to_string(s) + ".port"), shard_pids_[s]);
      if (HasFatalFailure()) return;
      if (!shard_list.empty()) shard_list += ",";
      shard_list += "127.0.0.1:" + std::to_string(port);
    }

    std::filesystem::remove(Path("r.port"));
    // Tight retry/breaker knobs keep the SIGKILL arm fast: one retry with
    // short backoff, breaker after two consecutive failures.
    router_pid_ = Spawn(
        GIR_ROUTER_PATH,
        {"--index", Path("shd.bin"), "--shards", shard_list, "--port", "0",
         "--port-file", Path("r.port"), "--connect-ms", "2000",
         "--timeout-ms", "4000", "--retries", "1", "--backoff-ms", "5",
         "--backoff-max-ms", "20", "--breaker-threshold", "2",
         "--breaker-cooldown-ms", "200"},
        "router.log");
    router_port_ = AwaitPort(Path("r.port"), router_pid_);
  }

  void StopCluster() {
    auto reap = [](pid_t& pid) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        pid = -1;
      }
    };
    reap(router_pid_);
    for (pid_t& pid : shard_pids_) reap(pid);
    shard_pids_.clear();
  }

  void KillShard(size_t s) {
    ASSERT_LT(s, shard_pids_.size());
    ASSERT_GT(shard_pids_[s], 0);
    ASSERT_EQ(::kill(shard_pids_[s], SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(shard_pids_[s], &status, 0), shard_pids_[s]);
    shard_pids_[s] = -1;
  }

  pid_t Spawn(const char* binary, std::vector<std::string> args,
              const std::string& log_name) {
    std::vector<std::string> all = {binary};
    for (std::string& a : args) all.push_back(std::move(a));
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      const int log = ::open(Path(log_name).c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        ::dup2(log, 1);
        ::dup2(log, 2);
        ::close(log);
      }
      std::vector<char*> argv;
      argv.reserve(all.size() + 1);
      for (std::string& a : all) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(binary, argv.data());
      _exit(127);
    }
    return pid;
  }

  uint16_t AwaitPort(const std::string& port_file, pid_t pid) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file);
      int port = 0;
      if (in >> port && port > 0) return static_cast<uint16_t>(port);
      int status = 0;
      EXPECT_EQ(::waitpid(pid, &status, WNOHANG), 0)
          << "process died during startup; logs:\n"
          << ReadLogs();
      if (HasFailure()) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "port file " << port_file << " never appeared; logs:\n"
                  << ReadLogs();
    return 0;
  }

  std::string ReadLogs() const {
    std::string out;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().extension() != ".log") continue;
      std::ifstream in(entry.path());
      out += "---- " + entry.path().filename().string() + " ----\n";
      out += std::string((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    }
    return out;
  }

  RemoteClient ConnectRouter() {
    RemoteClientOptions options;
    options.connect_ms = 5000;
    options.io_ms = 30000;  // the router absorbs shard-side retry delays
    auto client = RemoteClient::Connect("127.0.0.1", router_port_, options);
    EXPECT_TRUE(client.ok()) << client.status().ToString() << ReadLogs();
    return std::move(client).value();
  }

  std::filesystem::path dir_;
  Dataset points_{kDim};
  Dataset weights_{kDim};
  std::vector<pid_t> shard_pids_;
  pid_t router_pid_ = -1;
  uint16_t router_port_ = 0;
};

std::vector<double> RandomRow(std::mt19937_64& rng, bool weight) {
  std::uniform_real_distribution<double> value(weight ? 0.05 : 0.0,
                                               weight ? 1.0 : 10000.0);
  std::vector<double> row(kDim);
  double sum = 0.0;
  for (double& v : row) {
    v = value(rng);
    sum += v;
  }
  if (weight) {
    for (double& v : row) v /= sum;
  }
  return row;
}

void ExpectRkrEq(const ReverseKRanksResult& got,
                 const ReverseKRanksResult& want, const char* where) {
  ASSERT_EQ(got.size(), want.size()) << where;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].weight_id, want[i].weight_id) << where << " #" << i;
    EXPECT_EQ(got[i].rank, want[i].rank) << where << " #" << i;
  }
}

/// The oracle gate: a churn + query stream through the router must be
/// bit-identical to one DynamicGirIndex fed the same acked stream, at
/// every cluster width. Also exercises the capped RKR verb and both
/// batch verbs end to end, and requires zero degraded answers on a
/// healthy cluster.
TEST_F(DistRouterTest, ClusterMatchesSingleIndexOracle) {
  const Dataset probes =
      GeneratePoints(PointDistribution::kUniform, 6, kDim, 903);

  for (size_t n : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(n));
    StartCluster(n);
    if (HasFatalFailure() || HasFailure()) return;
    RemoteClient client = ConnectRouter();
    if (HasFailure()) return;

    DynamicIndexOptions oracle_options;
    auto oracle = DynamicGirIndex::Build(points_, weights_, oracle_options);
    ASSERT_TRUE(oracle.ok());

    std::mt19937_64 rng(910 + n);
    size_t live_points = points_.size();
    size_t live_weights = weights_.size();
    for (int op = 0; op < 30; ++op) {
      const uint32_t dice = static_cast<uint32_t>(rng() % 100);
      if (dice < 30) {
        const std::vector<double> row = RandomRow(rng, /*weight=*/false);
        ASSERT_TRUE(client.InsertPoint(ConstRow(row.data(), kDim)).ok());
        ASSERT_TRUE(
            oracle.value().InsertPoint(ConstRow(row.data(), kDim)).ok());
        ++live_points;
      } else if (dice < 45 && live_points > 20) {
        const uint64_t id = rng() % live_points;
        ASSERT_TRUE(client.DeletePoint(id).ok());
        ASSERT_TRUE(oracle.value().DeletePoint(id).ok());
        --live_points;
      } else if (dice < 70) {
        const std::vector<double> row = RandomRow(rng, /*weight=*/true);
        ASSERT_TRUE(client.InsertWeight(ConstRow(row.data(), kDim)).ok());
        ASSERT_TRUE(
            oracle.value().InsertWeight(ConstRow(row.data(), kDim)).ok());
        ++live_weights;
      } else if (dice < 85 && live_weights > 8) {
        const uint64_t id = rng() % live_weights;
        ASSERT_TRUE(client.DeleteWeight(id).ok());
        ASSERT_TRUE(oracle.value().DeleteWeight(id).ok());
        --live_weights;
      } else {
        ASSERT_TRUE(client.Compact().ok());
        // Compact is a no-op on results; the oracle needs no mirror.
      }
      EXPECT_FALSE(client.last_degraded());

      const std::vector<double> q = RandomRow(rng, /*weight=*/false);
      const ConstRow qrow(q.data(), kDim);
      const size_t k = 1 + rng() % 7;

      auto rtk = client.ReverseTopK(qrow, static_cast<uint32_t>(k));
      ASSERT_TRUE(rtk.ok()) << rtk.status().ToString();
      EXPECT_FALSE(client.last_degraded());
      EXPECT_EQ(rtk.value(), oracle.value().ReverseTopK(qrow, k))
          << "op " << op;

      auto rkr = client.ReverseKRanks(qrow, static_cast<uint32_t>(k));
      ASSERT_TRUE(rkr.ok()) << rkr.status().ToString();
      ExpectRkrEq(rkr.value(), oracle.value().ReverseKRanks(qrow, k), "rkr");

      // An effectively-unbounded cap must change nothing; the router
      // threads it through the shared-bound fan-out path.
      auto capped = client.ReverseKRanksCapped(
          qrow, static_cast<uint32_t>(k), int64_t{1} << 60);
      ASSERT_TRUE(capped.ok()) << capped.status().ToString();
      ExpectRkrEq(capped.value(), oracle.value().ReverseKRanks(qrow, k),
                  "capped");
    }

    auto rtk_batch = client.ReverseTopKBatch(probes, 5);
    ASSERT_TRUE(rtk_batch.ok()) << rtk_batch.status().ToString();
    auto rkr_batch = client.ReverseKRanksBatch(probes, 5);
    ASSERT_TRUE(rkr_batch.ok()) << rkr_batch.status().ToString();
    ASSERT_EQ(rtk_batch.value().size(), probes.size());
    ASSERT_EQ(rkr_batch.value().size(), probes.size());
    for (size_t q = 0; q < probes.size(); ++q) {
      EXPECT_EQ(rtk_batch.value()[q],
                oracle.value().ReverseTopK(probes.row(q), 5))
          << "batch probe " << q;
      ExpectRkrEq(rkr_batch.value()[q],
                  oracle.value().ReverseKRanks(probes.row(q), 5), "batch");
    }

    auto info = client.Info();
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().live_points, oracle.value().live_point_count());
    EXPECT_EQ(info.value().live_weights, oracle.value().live_weight_count());

    StopCluster();
  }
}

/// Degraded-never-wrong: SIGKILL one of two workers and require every
/// subsequent answer to be flagged kDegraded with the exact coverage
/// bitmap, with a payload equal to the oracle restricted to the live
/// shard's weights. No weight churn before the kill, so ownership is the
/// build-time round robin: shard s owns the weights with id % 2 == s.
TEST_F(DistRouterTest, KilledShardDegradesWithAccurateCoverage) {
  StartCluster(2);
  if (HasFatalFailure() || HasFailure()) return;
  RemoteClient client = ConnectRouter();
  if (HasFailure()) return;

  DynamicIndexOptions oracle_options;
  auto oracle = DynamicGirIndex::Build(points_, weights_, oracle_options);
  ASSERT_TRUE(oracle.ok());

  KillShard(1);
  if (HasFatalFailure()) return;

  std::mt19937_64 rng(921);
  for (int probe = 0; probe < 4; ++probe) {
    const std::vector<double> q = RandomRow(rng, /*weight=*/false);
    const ConstRow qrow(q.data(), kDim);
    const size_t k = 3 + probe;

    auto rtk = client.ReverseTopK(qrow, static_cast<uint32_t>(k));
    ASSERT_TRUE(rtk.ok()) << rtk.status().ToString() << ReadLogs();
    EXPECT_TRUE(client.last_degraded()) << "probe " << probe;
    EXPECT_EQ(client.last_shard_count(), 2u);
    EXPECT_EQ(client.last_coverage(), 1u) << "probe " << probe;
    // RTK is a filter (every weight ranking the query above k), so the
    // covered-shards answer is exactly the full answer minus the dead
    // shard's weights (odd ids).
    ReverseTopKResult want_rtk;
    for (VectorId id : oracle.value().ReverseTopK(qrow, k)) {
      if (id % 2 == 0) want_rtk.push_back(id);
    }
    EXPECT_EQ(rtk.value(), want_rtk) << "probe " << probe;

    auto rkr = client.ReverseKRanks(qrow, static_cast<uint32_t>(k));
    ASSERT_TRUE(rkr.ok()) << rkr.status().ToString();
    EXPECT_TRUE(client.last_degraded());
    EXPECT_EQ(client.last_coverage(), 1u);
    ReverseKRanksResult want_rkr;
    for (const RankedWeight& entry : oracle.value().ReverseKRanks(
             qrow, oracle.value().live_weight_count())) {
      if (entry.weight_id % 2 == 0 && want_rkr.size() < k) {
        want_rkr.push_back(entry);
      }
    }
    ExpectRkrEq(rkr.value(), want_rkr, "degraded rkr");
  }

  // Mutations: a weight insert whose round-robin owner is the live shard
  // succeeds completely (kOk, not degraded); one owned by the dead shard
  // is acked degraded with empty coverage and applied nowhere. 48 initial
  // weights → the cursor is at 48, so owners alternate 0, 1, 0, ...
  const std::vector<double> w = RandomRow(rng, /*weight=*/true);
  ASSERT_TRUE(client.InsertWeight(ConstRow(w.data(), kDim)).ok());
  EXPECT_FALSE(client.last_degraded()) << "live-owner insert";
  ASSERT_TRUE(client.InsertWeight(ConstRow(w.data(), kDim)).ok());
  EXPECT_TRUE(client.last_degraded()) << "dead-owner insert";
  EXPECT_EQ(client.last_coverage(), 0u);

  // Broadcast point ops keep working, flagged degraded with the live
  // shard's bit set.
  const std::vector<double> p = RandomRow(rng, /*weight=*/false);
  ASSERT_TRUE(client.InsertPoint(ConstRow(p.data(), kDim)).ok());
  EXPECT_TRUE(client.last_degraded());
  EXPECT_EQ(client.last_coverage(), 1u);
}

}  // namespace
}  // namespace gir

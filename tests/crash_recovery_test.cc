// End-to-end crash-recovery tests (DESIGN.md §17): fork a real gir_serve
// with --wal-dir, SIGKILL it — between acknowledged mutations, mid-churn
// (likely mid-append), and under an aggressive checkpoint cadence (likely
// mid-snapshot) — restart it, and require the recovered process to answer
// bit-identically to an oracle.
//
// Two oracles are used. The scripted test keeps a client-side
// DynamicGirIndex in lockstep with every ACKED mutation: with
// --fsync-policy always and an idle client at kill time, durable state
// equals acked state exactly, so the restarted server must match the
// oracle bit-for-bit — ids, ranks, tie order, live counts. The churn test
// kills at arbitrary moments where durable state may exceed the last ack
// by in-flight admissions, so its oracle is built from the durable
// artifacts themselves (snapshot + WAL read before the restart) and the
// restarted server must match THAT, plus every acked mutation must be
// present in the log.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "data/weights.h"
#include "grid/dynamic_index.h"
#include "grid/index_io.h"
#include "grid/sharded_index.h"
#include "io/dataset_io.h"
#include "io/wal.h"
#include "server/client.h"

#ifndef GIR_SERVE_PATH
#error "GIR_SERVE_PATH must be defined by the build"
#endif

namespace gir {
namespace {

constexpr size_t kDim = 4;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_crash_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    points_ = GeneratePoints(PointDistribution::kUniform, 50, kDim, 301);
    weights_ = GenerateWeights(WeightDistribution::kUniform, 60, kDim, 302);
    ASSERT_TRUE(SaveDataset(Path("points.bin"), points_).ok());
    ASSERT_TRUE(SaveDataset(Path("weights.bin"), weights_).ok());
  }
  void TearDown() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string WalDir() const { return Path("wal"); }

  /// Forks gir_serve with the given extra flags (on top of the cold
  /// source, WAL dir and port file) and waits for it to accept. The same
  /// flag set must be used for every boot of one WAL dir.
  void StartServer(std::vector<std::string> extra = {}) {
    ASSERT_LT(pid_, 0) << "server already running";
    std::filesystem::remove(Path("port"));
    std::vector<std::string> args = {GIR_SERVE_PATH,
                                     "--points",
                                     Path("points.bin"),
                                     "--weights",
                                     Path("weights.bin"),
                                     "--shards",
                                     "2",
                                     "--wal-dir",
                                     WalDir(),
                                     "--fsync-policy",
                                     "always",
                                     "--port",
                                     "0",
                                     "--port-file",
                                     Path("port")};
    for (std::string& e : extra) args.push_back(std::move(e));

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const int log = ::open(Path("server.log").c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        ::dup2(log, 1);
        ::dup2(log, 2);
        ::close(log);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(GIR_SERVE_PATH, argv.data());
      _exit(127);
    }
    pid_ = pid;

    // The port file is written atomically once the listener is up.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(Path("port"));
      int port = 0;
      if (in >> port && port > 0) {
        port_ = static_cast<uint16_t>(port);
        return;
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid_, &status, WNOHANG), 0)
          << "server died during startup; log:\n"
          << ReadLog();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "server never wrote the port file; log:\n" << ReadLog();
  }

  void KillServer() {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(::kill(pid_, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
  }

  void StopServerGracefully() {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(::kill(pid_, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
    ASSERT_TRUE(WIFEXITED(status)) << ReadLog();
    ASSERT_EQ(WEXITSTATUS(status), 0) << ReadLog();
  }

  std::string ReadLog() const {
    std::ifstream in(Path("server.log"));
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  RemoteClient Connect() {
    auto client = RemoteClient::Connect("127.0.0.1", port_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::filesystem::path dir_;
  Dataset points_{kDim};
  Dataset weights_{kDim};
  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

std::vector<double> RandomRow(std::mt19937_64& rng, bool weight) {
  std::uniform_real_distribution<double> value(weight ? 0.05 : 0.0,
                                               weight ? 1.0 : 10000.0);
  std::vector<double> row(kDim);
  double sum = 0.0;
  for (double& v : row) {
    v = value(rng);
    sum += v;
  }
  if (weight) {
    for (double& v : row) v /= sum;
  }
  return row;
}

void ExpectServerMatchesOracle(RemoteClient& client,
                               const DynamicGirIndex& oracle,
                               const Dataset& probes, const char* where) {
  auto info = client.Info();
  ASSERT_TRUE(info.ok()) << where << ": " << info.status().ToString();
  EXPECT_EQ(info.value().live_points, oracle.live_point_count()) << where;
  EXPECT_EQ(info.value().live_weights, oracle.live_weight_count()) << where;
  for (size_t q = 0; q < probes.size(); ++q) {
    auto got = client.ReverseKRanks(probes.row(q), 5);
    ASSERT_TRUE(got.ok()) << where << ": " << got.status().ToString();
    const ReverseKRanksResult want = oracle.ReverseKRanks(probes.row(q), 5);
    ASSERT_EQ(got.value().size(), want.size()) << where << " probe " << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.value()[i].weight_id, want[i].weight_id)
          << where << " probe " << q << " #" << i;
      EXPECT_EQ(got.value()[i].rank, want[i].rank)
          << where << " probe " << q << " #" << i;
    }
  }
}

/// SIGKILL between acknowledged mutations, repeatedly, with checkpoints
/// racing the kills. With fsync always and an idle client, durable ==
/// acked, so the restarted server must be bit-identical to an oracle fed
/// exactly the acked stream — across every crash/restart cycle.
TEST_F(CrashRecoveryTest, KillBetweenAcksRecoversBitIdentically) {
  DynamicIndexOptions oracle_options;
  auto oracle = DynamicGirIndex::Build(points_, weights_, oracle_options);
  ASSERT_TRUE(oracle.ok());
  const Dataset probes =
      GeneratePoints(PointDistribution::kUniform, 8, kDim, 309);

  std::mt19937_64 rng(310);
  size_t live_points = points_.size();
  size_t live_weights = weights_.size();
  for (int cycle = 0; cycle < 3; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    // An aggressive checkpoint cadence so later cycles recover from a
    // snapshot + suffix, not the cold source + full log.
    StartServer({"--checkpoint-ops", "25"});
    if (HasFatalFailure()) return;
    RemoteClient client = Connect();

    ExpectServerMatchesOracle(client, oracle.value(), probes, "post-boot");
    if (HasFatalFailure()) return;

    for (int op = 0; op < 40; ++op) {
      const uint32_t dice = static_cast<uint32_t>(rng() % 100);
      if (dice < 35) {
        const std::vector<double> row = RandomRow(rng, /*weight=*/false);
        ASSERT_TRUE(client.InsertPoint(ConstRow(row.data(), kDim)).ok());
        ASSERT_TRUE(
            oracle.value().InsertPoint(ConstRow(row.data(), kDim)).ok());
        ++live_points;
      } else if (dice < 55 && live_points > 20) {
        const uint64_t id = rng() % live_points;
        ASSERT_TRUE(client.DeletePoint(id).ok());
        ASSERT_TRUE(oracle.value().DeletePoint(id).ok());
        --live_points;
      } else if (dice < 80) {
        const std::vector<double> row = RandomRow(rng, /*weight=*/true);
        ASSERT_TRUE(client.InsertWeight(ConstRow(row.data(), kDim)).ok());
        ASSERT_TRUE(
            oracle.value().InsertWeight(ConstRow(row.data(), kDim)).ok());
        ++live_weights;
      } else if (live_weights > 20) {
        const uint64_t id = rng() % live_weights;
        ASSERT_TRUE(client.DeleteWeight(id).ok());
        ASSERT_TRUE(oracle.value().DeleteWeight(id).ok());
        --live_weights;
      }
    }
    ExpectServerMatchesOracle(client, oracle.value(), probes, "pre-kill");
    if (HasFatalFailure()) return;
    KillServer();
  }

  // One final boot after the last kill: the whole acked history survived
  // three crashes.
  StartServer({"--checkpoint-ops", "25"});
  if (HasFatalFailure()) return;
  RemoteClient client = Connect();
  ExpectServerMatchesOracle(client, oracle.value(), probes, "final-boot");
}

/// SIGKILL at arbitrary moments while a writer hammers mutations — the
/// kill lands mid-append, mid-background-compaction or mid-snapshot. The
/// restarted server must match an oracle built from the durable artifacts
/// (snapshot + logs as read before the restart), and every acknowledged
/// mutation must be in those artifacts.
TEST_F(CrashRecoveryTest, KillMidChurnRecoversTheDurableHistory) {
  const Dataset probes =
      GeneratePoints(PointDistribution::kUniform, 6, kDim, 311);
  std::mt19937_64 kill_rng(312);

  for (int cycle = 0; cycle < 3; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    StartServer({"--checkpoint-ops", "10"});
    if (HasFatalFailure()) return;

    std::atomic<uint64_t> acked{0};
    std::thread writer([this, &acked, cycle] {
      auto client = RemoteClient::Connect("127.0.0.1", port_);
      if (!client.ok()) return;
      std::mt19937_64 rng(400 + cycle);
      size_t inserted = 0;  // ids in [0, inserted) stay safely deletable
      while (true) {
        const uint32_t dice = static_cast<uint32_t>(rng() % 100);
        Status s;
        if (dice < 60 || inserted == 0) {
          const std::vector<double> row = RandomRow(rng, /*weight=*/false);
          s = client.value().InsertPoint(ConstRow(row.data(), kDim));
          if (s.ok()) ++inserted;
        } else {
          s = client.value().DeletePoint(rng() % inserted);
          if (s.ok()) --inserted;
        }
        if (s.ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        } else if (s.code() == StatusCode::kIOError ||
                   s.code() == StatusCode::kNotFound ||
                   s.code() == StatusCode::kCorruption) {
          return;  // the kill landed
        }
      }
    });

    std::this_thread::sleep_for(
        std::chrono::milliseconds(100 + kill_rng() % 300));
    KillServer();
    writer.join();

    // Reconstruct from the durable artifacts exactly as the boot path
    // will: snapshot when present (else the cold source), plus the log
    // suffix. Same options as the serve flags above.
    Result<std::unique_ptr<ShardedGirIndex>> oracle =
        Status::Internal("unset");
    if (std::filesystem::exists(WalDir() + "/snapshot.gir")) {
      oracle = LoadShardedIndex(WalDir() + "/snapshot.gir",
                                /*use_workers=*/true,
                                /*background_compact=*/true);
    } else {
      ShardedIndexOptions options;
      options.shards = 2;
      options.use_workers = true;
      options.background_compact = true;
      options.dynamic.gir.partitions = 32;
      oracle = ShardedGirIndex::Build(points_, weights_, options);
    }
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto merged = ReadWalDir(WalDir());
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ASSERT_TRUE(oracle.value()->ReplayWal(merged.value().records).ok());

    // fsync always: an acked mutation is durable, so the durable history
    // (snapshot prefix + log suffix) is at least as long as the ack count.
    uint64_t durable_seq = merged.value().max_seq;
    for (const WalFileState& f : merged.value().files) {
      durable_seq = std::max(durable_seq, f.snapshot_sequence);
    }
    EXPECT_GE(durable_seq, acked.load()) << ReadLog();

    // The recovered process answers exactly like the durable oracle.
    StartServer({"--checkpoint-ops", "10"});
    if (HasFatalFailure()) return;
    RemoteClient client = Connect();
    auto info = client.Info();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().live_points, oracle.value()->live_point_count());
    EXPECT_EQ(info.value().live_weights,
              oracle.value()->live_weight_count());
    for (size_t q = 0; q < probes.size(); ++q) {
      auto got = client.ReverseKRanks(probes.row(q), 5);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const ReverseKRanksResult want =
          oracle.value()->ReverseKRanks(probes.row(q), 5);
      ASSERT_EQ(got.value().size(), want.size()) << "probe " << q;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.value()[i].weight_id, want[i].weight_id)
            << "probe " << q << " #" << i;
        EXPECT_EQ(got.value()[i].rank, want[i].rank)
            << "probe " << q << " #" << i;
      }
    }
    EXPECT_NE(ReadLog().find("wal: recovered to seq"), std::string::npos);
    KillServer();
  }
}

/// A clean SIGTERM shutdown writes a final checkpoint: the snapshot
/// carries the whole history and the rotated logs are empty, so the next
/// boot replays nothing.
TEST_F(CrashRecoveryTest, CleanShutdownCheckpointsAndRebootsFromSnapshot) {
  StartServer();
  if (HasFatalFailure()) return;
  {
    RemoteClient client = Connect();
    std::mt19937_64 rng(501);
    for (int op = 0; op < 20; ++op) {
      const std::vector<double> row = RandomRow(rng, op % 2 == 0);
      ASSERT_TRUE((op % 2 == 0
                       ? client.InsertWeight(ConstRow(row.data(), kDim))
                       : client.InsertPoint(ConstRow(row.data(), kDim)))
                      .ok());
    }
  }
  StopServerGracefully();

  ASSERT_TRUE(std::filesystem::exists(WalDir() + "/snapshot.gir"));
  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged.value().records.empty())
      << "final checkpoint left an unrotated log";
  auto snapshot = LoadShardedIndex(WalDir() + "/snapshot.gir",
                                   /*use_workers=*/false);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value()->live_point_count(), points_.size() + 10);
  EXPECT_EQ(snapshot.value()->live_weight_count(), weights_.size() + 10);

  StartServer();
  if (HasFatalFailure()) return;
  RemoteClient client = Connect();
  auto info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().live_points, points_.size() + 10);
  EXPECT_EQ(info.value().live_weights, weights_.size() + 10);
  EXPECT_NE(ReadLog().find("snapshot + 0 log records"), std::string::npos)
      << ReadLog();
}

}  // namespace
}  // namespace gir

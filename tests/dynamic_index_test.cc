#include "grid/dynamic_index.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/naive.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "data/rng.h"
#include "data/weights.h"
#include "grid/index_io.h"
#include "grid/parallel_gir.h"

namespace gir {
namespace {

DynamicIndexOptions MakeOptions(ScanMode mode) {
  DynamicIndexOptions options;
  options.gir.partitions = 8;
  options.gir.scan_mode = mode;
  options.gir.tau.k_max = 12;
  options.gir.tau.bins = 16;
  options.gir.tau.threads = 1;
  return options;
}

/// Rebuild-from-scratch oracle: a fresh static index over the dynamic
/// index's materialized live sets, with the same options. Bit-identity
/// against this (not just the naive scan) is the acceptance criterion —
/// the dynamic paths must reproduce the static engines' exact answers.
/// Owns its datasets: GirIndex keeps pointers to them, so they must live
/// exactly as long as the index.
struct Oracle {
  std::unique_ptr<Dataset> points;
  std::unique_ptr<Dataset> weights;
  std::unique_ptr<GirIndex> index;
};

Oracle RebuildOracle(const DynamicGirIndex& dyn) {
  Oracle o;
  o.points = std::make_unique<Dataset>(dyn.LivePoints());
  o.weights = std::make_unique<Dataset>(dyn.LiveWeights());
  auto built = GirIndex::Build(*o.points, *o.weights, dyn.options().gir);
  EXPECT_TRUE(built.ok()) << built.status().message();
  o.index = std::make_unique<GirIndex>(std::move(built).value());
  return o;
}

void ExpectMatchesOracle(const DynamicGirIndex& dyn, const Dataset& queries,
                         size_t k, ThreadPool* pool,
                         const std::string& context) {
  const Oracle rebuilt = RebuildOracle(dyn);
  const GirIndex& oracle = *rebuilt.index;
  const Dataset& live_points = *rebuilt.points;
  const Dataset& live_weights = *rebuilt.weights;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ConstRow q = queries.row(qi);
    const ReverseTopKResult rtk = dyn.ReverseTopK(q, k);
    EXPECT_EQ(rtk, oracle.ReverseTopK(q, k))
        << context << " rtk q=" << qi << " k=" << k;
    EXPECT_EQ(rtk, NaiveReverseTopK(live_points, live_weights, q, k))
        << context << " rtk-vs-naive q=" << qi << " k=" << k;
    const ReverseKRanksResult rkr = dyn.ReverseKRanks(q, k);
    EXPECT_EQ(rkr, oracle.ReverseKRanks(q, k))
        << context << " rkr q=" << qi << " k=" << k;
    EXPECT_EQ(rkr, NaiveReverseKRanks(live_points, live_weights, q, k))
        << context << " rkr-vs-naive q=" << qi << " k=" << k;
    if (pool != nullptr) {
      EXPECT_EQ(rtk, dyn.ParallelReverseTopK(q, k, *pool))
          << context << " parallel rtk q=" << qi << " k=" << k;
      EXPECT_EQ(rkr, dyn.ParallelReverseKRanks(q, k, *pool))
          << context << " parallel rkr q=" << qi << " k=" << k;
    }
  }
  const auto rtk_batch = dyn.ReverseTopKBatch(queries, k);
  const auto rkr_batch = dyn.ReverseKRanksBatch(queries, k);
  EXPECT_EQ(rtk_batch, oracle.ReverseTopKBatch(queries, k))
      << context << " rtk batch k=" << k;
  EXPECT_EQ(rkr_batch, oracle.ReverseKRanksBatch(queries, k))
      << context << " rkr batch k=" << k;
  if (pool != nullptr) {
    EXPECT_EQ(rtk_batch, dyn.ParallelReverseTopKBatch(queries, k, *pool))
        << context << " parallel rtk batch k=" << k;
    EXPECT_EQ(rkr_batch, dyn.ParallelReverseKRanksBatch(queries, k, *pool))
        << context << " parallel rkr batch k=" << k;
  }
}

class DynamicChurnTest : public ::testing::TestWithParam<ScanMode> {};

// The tentpole acceptance test: a >= 1000-operation interleaved
// insert/delete schedule where, after every mutation batch, every query
// entry point must answer bit-identically to an index rebuilt from
// scratch over the live sets.
TEST_P(DynamicChurnTest, BitIdenticalToRebuildAcrossChurnSchedule) {
  const size_t d = 4;
  Dataset points = GenerateUniform(150, d, 11);
  Dataset weights = GenerateWeightsUniform(40, d, 12);
  auto built = DynamicGirIndex::Build(points, weights, MakeOptions(GetParam()));
  ASSERT_TRUE(built.ok()) << built.status().message();
  DynamicGirIndex dyn = std::move(built).value();

  Dataset queries = GenerateUniform(3, d, 13);
  ThreadPool pool(3);
  Rng rng(17);
  const size_t total_ops = 1040;
  const size_t batch_ops = 40;
  size_t ops_done = 0;
  uint64_t max_generation = 0;
  while (ops_done < total_ops) {
    for (size_t i = 0; i < batch_ops; ++i, ++ops_done) {
      switch (rng.NextIndex(5)) {
        case 0:
        case 1: {  // insert point (delta buffer growth dominates)
          const Dataset fresh = GenerateUniform(1, d, rng.NextU64());
          ASSERT_TRUE(dyn.InsertPoint(fresh.row(0)).ok());
          break;
        }
        case 2: {  // delete point, keeping a nonempty live set
          if (dyn.live_point_count() > 20) {
            ASSERT_TRUE(
                dyn.DeletePoint(static_cast<VectorId>(
                                    rng.NextIndex(dyn.live_point_count())))
                    .ok());
          }
          break;
        }
        case 3: {  // insert weight
          const Dataset fresh = GenerateWeightsUniform(1, d, rng.NextU64());
          ASSERT_TRUE(dyn.InsertWeight(fresh.row(0)).ok());
          break;
        }
        case 4: {  // delete weight (occasionally down to very few)
          if (dyn.live_weight_count() > 5) {
            ASSERT_TRUE(
                dyn.DeleteWeight(static_cast<VectorId>(
                                     rng.NextIndex(dyn.live_weight_count())))
                    .ok());
          }
          break;
        }
      }
    }
    max_generation = std::max(max_generation, dyn.generation());
    const std::string context = "ops=" + std::to_string(ops_done);
    for (size_t k : {size_t{1}, size_t{7}}) {
      ExpectMatchesOracle(dyn, queries, k, &pool, context);
    }
    // k above the tau cap exercises the blocked fallback band; k above
    // |live P| exercises the everyone-qualifies path.
    ExpectMatchesOracle(dyn, queries, 25, nullptr, context);
    ExpectMatchesOracle(dyn, queries, dyn.live_point_count() + 3, nullptr,
                        context);
  }
  // The auto-compaction threshold (25% churn) must actually have fired
  // during a 1000-op schedule over a 190-row base.
  EXPECT_GT(max_generation, 0u);

  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_FALSE(dyn.dirty());
  ExpectMatchesOracle(dyn, queries, 7, &pool, "post-compact");
}

INSTANTIATE_TEST_SUITE_P(AllScanModes, DynamicChurnTest,
                         ::testing::Values(ScanMode::kWeightAtATime,
                                           ScanMode::kBlocked,
                                           ScanMode::kTauIndex),
                         [](const auto& info) {
                           switch (info.param) {
                             case ScanMode::kWeightAtATime:
                               return "WeightAtATime";
                             case ScanMode::kBlocked:
                               return "Blocked";
                             default:
                               return "TauIndex";
                           }
                         });

TEST(DynamicIndexTest, DeleteThenReinsertSameRowMatchesOracle) {
  const size_t d = 3;
  Dataset points = GenerateUniform(60, d, 21);
  Dataset weights = GenerateWeightsUniform(15, d, 22);
  DynamicIndexOptions options = MakeOptions(ScanMode::kTauIndex);
  options.auto_compact = false;
  auto built = DynamicGirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok());
  DynamicGirIndex dyn = std::move(built).value();
  Dataset queries = GenerateUniform(2, d, 23);

  // Copy rows out before mutating, then delete and re-insert them: the
  // reinserted rows take fresh live ids at the end of the order.
  std::vector<std::vector<double>> rows;
  for (VectorId id : {VectorId{5}, VectorId{17}}) {
    ConstRow row = points.row(id);
    rows.emplace_back(row.begin(), row.end());
  }
  ASSERT_TRUE(dyn.DeletePoint(17).ok());
  ASSERT_TRUE(dyn.DeletePoint(5).ok());
  ExpectMatchesOracle(dyn, queries, 5, nullptr, "after-delete");
  for (const auto& row : rows) {
    ASSERT_TRUE(dyn.InsertPoint(ConstRow(row.data(), row.size())).ok());
  }
  ExpectMatchesOracle(dyn, queries, 5, nullptr, "after-reinsert");

  // Same round-trip on the weight side.
  ConstRow w = weights.row(3);
  std::vector<double> wrow(w.begin(), w.end());
  ASSERT_TRUE(dyn.DeleteWeight(3).ok());
  ExpectMatchesOracle(dyn, queries, 5, nullptr, "after-weight-delete");
  ASSERT_TRUE(dyn.InsertWeight(ConstRow(wrow.data(), wrow.size())).ok());
  ExpectMatchesOracle(dyn, queries, 5, nullptr, "after-weight-reinsert");
}

TEST(DynamicIndexTest, EmptyDeltaDelegatesAndCompactIsIdempotent) {
  Dataset points = GenerateUniform(50, 3, 31);
  Dataset weights = GenerateWeightsUniform(10, 3, 32);
  auto built =
      DynamicGirIndex::Build(points, weights, MakeOptions(ScanMode::kBlocked));
  ASSERT_TRUE(built.ok());
  DynamicGirIndex dyn = std::move(built).value();
  EXPECT_FALSE(dyn.dirty());
  EXPECT_EQ(dyn.generation(), 0u);
  // Compacting a clean index is a no-op: same generation, still clean.
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(dyn.generation(), 0u);
  Dataset queries = GenerateUniform(2, 3, 33);
  ExpectMatchesOracle(dyn, queries, 4, nullptr, "clean");
}

TEST(DynamicIndexTest, QueriesWithNoLiveWeightsAnswerEmpty) {
  Dataset points = GenerateUniform(30, 3, 41);
  Dataset weights = GenerateWeightsUniform(3, 3, 42);
  DynamicIndexOptions options = MakeOptions(ScanMode::kBlocked);
  options.auto_compact = false;
  auto built = DynamicGirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok());
  DynamicGirIndex dyn = std::move(built).value();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(dyn.DeleteWeight(0).ok());
  }
  EXPECT_EQ(dyn.live_weight_count(), 0u);
  Dataset queries = GenerateUniform(1, 3, 43);
  EXPECT_TRUE(dyn.ReverseTopK(queries.row(0), 5).empty());
  EXPECT_TRUE(dyn.ReverseKRanks(queries.row(0), 5).empty());
}

TEST(DynamicIndexTest, MutationErrorsAreReported) {
  Dataset points = GenerateUniform(20, 3, 51);
  Dataset weights = GenerateWeightsUniform(5, 3, 52);
  auto built =
      DynamicGirIndex::Build(points, weights, MakeOptions(ScanMode::kBlocked));
  ASSERT_TRUE(built.ok());
  DynamicGirIndex dyn = std::move(built).value();

  EXPECT_EQ(dyn.DeletePoint(100).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dyn.DeleteWeight(100).code(), StatusCode::kInvalidArgument);
  const std::vector<double> bad_weight = {0.9, 0.9, 0.9};
  EXPECT_FALSE(
      dyn.InsertWeight(ConstRow(bad_weight.data(), bad_weight.size())).ok());
  const std::vector<double> bad_width = {0.5, 0.5};
  EXPECT_FALSE(
      dyn.InsertPoint(ConstRow(bad_width.data(), bad_width.size())).ok());
}

TEST(DynamicIndexTest, AutoCompactTriggersAtThreshold) {
  Dataset points = GenerateUniform(40, 3, 61);
  Dataset weights = GenerateWeightsUniform(10, 3, 62);
  DynamicIndexOptions options = MakeOptions(ScanMode::kBlocked);
  options.compact_threshold = 0.1;  // 50 base rows -> 6th op compacts
  auto built = DynamicGirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok());
  DynamicGirIndex dyn = std::move(built).value();
  Rng rng(63);
  for (size_t i = 0; i < 6; ++i) {
    const Dataset fresh = GenerateUniform(1, 3, rng.NextU64());
    ASSERT_TRUE(dyn.InsertPoint(fresh.row(0)).ok());
  }
  EXPECT_EQ(dyn.generation(), 1u);
  EXPECT_FALSE(dyn.dirty());
  EXPECT_EQ(dyn.live_point_count(), 46u);
}

TEST(DynamicIndexTest, OutOfRangeWeightInsertCompactsImmediately) {
  Dataset points = GenerateUniform(30, 4, 71);
  // A tight weight set: the generation's weight grid tops out near 1/d.
  Dataset weights = GenerateWeightsUniform(8, 4, 72);
  DynamicIndexOptions options = MakeOptions(ScanMode::kBlocked);
  options.auto_compact = false;
  auto built = DynamicGirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok());
  DynamicGirIndex dyn = std::move(built).value();
  // A near-degenerate preference concentrates all mass on one dimension —
  // far above any value the build-time weight partitioner covered.
  const std::vector<double> spike = {0.97, 0.01, 0.01, 0.01};
  ASSERT_TRUE(dyn.InsertWeight(ConstRow(spike.data(), spike.size())).ok());
  EXPECT_EQ(dyn.generation(), 1u);  // compacted immediately
  EXPECT_FALSE(dyn.dirty());
  Dataset queries = GenerateUniform(2, 4, 73);
  ExpectMatchesOracle(dyn, queries, 5, nullptr, "post-spike");
}

class DynamicIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_dyn_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A churned (dirty) index: tombstones on both sides plus delta rows.
  DynamicGirIndex MakeDirty(ScanMode mode) {
    Dataset points = GenerateUniform(60, 3, 81);
    Dataset weights = GenerateWeightsUniform(12, 3, 82);
    DynamicIndexOptions options = MakeOptions(mode);
    options.auto_compact = false;
    auto built = DynamicGirIndex::Build(points, weights, options);
    EXPECT_TRUE(built.ok());
    DynamicGirIndex dyn = std::move(built).value();
    Rng rng(83);
    for (size_t i = 0; i < 8; ++i) {
      const Dataset fresh = GenerateUniform(1, 3, rng.NextU64());
      EXPECT_TRUE(dyn.InsertPoint(fresh.row(0)).ok());
    }
    EXPECT_TRUE(dyn.DeletePoint(7).ok());
    EXPECT_TRUE(dyn.DeletePoint(30).ok());
    EXPECT_TRUE(dyn.DeleteWeight(2).ok());
    const Dataset fresh_w = GenerateWeightsUniform(2, 3, 84);
    EXPECT_TRUE(dyn.InsertWeight(fresh_w.row(0)).ok());
    EXPECT_TRUE(dyn.InsertWeight(fresh_w.row(1)).ok());
    EXPECT_TRUE(dyn.dirty());
    return dyn;
  }

  std::filesystem::path dir_;
};

TEST_F(DynamicIoTest, DirtyIndexRoundTripsBitIdentically) {
  for (ScanMode mode : {ScanMode::kBlocked, ScanMode::kTauIndex}) {
    DynamicGirIndex dyn = MakeDirty(mode);
    const std::string path = Path("dyn.bin");
    ASSERT_TRUE(SaveDynamicIndex(path, dyn).ok());
    auto loaded = LoadDynamicIndex(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    const DynamicGirIndex& restored = loaded.value();
    EXPECT_EQ(restored.generation(), dyn.generation());
    EXPECT_EQ(restored.dirty(), dyn.dirty());
    EXPECT_EQ(restored.live_point_count(), dyn.live_point_count());
    EXPECT_EQ(restored.live_weight_count(), dyn.live_weight_count());
    Dataset queries = GenerateUniform(3, 3, 85);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t k : {size_t{1}, size_t{5}, size_t{40}}) {
        EXPECT_EQ(restored.ReverseTopK(queries.row(qi), k),
                  dyn.ReverseTopK(queries.row(qi), k));
        EXPECT_EQ(restored.ReverseKRanks(queries.row(qi), k),
                  dyn.ReverseKRanks(queries.row(qi), k));
      }
    }
  }
}

TEST_F(DynamicIoTest, GenerationSurvivesRoundTrip) {
  DynamicGirIndex dyn = MakeDirty(ScanMode::kBlocked);
  ASSERT_TRUE(dyn.Compact().ok());
  EXPECT_EQ(dyn.generation(), 1u);
  const std::string path = Path("gen.bin");
  ASSERT_TRUE(SaveDynamicIndex(path, dyn).ok());
  auto loaded = LoadDynamicIndex(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().generation(), 1u);
  EXPECT_FALSE(loaded.value().dirty());
}

TEST_F(DynamicIoTest, LoadRejectsBadMagic) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  out << "GIRDYN99_and_then_some_padding_bytes";
  out.close();
  auto loaded = LoadDynamicIndex(Path("bad.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(DynamicIoTest, LoadRejectsTruncation) {
  DynamicGirIndex dyn = MakeDirty(ScanMode::kBlocked);
  const std::string path = Path("trunc.bin");
  ASSERT_TRUE(SaveDynamicIndex(path, dyn).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 16);
  auto loaded = LoadDynamicIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(DynamicIoTest, LoadRejectsTrailingGarbage) {
  DynamicGirIndex dyn = MakeDirty(ScanMode::kBlocked);
  const std::string path = Path("trail.bin");
  ASSERT_TRUE(SaveDynamicIndex(path, dyn).ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "junk";
  out.close();
  auto loaded = LoadDynamicIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

/// Overwrites `size` bytes at `offset` of `path` with `bytes`.
void PatchFile(const std::string& path, size_t offset, const void* bytes,
               size_t size) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(size));
}

// GIRDYN01 header layout: magic(8) generation(8) dim(4) flags(4)
// partitions(4) bound_mode(4) use_domin(4) scan_mode(4) tau_k_max(4)
// tau_bins(4) compact_threshold(8) auto_compact(4), then u64
// base_point_count at offset 60.
TEST_F(DynamicIoTest, LoadRejectsHostileHeaderFields) {
  DynamicGirIndex dyn = MakeDirty(ScanMode::kBlocked);
  const std::string good = Path("good.bin");
  ASSERT_TRUE(SaveDynamicIndex(good, dyn).ok());
  struct Case {
    const char* name;
    size_t offset;
    uint64_t value;
    size_t size;
  };
  const uint64_t huge_count = uint64_t{1} << 61;  // * dim * 8 wraps around
  const Case cases[] = {
      {"zero dim", 16, 0, 4},
      {"oversized dim", 16, uint64_t{1} << 20, 4},
      {"unknown flags", 20, 0xff, 4},
      {"zero partitions", 24, 0, 4},
      {"oversized partitions", 24, 4096, 4},
      {"unknown bound mode", 28, 99, 4},
      {"unknown scan mode", 36, 99, 4},
      {"allocation-bomb point count", 60, huge_count, 8},
  };
  for (const Case& c : cases) {
    const std::string path = Path("hostile.bin");
    std::filesystem::copy_file(
        good, path, std::filesystem::copy_options::overwrite_existing);
    PatchFile(path, c.offset, &c.value, c.size);
    auto loaded = LoadDynamicIndex(path);
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << c.name;
  }
}

TEST_F(DynamicIoTest, LoadRejectsBadBitmapBytes) {
  DynamicGirIndex dyn = MakeDirty(ScanMode::kBlocked);
  const std::string path = Path("bitmap.bin");
  ASSERT_TRUE(SaveDynamicIndex(path, dyn).ok());
  // The alive bitmaps are the last payload before EOF (no tau in blocked
  // mode); flip the final byte to a non-boolean value.
  const size_t size = std::filesystem::file_size(path);
  const uint8_t bad = 7;
  PatchFile(path, size - 1, &bad, 1);
  auto loaded = LoadDynamicIndex(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace gir

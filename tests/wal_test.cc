// Tests of the durability layer (DESIGN.md §17): the GIRWAL01 write-ahead
// log (io/wal.h), atomic file replacement (io/atomic_file.h), and the
// sharded router's WAL attach / replay / checkpoint / background-compaction
// machinery (grid/sharded_index.h).
//
// The two records-vs-tail distinctions this suite pins are the crash
// contract: a failing record that extends to end-of-file is a torn tail
// from a crash mid-append and recovery truncates-and-continues; a failing
// record with bytes after it means acknowledged history is damaged and
// recovery refuses with Status::Corruption. crash_recovery_test.cc drives
// the same machinery end-to-end through a SIGKILL'd gir_serve process.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "data/generators.h"
#include "data/weights.h"
#include "grid/dynamic_index.h"
#include "grid/index_io.h"
#include "grid/sharded_index.h"
#include "io/atomic_file.h"
#include "io/wal.h"

namespace gir {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string WalDir() const { return (dir_ / "wal").string(); }

  static std::string ReadBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  static void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
  }

  std::filesystem::path dir_;
};

WalRecord InsertPointRecord(uint64_t seq, std::vector<double> row) {
  WalRecord r;
  r.seq = seq;
  r.op = WalOp::kInsertPoint;
  r.row = std::move(row);
  return r;
}

WalRecord DeleteWeightRecord(uint64_t seq, uint64_t id) {
  WalRecord r;
  r.seq = seq;
  r.op = WalOp::kDeleteWeight;
  r.id = id;
  return r;
}

// ---- GIRWAL01 file format ----------------------------------------------

TEST_F(WalTest, AppendRoundTripsEveryOpKind) {
  auto wal = ShardedWal::Open(WalDir(), 2, 0, FsyncPolicy::kAlways);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  // Broadcast ops land in every lane; owner-routed ops in one.
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(1, {1.0, 2.0})).ok());
  WalRecord del_point;
  del_point.seq = 2;
  del_point.op = WalOp::kDeletePoint;
  del_point.id = 7;
  ASSERT_TRUE(wal.value()->AppendAll(del_point).ok());
  WalRecord ins_weight;
  ins_weight.seq = 3;
  ins_weight.op = WalOp::kInsertWeight;
  ins_weight.row = {0.25, 0.75};
  ASSERT_TRUE(wal.value()->Append(1, ins_weight).ok());
  ASSERT_TRUE(wal.value()->Append(0, DeleteWeightRecord(4, 9)).ok());
  WalRecord compact;
  compact.seq = 5;
  compact.op = WalOp::kCompact;
  ASSERT_TRUE(wal.value()->AppendAll(compact).ok());
  WalRecord marker;
  marker.seq = 6;
  marker.op = WalOp::kCompactShard;
  marker.shard = 1;
  ASSERT_TRUE(wal.value()->Append(1, marker).ok());

  auto lane0 = ReadWalFile(WalDir() + "/" + WalFileName(0));
  ASSERT_TRUE(lane0.ok()) << lane0.status().ToString();
  EXPECT_EQ(lane0.value().shard_index, 0u);
  EXPECT_EQ(lane0.value().shard_count, 2u);
  EXPECT_EQ(lane0.value().snapshot_sequence, 0u);
  EXPECT_FALSE(lane0.value().torn_tail);
  ASSERT_EQ(lane0.value().records.size(), 4u);  // 1, 2, 4, 5
  EXPECT_EQ(lane0.value().records[2].op, WalOp::kDeleteWeight);
  EXPECT_EQ(lane0.value().records[2].id, 9u);

  auto lane1 = ReadWalFile(WalDir() + "/" + WalFileName(1));
  ASSERT_TRUE(lane1.ok());
  ASSERT_EQ(lane1.value().records.size(), 5u);  // 1, 2, 3, 5, 6
  EXPECT_EQ(lane1.value().records[2].op, WalOp::kInsertWeight);
  EXPECT_EQ(lane1.value().records[2].row, (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(lane1.value().records[4].op, WalOp::kCompactShard);
  EXPECT_EQ(lane1.value().records[4].shard, 1u);

  // The directory merge collapses the broadcast duplicates back to the
  // admitted sequence: exactly one record per sequence number.
  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().records.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(merged.value().records[i].seq, i + 1);
  }
  EXPECT_EQ(merged.value().max_seq, 6u);
  EXPECT_EQ(merged.value().records[0].row, (std::vector<double>{1.0, 2.0}));

  const WalStats stats = wal.value()->stats();
  EXPECT_EQ(stats.records, 9u);  // 3 broadcasts x 2 lanes + 3 singles
  EXPECT_EQ(stats.syncs, 9u);    // kAlways: one fdatasync per append
  EXPECT_GT(stats.bytes, 0u);
}

TEST_F(WalTest, MissingFileIsNotFoundAndMissingDirIsEmpty) {
  EXPECT_EQ(ReadWalFile(Path("nope.log")).status().code(),
            StatusCode::kNotFound);
  auto merged = ReadWalDir(Path("no-such-dir"));
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged.value().records.empty());
  EXPECT_TRUE(merged.value().files.empty());
}

TEST_F(WalTest, ShortOrMismatchedHeaderIsCorruption) {
  WriteBytes(Path("short.log"), "GIRWAL0");  // shorter than the header
  EXPECT_EQ(ReadWalFile(Path("short.log")).status().code(),
            StatusCode::kCorruption);
  std::string bad(24, '\0');
  bad.replace(0, 8, "GIRNET01");  // wrong magic, right length
  WriteBytes(Path("magic.log"), bad);
  EXPECT_EQ(ReadWalFile(Path("magic.log")).status().code(),
            StatusCode::kCorruption);
}

TEST_F(WalTest, TornTailTruncatesAndContinues) {
  {
    auto wal = ShardedWal::Open(WalDir(), 1, 0, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(1, {1.0})).ok());
    ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(2, {2.0})).ok());
  }
  const std::string path = WalDir() + "/" + WalFileName(0);
  const std::string intact = ReadBytes(path);

  // Crash mid-append: only a prefix of the third record reached the disk.
  const std::string frame = EncodeWalRecord(InsertPointRecord(3, {3.0}));
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    WriteBytes(path, intact + frame.substr(0, cut));
    auto state = ReadWalFile(path);
    ASSERT_TRUE(state.ok()) << "cut=" << cut << ": "
                            << state.status().ToString();
    EXPECT_TRUE(state.value().torn_tail) << "cut=" << cut;
    ASSERT_EQ(state.value().records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(state.value().valid_bytes, intact.size());
  }

  // A complete final record whose CRC fails is the same crash shape
  // (payload half-written, length already durable): torn, not corrupt.
  std::string flipped = intact + frame;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x01);
  WriteBytes(path, flipped);
  auto state = ReadWalFile(path);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_TRUE(state.value().torn_tail);
  EXPECT_EQ(state.value().records.size(), 2u);

  // Re-opening truncates the tail away and appends resume cleanly after
  // the valid prefix.
  {
    auto wal = ShardedWal::Open(WalDir(), 1, 0, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(std::filesystem::file_size(path), intact.size());
    ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(3, {3.5})).ok());
  }
  auto resumed = ReadWalFile(path);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed.value().torn_tail);
  ASSERT_EQ(resumed.value().records.size(), 3u);
  EXPECT_EQ(resumed.value().records[2].row, (std::vector<double>{3.5}));
}

TEST_F(WalTest, CorruptionBeforeTheTailIsHardCorruption) {
  {
    auto wal = ShardedWal::Open(WalDir(), 1, 0, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(wal.value()
                      ->AppendAll(InsertPointRecord(seq, {double(seq)}))
                      .ok());
    }
  }
  const std::string path = WalDir() + "/" + WalFileName(0);
  const std::string intact = ReadBytes(path);

  // Flip one payload byte of the FIRST record: acknowledged history is
  // damaged and there are records after it — recovery must refuse rather
  // than silently truncate two durable mutations away.
  std::string corrupt = intact;
  corrupt[24 + 8 + 2] = static_cast<char>(corrupt[24 + 8 + 2] ^ 0x40);
  WriteBytes(path, corrupt);
  EXPECT_EQ(ReadWalFile(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ReadWalDir(WalDir()).status().code(), StatusCode::kCorruption);
  // Open refuses too: it never resumes a log whose middle is damaged.
  EXPECT_EQ(ShardedWal::Open(WalDir(), 1, 0, FsyncPolicy::kNever)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST_F(WalTest, NonIncreasingSequenceIsCorruption) {
  auto wal = ShardedWal::Open(WalDir(), 1, 0, FsyncPolicy::kNever);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(5, {1.0})).ok());
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(5, {2.0})).ok());
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(6, {3.0})).ok());
  EXPECT_EQ(ReadWalFile(WalDir() + "/" + WalFileName(0)).status().code(),
            StatusCode::kCorruption);
}

TEST_F(WalTest, LanesDisagreeingOnASequenceAreCorruption) {
  auto wal = ShardedWal::Open(WalDir(), 2, 0, FsyncPolicy::kNever);
  ASSERT_TRUE(wal.ok());
  // A broadcast record must be byte-identical across lanes; two different
  // mutations claiming the same admission sequence cannot both be real.
  ASSERT_TRUE(wal.value()->Append(0, InsertPointRecord(1, {1.0})).ok());
  ASSERT_TRUE(wal.value()->Append(1, InsertPointRecord(1, {9.0})).ok());
  EXPECT_EQ(ReadWalDir(WalDir()).status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, FilesDisagreeingOnShardCountAreCorruption) {
  {
    auto wal = ShardedWal::Open(WalDir(), 1, 0, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(1, {1.0})).ok());
  }
  // Handcraft a second lane claiming a two-shard layout.
  std::string header;
  header.append("GIRWAL01", 8);
  const uint32_t shard = 1, count = 2;
  const uint64_t snap = 0;
  header.append(reinterpret_cast<const char*>(&shard), 4);
  header.append(reinterpret_cast<const char*>(&count), 4);
  header.append(reinterpret_cast<const char*>(&snap), 8);
  WriteBytes(WalDir() + "/" + WalFileName(1), header);
  EXPECT_EQ(ReadWalDir(WalDir()).status().code(), StatusCode::kCorruption);
  // Open validates the lanes it resumes (the boot path runs ReadWalDir
  // first, which is where whole-directory consistency is enforced): asked
  // for the two-shard layout here, lane 0's one-shard header must refuse.
  EXPECT_EQ(ShardedWal::Open(WalDir(), 2, 0, FsyncPolicy::kNever)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST_F(WalTest, RotateStartsFreshLogsStampedWithTheSnapshotSequence) {
  auto wal = ShardedWal::Open(WalDir(), 2, 0, FsyncPolicy::kNever);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(1, {1.0})).ok());
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(2, {2.0})).ok());
  ASSERT_TRUE(wal.value()->Rotate(2).ok());

  for (uint32_t s = 0; s < 2; ++s) {
    auto state = ReadWalFile(WalDir() + "/" + WalFileName(s));
    ASSERT_TRUE(state.ok());
    EXPECT_TRUE(state.value().records.empty());
    EXPECT_EQ(state.value().snapshot_sequence, 2u);
  }
  EXPECT_EQ(wal.value()->stats().rotations, 1u);
  EXPECT_EQ(wal.value()->stats().snapshot_sequence, 2u);

  // Appends continue into the fresh logs.
  ASSERT_TRUE(wal.value()->AppendAll(InsertPointRecord(3, {3.0})).ok());
  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged.value().records.size(), 1u);
  EXPECT_EQ(merged.value().records[0].seq, 3u);
}

// ---- Atomic file replacement (io/atomic_file.h) ------------------------

class AtomicFileTest : public WalTest {};

TEST_F(AtomicFileTest, FailedWriteFnLeavesOldContentsAndNoTemp) {
  const std::string path = Path("target.bin");
  WriteBytes(path, "old contents");
  const Status failed = AtomicWriteFile(path, [](std::ostream& out) {
    out << "half a new fi";
    return Status::IOError("injected failure");
  });
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(ReadBytes(path), "old contents");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, StreamFailureSurfacesAsIOError) {
  const std::string path = Path("target.bin");
  WriteBytes(path, "old contents");
  // The writer claims success but the stream is broken — the short write
  // must still surface, not be swallowed by a happy return.
  const Status failed = AtomicWriteFile(path, [](std::ostream& out) {
    out << "partial";
    out.setstate(std::ios::badbit);
    return Status::OK();
  });
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(ReadBytes(path), "old contents");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, ObstructedTempPathFailsWithoutTouchingTheTarget) {
  const std::string path = Path("target.bin");
  WriteBytes(path, "old contents");
  std::filesystem::create_directories(path + ".tmp");
  const Status failed = AtomicWriteFile(path, [](std::ostream& out) {
    out << "new contents";
    return Status::OK();
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(ReadBytes(path), "old contents");
  std::filesystem::remove_all(path + ".tmp");

  const Status ok = AtomicWriteFile(path, [](std::ostream& out) {
    out << "new contents";
    return Status::OK();
  });
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(ReadBytes(path), "new contents");
}

TEST_F(AtomicFileTest, InjectedKernelWriteFailureLeavesOldContents) {
  // RLIMIT_FSIZE caps regular-file writes: anything past the cap fails
  // with EFBIG (SIGXFSZ ignored), which is exactly the short-write shape
  // a full disk produces. The old contents must survive it.
  const std::string path = Path("target.bin");
  WriteBytes(path, "old contents");

  struct rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &saved), 0);
  void (*prev)(int) = ::signal(SIGXFSZ, SIG_IGN);
  struct rlimit tiny = saved;
  tiny.rlim_cur = 64;
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &tiny), 0);

  const Status failed = AtomicWriteFile(path, [](std::ostream& out) {
    const std::string block(4096, 'x');
    for (int i = 0; i < 64; ++i) out.write(block.data(), block.size());
    return Status::OK();
  });

  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &saved), 0);
  ::signal(SIGXFSZ, prev);

  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(ReadBytes(path), "old contents");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, SaveShardedIndexFailureKeepsThePreviousSnapshot) {
  const Dataset points =
      GeneratePoints(PointDistribution::kUniform, 40, 3, 11);
  const Dataset weights =
      GenerateWeights(WeightDistribution::kUniform, 50, 3, 12);
  ShardedIndexOptions options;
  options.shards = 2;
  options.use_workers = false;
  auto index = ShardedGirIndex::Build(points, weights, options);
  ASSERT_TRUE(index.ok());

  const std::string path = Path("snapshot.gir");
  ASSERT_TRUE(SaveShardedIndex(path, *index.value()).ok());
  const std::string before = ReadBytes(path);

  ASSERT_TRUE(index.value()->InsertPoint(points.row(0)).ok());
  std::filesystem::create_directories(path + ".tmp");
  EXPECT_FALSE(SaveShardedIndex(path, *index.value()).ok());
  std::filesystem::remove_all(path + ".tmp");

  // The failed save changed nothing: the old snapshot still loads.
  EXPECT_EQ(ReadBytes(path), before);
  auto reloaded = LoadShardedIndex(path, /*use_workers=*/false);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value()->live_point_count(), 40u);
}

// ---- Router durability: attach, replay, checkpoint ---------------------

class ShardedWalTest : public WalTest {
 protected:
  static constexpr size_t kDim = 4;

  Dataset BasePoints() const {
    return GeneratePoints(PointDistribution::kUniform, 60, kDim, 21);
  }
  Dataset BaseWeights() const {
    return GenerateWeights(WeightDistribution::kUniform, 80, kDim, 22);
  }

  std::unique_ptr<ShardedGirIndex> BuildRouter(size_t shards,
                                               bool use_workers,
                                               bool background = false) {
    ShardedIndexOptions options;
    options.shards = shards;
    options.use_workers = use_workers;
    options.background_compact = background;
    auto index = ShardedGirIndex::Build(BasePoints(), BaseWeights(), options);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    return std::move(index).value();
  }

  void Attach(ShardedGirIndex& index, uint64_t snapshot_seq = 0) {
    auto wal =
        ShardedWal::Open(WalDir(), static_cast<uint32_t>(index.shard_count()),
                         snapshot_seq, FsyncPolicy::kNever);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(index.AttachWal(std::move(wal).value()).ok());
  }

  /// A deterministic churn script: inserts, deletes, one explicit
  /// compaction. Returns the probe queries used for bit-identity checks.
  Dataset Churn(ShardedGirIndex& index, uint64_t seed, size_t ops = 120) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> value(0.0, 10000.0);
    for (size_t i = 0; i < ops; ++i) {
      const uint32_t dice = static_cast<uint32_t>(rng() % 100);
      std::vector<double> row(kDim);
      for (double& v : row) v = value(rng);
      if (dice < 30) {
        EXPECT_TRUE(index.InsertPoint(ConstRow(row.data(), kDim)).ok());
      } else if (dice < 55 && index.live_point_count() > 20) {
        (void)index.DeletePoint(rng() % index.live_point_count());
      } else if (dice < 80) {
        double sum = 0.0;
        for (double& v : row) sum += v;
        for (double& v : row) v /= sum;
        EXPECT_TRUE(index.InsertWeight(ConstRow(row.data(), kDim)).ok());
      } else if (index.live_weight_count() > 20) {
        (void)index.DeleteWeight(rng() % index.live_weight_count());
      }
      if (i == ops / 2) (void)index.Compact();
    }
    return GeneratePoints(PointDistribution::kUniform, 12, kDim, seed + 99);
  }

  static void ExpectBitIdentical(const ShardedGirIndex& got,
                                 const ShardedGirIndex& want,
                                 const Dataset& probes) {
    ASSERT_EQ(got.sequence(), want.sequence());
    ASSERT_EQ(got.live_point_count(), want.live_point_count());
    ASSERT_EQ(got.live_weight_count(), want.live_weight_count());
    for (size_t q = 0; q < probes.size(); ++q) {
      const ReverseKRanksResult a = got.ReverseKRanks(probes.row(q), 5);
      const ReverseKRanksResult b = want.ReverseKRanks(probes.row(q), 5);
      ASSERT_EQ(a.size(), b.size()) << "probe " << q;
      for (size_t i = 0; i < b.size(); ++i) {
        EXPECT_EQ(a[i].weight_id, b[i].weight_id) << "probe " << q;
        EXPECT_EQ(a[i].rank, b[i].rank) << "probe " << q;
      }
    }
    // Generation counters converge too — replayed compactions (explicit,
    // auto, and background markers) must land on the same counts.
    const auto sa = got.ShardStats();
    const auto sb = want.ShardStats();
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t s = 0; s < sb.size(); ++s) {
      EXPECT_EQ(sa[s].generation, sb[s].generation) << "shard " << s;
      EXPECT_EQ(sa[s].live_weights, sb[s].live_weights) << "shard " << s;
    }
  }
};

TEST_F(ShardedWalTest, AttachValidatesShardCountAndSingleAttachment) {
  auto index = BuildRouter(2, /*use_workers=*/false);
  auto wrong = ShardedWal::Open(Path("wrong"), 3, 0, FsyncPolicy::kNever);
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(index->AttachWal(std::move(wrong).value()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index->AttachWal(nullptr).code(), StatusCode::kInvalidArgument);

  Attach(*index);
  auto second = ShardedWal::Open(Path("second"), 2, 0, FsyncPolicy::kNever);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(index->AttachWal(std::move(second).value()).ok());
}

TEST_F(ShardedWalTest, EveryAdmittedMutationIsLoggedBeforeItIsApplied) {
  auto index = BuildRouter(2, /*use_workers=*/false);
  Attach(*index);
  Churn(*index, 31);
  // Rejected mutations consume no sequence and leave no record, so the
  // log's merged suffix is exactly the admitted history.
  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().max_seq, index->sequence());
  EXPECT_EQ(merged.value().records.size(), index->sequence());
  EXPECT_EQ(index->wal()->stats().records,
            merged.value().files[0].records.size() +
                merged.value().files[1].records.size());
}

TEST_F(ShardedWalTest, ReplayRecoversBitIdenticalState) {
  for (const bool use_workers : {false, true}) {
    SCOPED_TRACE(use_workers ? "workers" : "inline");
    std::filesystem::remove_all(WalDir());
    auto live = BuildRouter(3, use_workers);
    Attach(*live);
    const Dataset probes = Churn(*live, 37 + (use_workers ? 1 : 0));

    auto merged = ReadWalDir(WalDir());
    ASSERT_TRUE(merged.ok());
    auto recovered = BuildRouter(3, use_workers);
    ASSERT_TRUE(recovered->ReplayWal(merged.value().records).ok());
    ExpectBitIdentical(*recovered, *live, probes);
  }
}

TEST_F(ShardedWalTest, ReplaySkipsRecordsTheSnapshotAlreadyContains) {
  auto live = BuildRouter(2, /*use_workers=*/false);
  Attach(*live);
  const Dataset probes = Churn(*live, 41);

  // Save a snapshot mid-history, then replay the FULL log on top of it:
  // records at or below the snapshot's sequence must be skipped, the
  // suffix applied.
  const std::string snap = Path("snapshot.gir");
  ASSERT_TRUE(SaveShardedIndex(snap, *live).ok());
  Churn(*live, 43, 40);

  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok());
  auto recovered = LoadShardedIndex(snap, /*use_workers=*/false);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(recovered.value()->ReplayWal(merged.value().records).ok());
  ExpectBitIdentical(*recovered.value(), *live, probes);
}

TEST_F(ShardedWalTest, ReplaySequenceGapIsCorruption) {
  auto index = BuildRouter(2, /*use_workers=*/false);
  std::vector<WalRecord> records;
  records.push_back(InsertPointRecord(1, {1.0, 2.0, 3.0, 4.0}));
  records.push_back(InsertPointRecord(3, {1.0, 2.0, 3.0, 4.0}));  // gap: 2
  EXPECT_EQ(index->ReplayWal(records).code(), StatusCode::kCorruption);
}

TEST_F(ShardedWalTest, ReplayRejectedOpIsCorruption) {
  auto index = BuildRouter(2, /*use_workers=*/false);
  std::vector<WalRecord> records;
  // A dimension-mismatched insert cannot have been admitted by the
  // pre-crash process; replay must refuse, not skip it.
  records.push_back(InsertPointRecord(1, {1.0}));
  EXPECT_EQ(index->ReplayWal(records).code(), StatusCode::kCorruption);
}

TEST_F(ShardedWalTest, CheckpointRotatesTheLogAndRecoveryUsesTheSnapshot) {
  auto live = BuildRouter(2, /*use_workers=*/true);
  Attach(*live);
  const Dataset probes = Churn(*live, 47);
  const uint64_t pre_checkpoint_seq = live->sequence();

  const std::string snap = Path("snapshot.gir");
  ASSERT_TRUE(
      live->Checkpoint([&] { return SaveShardedIndex(snap, *live); }).ok());
  EXPECT_EQ(live->wal()->stats().rotations, 1u);
  EXPECT_EQ(live->wal()->stats().snapshot_sequence, pre_checkpoint_seq);

  // Post-checkpoint mutations land in the rotated log only.
  Churn(*live, 53, 30);
  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok());
  for (const WalRecord& r : merged.value().records) {
    EXPECT_GT(r.seq, pre_checkpoint_seq);
  }

  // Boot path: snapshot + rotated suffix reproduces the live state.
  auto recovered = LoadShardedIndex(snap, /*use_workers=*/true);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->sequence(), pre_checkpoint_seq);
  ASSERT_TRUE(recovered.value()->ReplayWal(merged.value().records).ok());
  ExpectBitIdentical(*recovered.value(), *live, probes);

  // A failing snapshot save aborts the checkpoint without rotating.
  const Status failed = live->Checkpoint(
      [] { return Status::IOError("injected snapshot failure"); });
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(live->wal()->stats().rotations, 1u);
  // And the router still admits mutations afterwards.
  EXPECT_TRUE(live->Compact().ok());
}

TEST_F(ShardedWalTest, BackgroundCompactionRequiresWorkerLanes) {
  ShardedIndexOptions options;
  options.shards = 2;
  options.use_workers = false;
  options.background_compact = true;
  auto index = ShardedGirIndex::Build(BasePoints(), BaseWeights(), options);
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardedWalTest, BackgroundCompactionMatchesTheSingleIndexOracle) {
  // Heavy delete churn drives every shard across the compaction
  // threshold; the background path (marker + off-lane rebuild + install)
  // must stay query-for-query bit-identical to a single DynamicGirIndex
  // fed the same stream, and its markers must replay to the same state.
  auto live = BuildRouter(2, /*use_workers=*/true, /*background=*/true);
  Attach(*live);

  DynamicIndexOptions single_options;
  auto single =
      DynamicGirIndex::Build(BasePoints(), BaseWeights(), single_options);
  ASSERT_TRUE(single.ok());

  std::mt19937_64 rng(61);
  std::uniform_real_distribution<double> value(0.0, 10000.0);
  const Dataset probes = GeneratePoints(PointDistribution::kUniform, 8, kDim, 62);
  for (size_t i = 0; i < 300; ++i) {
    std::vector<double> row(kDim);
    for (double& v : row) v = value(rng);
    const uint32_t dice = static_cast<uint32_t>(rng() % 100);
    if (dice < 40) {
      ASSERT_TRUE(live->InsertPoint(ConstRow(row.data(), kDim)).ok());
      ASSERT_TRUE(single.value().InsertPoint(ConstRow(row.data(), kDim)).ok());
    } else if (live->live_point_count() > 20) {
      const VectorId id = rng() % live->live_point_count();
      const Status a = live->DeletePoint(id);
      const Status b = single.value().DeletePoint(id);
      ASSERT_EQ(a.ok(), b.ok());
    }
    if (i % 50 == 49) {
      for (size_t q = 0; q < probes.size(); ++q) {
        const ReverseKRanksResult got = live->ReverseKRanks(probes.row(q), 5);
        const ReverseKRanksResult want =
            single.value().ReverseKRanks(probes.row(q), 5);
        ASSERT_EQ(got.size(), want.size()) << "op " << i << " probe " << q;
        for (size_t j = 0; j < want.size(); ++j) {
          ASSERT_EQ(got[j].weight_id, want[j].weight_id)
              << "op " << i << " probe " << q;
          ASSERT_EQ(got[j].rank, want[j].rank)
              << "op " << i << " probe " << q;
        }
      }
    }
  }
  live->WaitBackgroundIdle();

  uint64_t installs = 0;
  for (const auto& s : live->ShardStats()) installs += s.bg_compactions;
  EXPECT_GT(installs, 0u) << "churn never crossed the compaction threshold";

  // The log (with its kCompactShard markers) replays to the live state,
  // generations included.
  auto merged = ReadWalDir(WalDir());
  ASSERT_TRUE(merged.ok());
  auto recovered = BuildRouter(2, /*use_workers=*/true, /*background=*/true);
  ASSERT_TRUE(recovered->ReplayWal(merged.value().records).ok());
  ExpectBitIdentical(*recovered, *live, probes);
}

}  // namespace
}  // namespace gir

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/generators.h"
#include "io/dataset_io.h"
#include "io/packed_io.h"

namespace gir {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, DatasetRoundTrip) {
  Dataset ds = GenerateUniform(500, 7, 1);
  ASSERT_TRUE(SaveDataset(Path("ds.bin"), ds).ok());
  auto loaded = LoadDataset(Path("ds.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().dim(), ds.dim());
  EXPECT_EQ(loaded.value().size(), ds.size());
  EXPECT_EQ(loaded.value().flat(), ds.flat());
}

TEST_F(IoTest, DatasetFileBytesMatchesActualSize) {
  Dataset ds = GenerateUniform(100, 3, 2);
  ASSERT_TRUE(SaveDataset(Path("ds.bin"), ds).ok());
  EXPECT_EQ(std::filesystem::file_size(Path("ds.bin")), DatasetFileBytes(ds));
}

TEST_F(IoTest, LoadMissingFileIsIOError) {
  auto loaded = LoadDataset(Path("nope.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, LoadRejectsBadMagic) {
  std::ofstream out(Path("bad.bin"), std::ios::binary);
  out << "NOTADATASETFILE_PADDING_PADDING";
  out.close();
  auto loaded = LoadDataset(Path("bad.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, LoadRejectsTruncatedPayload) {
  Dataset ds = GenerateUniform(100, 3, 3);
  ASSERT_TRUE(SaveDataset(Path("trunc.bin"), ds).ok());
  std::filesystem::resize_file(Path("trunc.bin"),
                               std::filesystem::file_size(Path("trunc.bin")) -
                                   64);
  auto loaded = LoadDataset(Path("trunc.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, EmptyDatasetRoundTrips) {
  Dataset ds(5);
  ASSERT_TRUE(SaveDataset(Path("empty.bin"), ds).ok());
  auto loaded = LoadDataset(Path("empty.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_EQ(loaded.value().dim(), 5u);
}

TEST_F(IoTest, PackedBlobRoundTrip) {
  PackedBlob blob;
  blob.bits_per_cell = 6;
  blob.dim = 5;
  blob.count = 7;
  blob.payload.assign(blob.BytesPerVector() * blob.count, 0xA5);
  ASSERT_TRUE(SavePackedBlob(Path("p.bin"), blob).ok());
  auto loaded = LoadPackedBlob(Path("p.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().bits_per_cell, 6u);
  EXPECT_EQ(loaded.value().dim, 5u);
  EXPECT_EQ(loaded.value().count, 7u);
  EXPECT_EQ(loaded.value().payload, blob.payload);
}

TEST_F(IoTest, PackedBlobBytesPerVector) {
  PackedBlob blob;
  blob.bits_per_cell = 6;
  blob.dim = 3;  // 18 bits -> 3 bytes (the paper's §3.2 example: 6-bit
                 // string for 3 dims at 2 bits, here 6 bits per cell)
  EXPECT_EQ(blob.BytesPerVector(), 3u);
  blob.bits_per_cell = 2;
  EXPECT_EQ(blob.BytesPerVector(), 1u);
}

TEST_F(IoTest, SavePackedRejectsSizeMismatch) {
  PackedBlob blob;
  blob.bits_per_cell = 4;
  blob.dim = 4;
  blob.count = 2;
  blob.payload.assign(1, 0);  // wrong size
  EXPECT_FALSE(SavePackedBlob(Path("x.bin"), blob).ok());
}

TEST_F(IoTest, LoadPackedRejectsBadParameters) {
  PackedBlob blob;
  blob.bits_per_cell = 6;
  blob.dim = 2;
  blob.count = 1;
  blob.payload.assign(blob.BytesPerVector(), 0);
  ASSERT_TRUE(SavePackedBlob(Path("p2.bin"), blob).ok());
  // Corrupt the bits_per_cell field (offset 8..11) to 0.
  {
    std::fstream f(Path("p2.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const uint32_t zero = 0;
    f.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  }
  auto loaded = LoadPackedBlob(Path("p2.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace gir

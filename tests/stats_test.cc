#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "stats/dice.h"
#include "stats/model.h"
#include "stats/normal.h"

namespace gir {
namespace {

// ---------------------------------------------------------------- Normal

TEST(NormalTest, PdfAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024997895148220435, 1e-10);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalTest, TailComplementsCdf) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.5}) {
    EXPECT_NEAR(NormalTail(x), 1.0 - NormalCdf(x), 1e-12);
  }
}

TEST(NormalTest, PaperWorkedExampleTail) {
  // §5.3: Φ(0.0125) = 0.495 (their Φ is the upper tail).
  EXPECT_NEAR(NormalTail(0.0125), 0.495, 5e-4);
}

TEST(NormalTest, InverseCdfRoundTrip) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(InverseNormalCdf(p)), p, 1e-9) << "p " << p;
  }
}

TEST(NormalTest, InverseTailRoundTrip) {
  for (double p : {0.01, 0.495, 0.25}) {
    EXPECT_NEAR(NormalTail(InverseNormalTail(p)), p, 1e-9);
  }
}

TEST(NormalTest, InverseCdfExtremes) {
  EXPECT_TRUE(std::isinf(InverseNormalCdf(0.0)));
  EXPECT_TRUE(std::isinf(InverseNormalCdf(1.0)));
  EXPECT_LT(InverseNormalCdf(0.0), 0.0);
  EXPECT_GT(InverseNormalCdf(1.0), 0.0);
}

// ---------------------------------------------------------------- Dice

TEST(DiceTest, SingleDieIsUniform) {
  auto pmf = DiceSumPmf(1, 6);
  ASSERT_EQ(pmf.size(), 6u);
  for (double p : pmf) EXPECT_NEAR(p, 1.0 / 6.0, 1e-12);
}

TEST(DiceTest, TwoDiceTriangle) {
  auto pmf = DiceSumPmf(2, 6);
  ASSERT_EQ(pmf.size(), 11u);
  EXPECT_NEAR(pmf[0], 1.0 / 36.0, 1e-12);   // sum 2
  EXPECT_NEAR(pmf[5], 6.0 / 36.0, 1e-12);   // sum 7
  EXPECT_NEAR(pmf[10], 1.0 / 36.0, 1e-12);  // sum 12
}

TEST(DiceTest, PmfSumsToOne) {
  for (auto [d, faces] : {std::pair<size_t, size_t>{3, 4},
                          std::pair<size_t, size_t>{6, 16},
                          std::pair<size_t, size_t>{10, 64}}) {
    auto pmf = DiceSumPmf(d, faces);
    double total = 0.0;
    for (double p : pmf) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << d << "d" << faces;
  }
}

TEST(DiceTest, ClosedFormMatchesConvolution) {
  for (auto [d, faces] : {std::pair<size_t, size_t>{2, 6},
                          std::pair<size_t, size_t>{4, 8},
                          std::pair<size_t, size_t>{6, 16}}) {
    auto pmf = DiceSumPmf(d, faces);
    for (size_t i = 0; i < pmf.size(); i += 3) {
      const long long s = static_cast<long long>(d + i);
      EXPECT_NEAR(DiceSumProbability(s, d, faces), pmf[i], 1e-9)
          << "d=" << d << " faces=" << faces << " s=" << s;
    }
  }
}

TEST(DiceTest, ClosedFormOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(DiceSumProbability(1, 2, 6), 0.0);
  EXPECT_DOUBLE_EQ(DiceSumProbability(13, 2, 6), 0.0);
}

TEST(DiceTest, MeanMatchesFormula) {
  EXPECT_DOUBLE_EQ(DiceSumMean(2, 6), 7.0);
  auto pmf = DiceSumPmf(5, 9);
  double mean = 0.0;
  for (size_t i = 0; i < pmf.size(); ++i) {
    mean += pmf[i] * static_cast<double>(5 + i);
  }
  EXPECT_NEAR(mean, DiceSumMean(5, 9), 1e-9);
}

TEST(DiceTest, ModeProbabilityShrinksWithMorePartitions) {
  // More grid partitions (faces = n^2) -> flatter score distribution ->
  // smaller worst-case unresolved probability. This is Theorem 1's engine.
  const size_t d = 6;
  double previous = 1.0;
  for (size_t n : {2u, 4u, 8u, 16u}) {
    const double mode = DiceSumModeProbability(d, n * n);
    EXPECT_LT(mode, previous);
    previous = mode;
  }
}

TEST(DiceTest, NormalApproximationHoldsForModerateD) {
  // Lemma 1: the dice sum is approximately normal. Compare the mode
  // probability with the normal density at the mean.
  const size_t d = 8, faces = 16;
  const double mode = DiceSumModeProbability(d, faces);
  const double sigma =
      std::sqrt(static_cast<double>(d) *
                (static_cast<double>(faces * faces) - 1.0) / 12.0);
  const double normal_peak = 1.0 / (sigma * std::sqrt(2.0 * M_PI));
  EXPECT_NEAR(mode, normal_peak, 0.15 * normal_peak);
}

// ---------------------------------------------------------------- Model

TEST(ModelTest, WorstCaseFilterRateIncreasesWithN) {
  const size_t d = 20;
  double previous = 0.0;
  for (size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const double f = WorstCaseFilterRate(d, n);
    EXPECT_GT(f, previous);
    previous = f;
  }
  EXPECT_GT(previous, 0.99);
}

TEST(ModelTest, WorstCaseFilterRateDecreasesWithD) {
  const size_t n = 32;
  double previous = 1.0;
  for (size_t d : {5u, 10u, 20u, 40u}) {
    const double f = WorstCaseFilterRate(d, n);
    EXPECT_LT(f, previous);
    previous = f;
  }
}

TEST(ModelTest, PaperWorkedExample) {
  // d = 20, epsilon = 1%: the paper concludes n = 32 (next power of two of
  // ~25) suffices for > 99% filtering.
  auto n = RequiredPartitions(20, 0.01);
  ASSERT_TRUE(n.ok());
  EXPECT_GE(n.value(), 20u);
  EXPECT_LE(n.value(), 32u);
  auto pow2 = RequiredPartitionsPow2(20, 0.01);
  ASSERT_TRUE(pow2.ok());
  EXPECT_EQ(pow2.value(), 32u);
  // And the promised rate holds at that n.
  EXPECT_GT(WorstCaseFilterRate(20, pow2.value()), 0.99);
}

TEST(ModelTest, RequiredPartitionsMeetTarget) {
  for (size_t d : {4u, 6u, 10u, 20u, 50u}) {
    for (double eps : {0.05, 0.01, 0.001}) {
      auto n = RequiredPartitions(d, eps);
      ASSERT_TRUE(n.ok());
      EXPECT_GE(WorstCaseFilterRate(d, n.value()), 1.0 - eps - 1e-9)
          << "d=" << d << " eps=" << eps;
      // Minimality: one partition fewer misses the target (when n > 1).
      if (n.value() > 1) {
        EXPECT_LT(WorstCaseFilterRate(d, n.value() - 1), 1.0 - eps + 1e-9);
      }
    }
  }
}

TEST(ModelTest, RequiredPartitionsRejectsBadInputs) {
  EXPECT_FALSE(RequiredPartitions(0, 0.01).ok());
  EXPECT_FALSE(RequiredPartitions(10, 0.0).ok());
  EXPECT_FALSE(RequiredPartitions(10, 1.0).ok());
  EXPECT_FALSE(RequiredPartitions(10, -0.5).ok());
}

TEST(ModelTest, GridTableBytes) {
  // §5.3 example: n = 32 -> less than ~9KB.
  EXPECT_EQ(GridTableBytes(32), 33u * 33u * 8u);
  EXPECT_LT(GridTableBytes(32), 10000u);
}

TEST(ModelTest, UnresolvedComplementsFilterRate) {
  EXPECT_NEAR(WorstCaseFilterRate(10, 16) + WorstCaseUnresolvedRate(10, 16),
              1.0, 1e-12);
}

}  // namespace
}  // namespace gir

// Multi-threaded readers-plus-one-writer stress test over
// DynamicGirIndex (ISSUE 5 satellite). The index's own contract is
// "queries are const and concurrently safe; mutations are not safe
// against queries" — the test drives it exactly the way the query server
// does: a shared_mutex with query threads on the shared side and one
// mutating thread on the exclusive side, plus a version counter bumped
// per mutation. Every observed answer is then checked bit-identical
// against a serial replay of the mutation log at the observed version.
//
// Under GIR_SANITIZE=thread this doubles as the TSan witness that the
// lock discipline (and the const query paths' internal sharing) is
// race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "data/weights.h"
#include "grid/dynamic_index.h"

namespace gir {
namespace {

struct Mutation {
  bool insert = false;
  std::vector<double> values;  // insert
  VectorId id = 0;             // delete
};

struct Observation {
  size_t query_row;
  uint32_t k;
  uint64_t version;
  bool is_rkr;
  ReverseTopKResult rtk;
  ReverseKRanksResult rkr;
};

class DynamicConcurrencyTest : public ::testing::TestWithParam<ScanMode> {};

TEST_P(DynamicConcurrencyTest, ReadersRaceOneWriterBitIdentically) {
  constexpr size_t kDim = 4;
  constexpr size_t kReaders = 3;
  constexpr int kMutations = 30;
  const Dataset points =
      GeneratePoints(PointDistribution::kUniform, 250, kDim, 31);
  const Dataset weights =
      GenerateWeights(WeightDistribution::kUniform, 60, kDim, 32);

  DynamicIndexOptions options;
  options.gir.scan_mode = GetParam();
  auto built = DynamicGirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DynamicGirIndex index = std::move(built).value();

  std::shared_mutex index_mu;
  std::atomic<uint64_t> version{0};
  std::atomic<bool> stop{false};
  std::vector<Observation> observations[kReaders];

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(500 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        Observation obs;
        obs.query_row = rng() % points.size();
        obs.k = 1 + static_cast<uint32_t>(rng() % 6);
        obs.is_rkr = (r % 2 == 1);
        {
          // The server's discipline: shared lock around the const query,
          // version read under the same lock.
          std::shared_lock<std::shared_mutex> lock(index_mu);
          obs.version = version.load(std::memory_order_relaxed);
          if (obs.is_rkr) {
            obs.rkr = index.ReverseKRanks(points.row(obs.query_row), obs.k);
          } else {
            obs.rtk = index.ReverseTopK(points.row(obs.query_row), obs.k);
          }
        }
        observations[r].push_back(std::move(obs));
        // Back off between queries: glibc's rwlock prefers readers, and
        // three spinning shared holders would starve the writer for
        // seconds at a time (the contention is the point of the test,
        // saturation is not).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  std::vector<Mutation> log;
  {
    std::mt19937_64 rng(99);
    std::uniform_real_distribution<double> value(0.0, 10000.0);
    size_t live = points.size();
    for (int op = 0; op < kMutations; ++op) {
      Mutation m;
      m.insert = live < 120 || (rng() % 2 == 0);
      if (m.insert) {
        for (size_t i = 0; i < kDim; ++i) m.values.push_back(value(rng));
      } else {
        m.id = static_cast<VectorId>(rng() % live);
      }
      {
        std::unique_lock<std::shared_mutex> lock(index_mu);
        const Status s =
            m.insert
                ? index.InsertPoint(ConstRow(m.values.data(), kDim))
                : index.DeletePoint(m.id);
        ASSERT_TRUE(s.ok()) << s.ToString();
        version.fetch_add(1, std::memory_order_relaxed);
      }
      live += m.insert ? 1 : -1;
      log.push_back(std::move(m));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  // Serial replay: rebuild, step through the log version by version, and
  // re-execute every observation at its stamped version.
  auto rebuilt = DynamicGirIndex::Build(points, weights, options);
  ASSERT_TRUE(rebuilt.ok());
  DynamicGirIndex replay = std::move(rebuilt).value();
  size_t checked = 0;
  for (uint64_t v = 0; v <= log.size(); ++v) {
    if (v > 0) {
      const Mutation& m = log[v - 1];
      const Status s =
          m.insert ? replay.InsertPoint(ConstRow(m.values.data(), kDim))
                   : replay.DeletePoint(m.id);
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    for (const auto& per_reader : observations) {
      for (const Observation& obs : per_reader) {
        if (obs.version != v) continue;
        ++checked;
        const ConstRow q = points.row(obs.query_row);
        if (obs.is_rkr) {
          const auto serial = replay.ReverseKRanks(q, obs.k);
          ASSERT_EQ(obs.rkr.size(), serial.size()) << "version " << v;
          for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(obs.rkr[i].weight_id, serial[i].weight_id);
            EXPECT_EQ(obs.rkr[i].rank, serial[i].rank);
          }
        } else {
          EXPECT_EQ(obs.rtk, replay.ReverseTopK(q, obs.k))
              << "version " << v;
        }
      }
    }
  }
  size_t total = 0;
  for (const auto& per_reader : observations) total += per_reader.size();
  EXPECT_EQ(checked, total);
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(BlockedAndTau, DynamicConcurrencyTest,
                         ::testing::Values(ScanMode::kBlocked,
                                           ScanMode::kTauIndex),
                         [](const auto& info) {
                           return info.param == ScanMode::kBlocked
                                      ? "Blocked"
                                      : "Tau";
                         });

}  // namespace
}  // namespace gir

// Tests of the sharded scale-out router (grid/sharded_index.h) and its
// GIRSHD01 persistence (grid/index_io.h). The load-bearing property is
// bit-identity: a ShardedGirIndex fed an operation stream answers every
// query exactly as a single DynamicGirIndex fed the same stream — same
// ids, same ranks, same tie order — for any shard count, in both worker
// and inline execution modes, under concurrent churn, and across a
// save/load cycle. The merge oracle here is the authoritative check;
// bench_shard_scaling re-runs it before measuring.
//
// This suite is deliberately fast-labelled: the TSan CI lane skips slow
// suites, and the concurrent churn test below is exactly what it exists
// to race-check.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "data/weights.h"
#include "grid/dynamic_index.h"
#include "grid/index_io.h"
#include "grid/sharded_index.h"

namespace gir {
namespace {

Dataset MakePoints(size_t n, size_t d, uint64_t seed) {
  return GeneratePoints(PointDistribution::kUniform, n, d, seed);
}

Dataset MakeWeights(size_t m, size_t d, uint64_t seed) {
  return GenerateWeights(WeightDistribution::kUniform, m, d, seed);
}

DynamicGirIndex BuildSingle(const Dataset& points, const Dataset& weights,
                            ScanMode mode = ScanMode::kBlocked) {
  DynamicIndexOptions options;
  options.gir.scan_mode = mode;
  auto index = DynamicGirIndex::Build(points, weights, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

std::unique_ptr<ShardedGirIndex> BuildSharded(
    const Dataset& points, const Dataset& weights, size_t shards,
    bool use_workers, ScanMode mode = ScanMode::kBlocked) {
  ShardedIndexOptions options;
  options.shards = shards;
  options.use_workers = use_workers;
  options.dynamic.gir.scan_mode = mode;
  auto index = ShardedGirIndex::Build(points, weights, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

std::vector<double> RandomPointRow(std::mt19937_64& rng, size_t d) {
  std::uniform_real_distribution<double> value(0.0, 10000.0);
  std::vector<double> row(d);
  for (double& v : row) v = value(rng);
  return row;
}

std::vector<double> RandomWeightRow(std::mt19937_64& rng, size_t d) {
  std::uniform_real_distribution<double> value(0.05, 1.0);
  std::vector<double> row(d);
  double sum = 0.0;
  for (double& v : row) {
    v = value(rng);
    sum += v;
  }
  for (double& v : row) v /= sum;
  return row;
}

void ExpectSameRkr(const ReverseKRanksResult& got,
                   const ReverseKRanksResult& want, const char* where) {
  ASSERT_EQ(got.size(), want.size()) << where;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].weight_id, want[i].weight_id) << where << " #" << i;
    EXPECT_EQ(got[i].rank, want[i].rank) << where << " #" << i;
  }
}

/// The merge oracle: one randomized operation stream applied to a single
/// DynamicGirIndex and to a sharded router, query-for-query bit-identical.
/// Statuses must agree too, so both sides consume the same live-id space
/// and stay in lockstep for the whole stream.
void RunMergeOracle(size_t shards, bool use_workers, size_t num_ops,
                    ScanMode mode, uint64_t seed) {
  const size_t kDim = 4;
  const Dataset points = MakePoints(120, kDim, seed);
  const Dataset weights = MakeWeights(160, kDim, seed + 1);
  DynamicGirIndex single = BuildSingle(points, weights, mode);
  std::unique_ptr<ShardedGirIndex> sharded =
      BuildSharded(points, weights, shards, use_workers, mode);

  std::mt19937_64 rng(seed + 2);
  size_t live_points = points.size();
  size_t live_weights = weights.size();
  size_t queries_checked = 0;
  for (size_t op = 0; op < num_ops; ++op) {
    const uint32_t dice = static_cast<uint32_t>(rng() % 100);
    if (dice < 15) {
      const std::vector<double> row = RandomPointRow(rng, kDim);
      const ConstRow r(row.data(), row.size());
      const Status a = single.InsertPoint(r);
      const Status b = sharded->InsertPoint(r);
      ASSERT_EQ(a.ok(), b.ok()) << a.ToString() << " vs " << b.ToString();
      if (a.ok()) ++live_points;
    } else if (dice < 25 && live_points > 40) {
      const VectorId id = static_cast<VectorId>(rng() % live_points);
      const Status a = single.DeletePoint(id);
      const Status b = sharded->DeletePoint(id);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) --live_points;
    } else if (dice < 55) {
      const std::vector<double> row = RandomWeightRow(rng, kDim);
      const ConstRow r(row.data(), row.size());
      const Status a = single.InsertWeight(r);
      const Status b = sharded->InsertWeight(r);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) ++live_weights;
    } else if (dice < 72 && live_weights > 30) {
      const VectorId id = static_cast<VectorId>(rng() % live_weights);
      const Status a = single.DeleteWeight(id);
      const Status b = sharded->DeleteWeight(id);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) --live_weights;
    } else if (dice < 75) {
      const Status a = single.Compact();
      const Status b = sharded->Compact();
      ASSERT_EQ(a.ok(), b.ok());
    } else if (dice < 88) {
      const std::vector<double> q = RandomPointRow(rng, kDim);
      const size_t k = 1 + rng() % 8;
      const ConstRow row(q.data(), q.size());
      EXPECT_EQ(sharded->ReverseTopK(row, k), single.ReverseTopK(row, k))
          << "op " << op;
      ++queries_checked;
    } else {
      const std::vector<double> q = RandomPointRow(rng, kDim);
      const size_t k = 1 + rng() % 8;
      const ConstRow row(q.data(), q.size());
      ExpectSameRkr(sharded->ReverseKRanks(row, k),
                    single.ReverseKRanks(row, k), "rkr oracle");
      ++queries_checked;
    }
  }
  EXPECT_EQ(single.live_point_count(), sharded->live_point_count());
  EXPECT_EQ(single.live_weight_count(), sharded->live_weight_count());
  EXPECT_GT(queries_checked, num_ops / 8);
}

TEST(ShardedIndexTest, MergeOracleMatchesSingleIndexAcrossShardCounts) {
  for (size_t shards : {1, 2, 4}) {
    SCOPED_TRACE(shards);
    RunMergeOracle(shards, /*use_workers=*/true, /*num_ops=*/1000,
                   ScanMode::kBlocked, /*seed=*/90 + shards);
  }
}

TEST(ShardedIndexTest, MergeOracleHoldsInInlineExecutionMode) {
  RunMergeOracle(/*shards=*/3, /*use_workers=*/false, /*num_ops=*/1000,
                 ScanMode::kBlocked, /*seed=*/201);
}

TEST(ShardedIndexTest, MergeOracleHoldsUnderTauScanMode) {
  RunMergeOracle(/*shards=*/2, /*use_workers=*/true, /*num_ops=*/300,
                 ScanMode::kTauIndex, /*seed=*/301);
}

TEST(ShardedIndexTest, BatchQueriesMergeBitIdentically) {
  const size_t kDim = 4;
  const Dataset points = MakePoints(200, kDim, 41);
  const Dataset weights = MakeWeights(150, kDim, 42);
  DynamicGirIndex single = BuildSingle(points, weights);
  auto sharded = BuildSharded(points, weights, 4, /*use_workers=*/true);

  // Churn both sides a little so the batch runs against deltas and
  // tombstones, not just the base generation.
  std::mt19937_64 rng(43);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> w = RandomWeightRow(rng, kDim);
    ASSERT_TRUE(single.InsertWeight(ConstRow(w.data(), kDim)).ok());
    ASSERT_TRUE(sharded->InsertWeight(ConstRow(w.data(), kDim)).ok());
  }
  for (int i = 0; i < 10; ++i) {
    const VectorId id = static_cast<VectorId>(rng() % 150);
    ASSERT_TRUE(single.DeleteWeight(id).ok());
    ASSERT_TRUE(sharded->DeleteWeight(id).ok());
  }

  Dataset queries(kDim);
  for (size_t i = 0; i < 48; ++i) queries.AppendUnchecked(points.row(i));
  EXPECT_EQ(sharded->ReverseTopKBatch(queries, 6),
            single.ReverseTopKBatch(queries, 6));
  const auto got = sharded->ReverseKRanksBatch(queries, 5);
  const auto want = single.ReverseKRanksBatch(queries, 5);
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < want.size(); ++q) {
    ExpectSameRkr(got[q], want[q], "batch rkr");
  }
}

TEST(ShardedIndexTest, ShardsMayStartEmptyWhenWeightsAreFewerThanShards) {
  const size_t kDim = 3;
  const Dataset points = MakePoints(80, kDim, 51);
  const Dataset weights = MakeWeights(2, kDim, 52);  // shards 2, 3 empty
  DynamicGirIndex single = BuildSingle(points, weights);
  auto sharded = BuildSharded(points, weights, 4, /*use_workers=*/false);

  std::mt19937_64 rng(53);
  const std::vector<double> q = RandomPointRow(rng, kDim);
  const ConstRow row(q.data(), q.size());
  EXPECT_EQ(sharded->ReverseTopK(row, 4), single.ReverseTopK(row, 4));
  ExpectSameRkr(sharded->ReverseKRanks(row, 4), single.ReverseKRanks(row, 4),
                "empty shards");

  // Round-robin inserts fill the empty shards; answers stay identical.
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> w = RandomWeightRow(rng, kDim);
    ASSERT_TRUE(single.InsertWeight(ConstRow(w.data(), kDim)).ok());
    ASSERT_TRUE(sharded->InsertWeight(ConstRow(w.data(), kDim)).ok());
  }
  ExpectSameRkr(sharded->ReverseKRanks(row, 6), single.ReverseKRanks(row, 6),
                "filled shards");
  for (const ShardStatsSnapshot& snap : sharded->ShardStats()) {
    EXPECT_GT(snap.live_weights, 0u);
  }
}

TEST(ShardedIndexTest, InvalidMutationsAreRejectedWithoutConsumingSequence) {
  const size_t kDim = 3;
  const Dataset points = MakePoints(60, kDim, 61);
  const Dataset weights = MakeWeights(40, kDim, 62);
  auto sharded = BuildSharded(points, weights, 2, /*use_workers=*/true);

  const std::vector<double> short_row = {1.0, 2.0};
  EXPECT_FALSE(
      sharded->InsertPoint(ConstRow(short_row.data(), 2)).ok());
  const std::vector<double> negative = {-1.0, 2.0, 3.0};
  EXPECT_FALSE(sharded->InsertPoint(ConstRow(negative.data(), 3)).ok());
  const std::vector<double> not_normalized = {0.5, 0.2, 0.2};
  EXPECT_FALSE(
      sharded->InsertWeight(ConstRow(not_normalized.data(), 3)).ok());
  EXPECT_FALSE(sharded->DeletePoint(1000).ok());
  EXPECT_FALSE(sharded->DeleteWeight(1000).ok());
  EXPECT_EQ(sharded->sequence(), 0u);  // failed ops consume no sequence

  uint64_t seq = 0;
  const std::vector<double> w = {0.5, 0.25, 0.25};
  ASSERT_TRUE(sharded->InsertWeight(ConstRow(w.data(), 3), &seq).ok());
  EXPECT_EQ(seq, 1u);
}

/// Concurrent churn: multiple reader threads race one writer per shard.
/// Every mutation records the sequence number it was admitted at, every
/// query the sequence it executed at; serial replay into a single
/// DynamicGirIndex must reproduce each observation bit-for-bit. Run under
/// TSan in CI, this is also the data-race gate for the router internals.
TEST(ShardedIndexTest, ConcurrentChurnReplaysToBitIdenticalAnswers) {
  const size_t kDim = 3;
  const size_t kShards = 2;
  const Dataset points = MakePoints(80, kDim, 71);
  const Dataset weights = MakeWeights(120, kDim, 72);
  auto sharded = BuildSharded(points, weights, kShards, /*use_workers=*/true);

  struct Mutation {
    uint64_t seq = 0;
    enum { kInsertPoint, kInsertWeight, kDeleteWeight } kind = kInsertPoint;
    std::vector<double> row;
    VectorId id = 0;
  };
  struct Observation {
    uint64_t seq = 0;
    std::vector<double> query;
    size_t k = 0;
    bool is_rkr = false;
    ReverseTopKResult rtk;
    ReverseKRanksResult rkr;
  };

  constexpr size_t kReaders = 3;
  constexpr size_t kWriterOps = 60;
  constexpr size_t kReaderOps = 40;
  std::vector<std::vector<Mutation>> mutation_log(kShards);
  std::vector<std::vector<Observation>> observations(kReaders);
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kShards; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(500 + w);
      for (size_t op = 0; op < kWriterOps; ++op) {
        Mutation m;
        const uint32_t dice = static_cast<uint32_t>(rng() % 10);
        Status s;
        if (dice < 5) {
          m.kind = Mutation::kInsertWeight;
          m.row = RandomWeightRow(rng, kDim);
          s = sharded->InsertWeight(ConstRow(m.row.data(), kDim), &m.seq);
        } else if (dice < 8) {
          m.kind = Mutation::kInsertPoint;
          m.row = RandomPointRow(rng, kDim);
          s = sharded->InsertPoint(ConstRow(m.row.data(), kDim), &m.seq);
        } else {
          // Live id 0 is valid as long as any weight is alive; which
          // weight that is at application time is decided by the
          // admission order the sequence number captures.
          m.kind = Mutation::kDeleteWeight;
          m.id = 0;
          s = sharded->DeleteWeight(m.id, &m.seq);
        }
        if (s.ok()) {
          mutation_log[w].push_back(std::move(m));
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(900 + r);
      for (size_t op = 0; op < kReaderOps; ++op) {
        Observation obs;
        obs.query = RandomPointRow(rng, kDim);
        obs.k = 1 + rng() % 6;
        obs.is_rkr = (rng() % 2) == 0;
        const ConstRow q(obs.query.data(), obs.query.size());
        if (obs.is_rkr) {
          obs.rkr = sharded->ReverseKRanks(q, obs.k, nullptr, &obs.seq);
        } else {
          obs.rtk = sharded->ReverseTopK(q, obs.k, nullptr, &obs.seq);
        }
        observations[r].push_back(std::move(obs));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Serial replay. Admission assigned each successful mutation a unique
  // sequence number; merging the per-writer logs by it reconstructs the
  // exact global operation order.
  std::vector<Mutation> ordered;
  for (auto& log : mutation_log) {
    for (auto& m : log) ordered.push_back(std::move(m));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Mutation& a, const Mutation& b) { return a.seq < b.seq; });
  for (size_t i = 0; i < ordered.size(); ++i) {
    ASSERT_EQ(ordered[i].seq, i + 1) << "sequence numbers must be dense";
  }

  std::vector<Observation> all;
  for (auto& per_thread : observations) {
    for (auto& obs : per_thread) all.push_back(std::move(obs));
  }
  std::sort(all.begin(), all.end(),
            [](const Observation& a, const Observation& b) {
              return a.seq < b.seq;
            });

  DynamicGirIndex replay = BuildSingle(points, weights);
  size_t checked = 0;
  size_t next = 0;
  for (uint64_t version = 0; version <= ordered.size(); ++version) {
    if (version > 0) {
      const Mutation& m = ordered[version - 1];
      switch (m.kind) {
        case Mutation::kInsertPoint:
          ASSERT_TRUE(replay.InsertPoint(ConstRow(m.row.data(), kDim)).ok());
          break;
        case Mutation::kInsertWeight:
          ASSERT_TRUE(replay.InsertWeight(ConstRow(m.row.data(), kDim)).ok());
          break;
        case Mutation::kDeleteWeight:
          ASSERT_TRUE(replay.DeleteWeight(m.id).ok());
          break;
      }
    }
    for (; next < all.size() && all[next].seq == version; ++next) {
      const Observation& obs = all[next];
      const ConstRow q(obs.query.data(), obs.query.size());
      if (obs.is_rkr) {
        ExpectSameRkr(obs.rkr, replay.ReverseKRanks(q, obs.k),
                      "churn replay rkr");
      } else {
        EXPECT_EQ(obs.rtk, replay.ReverseTopK(q, obs.k))
            << "at version " << version;
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, all.size());
  EXPECT_EQ(checked, kReaders * kReaderOps);
}

// ---- GIRSHD01 persistence ---------------------------------------------------

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ShardedIndexIoTest, RoundTripsAndContinuesMutatingBitIdentically) {
  const size_t kDim = 4;
  const Dataset points = MakePoints(100, kDim, 81);
  const Dataset weights = MakeWeights(90, kDim, 82);
  auto original = BuildSharded(points, weights, 3, /*use_workers=*/true);

  // Mutate before saving so the envelope carries deltas, tombstones and a
  // non-trivial round-robin cursor.
  std::mt19937_64 rng(83);
  for (int i = 0; i < 25; ++i) {
    const std::vector<double> w = RandomWeightRow(rng, kDim);
    ASSERT_TRUE(original->InsertWeight(ConstRow(w.data(), kDim)).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(original->DeleteWeight(static_cast<VectorId>(i * 3)).ok());
    ASSERT_TRUE(original->DeletePoint(static_cast<VectorId>(i)).ok());
  }

  const std::string path = TempPath("sharded_roundtrip.bin");
  ASSERT_TRUE(SaveShardedIndex(path, *original).ok());
  for (const bool use_workers : {true, false}) {
    SCOPED_TRACE(use_workers);
    auto loaded_r = LoadShardedIndex(path, use_workers);
    ASSERT_TRUE(loaded_r.ok()) << loaded_r.status().ToString();
    ShardedGirIndex& loaded = *loaded_r.value();
    EXPECT_EQ(loaded.shard_count(), 3u);
    EXPECT_EQ(loaded.live_point_count(), original->live_point_count());
    EXPECT_EQ(loaded.live_weight_count(), original->live_weight_count());
    EXPECT_EQ(loaded.sequence(), original->sequence());
    EXPECT_EQ(loaded.weight_insert_counter(),
              original->weight_insert_counter());
    EXPECT_EQ(loaded.WeightOwners(), original->WeightOwners());

    // Same answers now, and same answers after identical continued
    // mutations — the persisted round-robin cursor keeps later inserts
    // routing to the same shards.
    std::mt19937_64 cont(84);
    for (int i = 0; i < 10; ++i) {
      const std::vector<double> q = RandomPointRow(cont, kDim);
      const ConstRow row(q.data(), q.size());
      EXPECT_EQ(loaded.ReverseTopK(row, 5), original->ReverseTopK(row, 5));
      ExpectSameRkr(loaded.ReverseKRanks(row, 5),
                    original->ReverseKRanks(row, 5), "loaded rkr");
    }
  }

  // Continue mutating one loaded copy in lockstep with the original.
  auto continued_r = LoadShardedIndex(path, /*use_workers=*/false);
  ASSERT_TRUE(continued_r.ok());
  ShardedGirIndex& continued = *continued_r.value();
  std::mt19937_64 cont(85);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> w = RandomWeightRow(cont, kDim);
    ASSERT_TRUE(original->InsertWeight(ConstRow(w.data(), kDim)).ok());
    ASSERT_TRUE(continued.InsertWeight(ConstRow(w.data(), kDim)).ok());
  }
  ASSERT_TRUE(original->DeleteWeight(5).ok());
  ASSERT_TRUE(continued.DeleteWeight(5).ok());
  const std::vector<double> q = RandomPointRow(cont, kDim);
  const ConstRow row(q.data(), q.size());
  ExpectSameRkr(continued.ReverseKRanks(row, 7),
                original->ReverseKRanks(row, 7), "continued rkr");
  EXPECT_EQ(continued.WeightOwners(), original->WeightOwners());
}

TEST(ShardedIndexIoTest, HostileEnvelopesAreRejectedNotTrusted) {
  const size_t kDim = 3;
  const Dataset points = MakePoints(40, kDim, 91);
  const Dataset weights = MakeWeights(30, kDim, 92);
  auto index = BuildSharded(points, weights, 2, /*use_workers=*/false);
  const std::string path = TempPath("sharded_hostile.bin");
  ASSERT_TRUE(SaveShardedIndex(path, *index).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 64u);
  const std::string hostile = TempPath("sharded_hostile_mut.bin");

  const auto expect_rejected = [&](const std::string& bytes,
                                   const char* what) {
    WriteFileBytes(hostile, bytes);
    auto loaded = LoadShardedIndex(hostile, /*use_workers=*/false);
    EXPECT_FALSE(loaded.ok()) << what;
  };

  // Bad magic.
  {
    std::string bytes = good;
    bytes[0] = 'X';
    expect_rejected(bytes, "bad magic");
  }
  // Truncated header.
  expect_rejected(good.substr(0, 20), "truncated header");
  // Shard count zero and beyond the cap.
  {
    std::string bytes = good;
    bytes[8] = 0;
    bytes[9] = 0;
    bytes[10] = 0;
    bytes[11] = 0;
    expect_rejected(bytes, "zero shards");
    bytes[8] = '\xff';
    bytes[9] = '\xff';
    expect_rejected(bytes, "shard count beyond the cap");
  }
  // Header layout: magic[0,8) shards[8,12) dim[12,16) sequence[16,24)
  // insert_counter[24,32) live_points[32,40) num_weights[40,48) owner[48..).
  // Allocation-bomb owner map: live weight count far beyond the file.
  {
    std::string bytes = good;
    for (int i = 0; i < 8; ++i) bytes[40 + i] = '\x7f';
    expect_rejected(bytes, "owner map exceeds the file");
  }
  // Owner id pointing at a shard that does not exist.
  {
    std::string bytes = good;
    bytes[48] = '\x09';  // owner[0]: valid ids here are 0 and 1
    expect_rejected(bytes, "owner out of range");
  }
  // Insert counter below the live count breaks round-robin replay.
  {
    std::string bytes = good;
    for (int i = 0; i < 8; ++i) bytes[24 + i] = 0;
    expect_rejected(bytes, "insert counter below the live count");
  }
  // Corrupted embedded shard blob (flip a byte inside the first blob's
  // GIRDYN01 magic).
  {
    std::string bytes = good;
    const size_t blob_magic = bytes.find("GIRDYN01");
    ASSERT_NE(blob_magic, std::string::npos);
    bytes[blob_magic] = 'Z';
    expect_rejected(bytes, "corrupt shard blob");
  }
  // Trailing garbage after the last blob.
  expect_rejected(good + "JUNK", "trailing bytes");
  // Truncated mid-blob.
  expect_rejected(good.substr(0, good.size() - 9), "truncated blob");

  // The dynamic loader must not accept a sharded envelope, nor the
  // sharded loader a plain GIRDYN01 file.
  EXPECT_FALSE(LoadDynamicIndex(path).ok());
  const std::string dyn_path = TempPath("sharded_hostile_dyn.bin");
  DynamicGirIndex single = BuildSingle(points, weights);
  ASSERT_TRUE(SaveDynamicIndex(dyn_path, single).ok());
  EXPECT_FALSE(LoadShardedIndex(dyn_path).ok());

  // And the untouched file still loads.
  EXPECT_TRUE(LoadShardedIndex(path, /*use_workers=*/false).ok());
}

TEST(ShardedIndexIoTest, FromPartsRejectsInconsistentShards) {
  const size_t kDim = 3;
  const Dataset points = MakePoints(40, kDim, 95);
  const Dataset weights = MakeWeights(20, kDim, 96);

  const auto make_parts = [&](size_t n) {
    std::vector<std::unique_ptr<DynamicGirIndex>> parts;
    std::vector<Dataset> slices(n, Dataset(kDim));
    for (size_t i = 0; i < weights.size(); ++i) {
      slices[i % n].AppendUnchecked(weights.row(i));
    }
    for (size_t s = 0; s < n; ++s) {
      auto built = DynamicGirIndex::Build(points, slices[s],
                                          DynamicIndexOptions{});
      EXPECT_TRUE(built.ok());
      parts.push_back(
          std::make_unique<DynamicGirIndex>(std::move(built).value()));
    }
    return parts;
  };
  const auto owners = [&](size_t n) {
    std::vector<uint32_t> owner(weights.size());
    for (size_t i = 0; i < owner.size(); ++i) {
      owner[i] = static_cast<uint32_t>(i % n);
    }
    return owner;
  };
  ShardedIndexOptions options;
  options.shards = 2;
  options.use_workers = false;

  // Shard count disagreeing with the options.
  EXPECT_FALSE(ShardedGirIndex::FromParts(options, make_parts(3), owners(3),
                                          0, weights.size())
                   .ok());
  // Owner histogram disagreeing with the per-shard live counts.
  {
    std::vector<uint32_t> owner = owners(2);
    owner[0] = 1;
    EXPECT_FALSE(ShardedGirIndex::FromParts(options, make_parts(2),
                                            std::move(owner), 0,
                                            weights.size())
                     .ok());
  }
  // Insert counter below the live weight count.
  EXPECT_FALSE(ShardedGirIndex::FromParts(options, make_parts(2), owners(2),
                                          0, weights.size() - 1)
                   .ok());
  // A consistent reassembly works and answers like a fresh build.
  auto ok = ShardedGirIndex::FromParts(options, make_parts(2), owners(2), 0,
                                       weights.size());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  DynamicGirIndex single = BuildSingle(points, weights);
  std::mt19937_64 rng(97);
  const std::vector<double> q = RandomPointRow(rng, kDim);
  const ConstRow row(q.data(), q.size());
  ExpectSameRkr(ok.value()->ReverseKRanks(row, 5), single.ReverseKRanks(row, 5),
                "from-parts rkr");
}

}  // namespace
}  // namespace gir

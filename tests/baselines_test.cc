#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/bbr.h"
#include "baselines/histogram.h"
#include "baselines/mpa.h"
#include "baselines/rta.h"
#include "baselines/tree_rank.h"
#include "core/naive.h"
#include "core/rank.h"
#include "data/generators.h"
#include "data/weights.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

// ---------------------------------------------------------------- Histogram

TEST(WeightHistogramTest, EveryWeightInExactlyOneBucket) {
  Dataset weights = GenerateWeightsUniform(500, 4, 1);
  auto hist = WeightHistogram::Build(weights, 5).value();
  std::vector<int> seen(weights.size(), 0);
  for (const auto& bucket : hist.buckets()) {
    EXPECT_FALSE(bucket.members.empty());
    for (VectorId id : bucket.members) {
      ASSERT_LT(id, weights.size());
      ++seen[id];
      EXPECT_TRUE(bucket.bounds.Contains(weights.row(id)));
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(WeightHistogramTest, BucketBoundsAreTight) {
  Dataset weights = GenerateWeightsUniform(200, 3, 2);
  auto hist = WeightHistogram::Build(weights, 4).value();
  for (const auto& bucket : hist.buckets()) {
    for (size_t i = 0; i < weights.dim(); ++i) {
      double lo = 1e300, hi = -1e300;
      for (VectorId id : bucket.members) {
        lo = std::min(lo, weights.row(id)[i]);
        hi = std::max(hi, weights.row(id)[i]);
      }
      EXPECT_DOUBLE_EQ(bucket.bounds.lo()[i], lo);
      EXPECT_DOUBLE_EQ(bucket.bounds.hi()[i], hi);
    }
  }
}

TEST(WeightHistogramTest, NonEmptyBucketCountBounded) {
  Dataset weights = GenerateWeightsUniform(300, 8, 3);
  auto hist = WeightHistogram::Build(weights, 5).value();
  EXPECT_LE(hist.size(), 300u);
  // The conceptual count explodes: 5^8 = 390625 (the §5.1 argument).
  EXPECT_EQ(hist.ConceptualBucketCount(8), 390625u);
}

TEST(WeightHistogramTest, ConceptualCountSaturates) {
  Dataset weights = GenerateWeightsUniform(10, 50, 4);
  auto hist = WeightHistogram::Build(weights, 5).value();
  EXPECT_EQ(hist.ConceptualBucketCount(50), SIZE_MAX);
}

TEST(WeightHistogramTest, RejectsBadInputs) {
  Dataset weights = GenerateWeightsUniform(10, 3, 5);
  EXPECT_FALSE(WeightHistogram::Build(weights, 0).ok());
  Dataset empty(3);
  EXPECT_FALSE(WeightHistogram::Build(empty, 5).ok());
}

TEST(WeightHistogramTest, SingleWeightSingleBucket) {
  Dataset weights = GenerateWeightsUniform(1, 4, 6);
  auto hist = WeightHistogram::Build(weights, 5).value();
  EXPECT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.buckets()[0].members.size(), 1u);
}

// ---------------------------------------------------------------- TreeRank

TEST(TreeRankTest, MatchesLinearRank) {
  Workload wl = MakeWorkload(800, 25, 5, 7);
  RTree tree = RTree::BulkLoad(wl.points);
  const int64_t cap = static_cast<int64_t>(wl.points.size()) + 1;
  for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
    ConstRow w = wl.weights.row(wi);
    const Score qs = InnerProduct(w, wl.points.row(17));
    EXPECT_EQ(TreeRank(tree, w, qs, cap),
              RankOfQuery(wl.points, w, wl.points.row(17)));
  }
}

TEST(TreeRankTest, ThresholdEarlyExit) {
  Workload wl = MakeWorkload(500, 5, 4, 8);
  RTree tree = RTree::BulkLoad(wl.points);
  ConstRow w = wl.weights.row(0);
  const Score qs = InnerProduct(w, wl.points.row(0));
  const int64_t exact = RankOfQuery(wl.points, w, wl.points.row(0));
  EXPECT_EQ(TreeRank(tree, w, qs, exact + 1), exact);
  if (exact > 0) {
    EXPECT_EQ(TreeRank(tree, w, qs, exact), kRankOverThreshold);
  }
}

TEST(TreeRankTest, SubtreeCountingPrunes) {
  // Low-dimensional data: most subtrees resolve wholesale.
  Workload wl = MakeWorkload(20000, 1, 2, 9);
  RTree tree = RTree::BulkLoad(wl.points);
  ConstRow w = wl.weights.row(0);
  const Score qs = InnerProduct(w, wl.points.row(100));
  QueryStats stats;
  TreeRank(tree, w, qs, static_cast<int64_t>(wl.points.size()) + 1, &stats);
  EXPECT_LT(stats.points_visited, 20000u / 2);
  EXPECT_GT(stats.nodes_pruned, 0u);
}

TEST(CountBetterForWeightBoxTest, BoundsBracketEveryMemberRank) {
  Workload wl = MakeWorkload(600, 40, 4, 10);
  RTree tree = RTree::BulkLoad(wl.points);
  auto hist = WeightHistogram::Build(wl.weights, 3).value();
  ConstRow q = wl.points.row(11);
  for (const auto& bucket : hist.buckets()) {
    const WeightBoxCounts counts = CountBetterForWeightBox(
        tree, q, bucket.bounds.lo(), bucket.bounds.hi());
    for (VectorId id : bucket.members) {
      const int64_t rank = RankOfQuery(wl.points, wl.weights.row(id), q);
      EXPECT_LE(counts.definitely_better, rank);
      EXPECT_GE(counts.possibly_better, rank);
    }
  }
}

TEST(CountBetterForWeightBoxTest, DegenerateBoxIsExact) {
  // A box collapsed to a single weight: definite == possible == rank.
  Workload wl = MakeWorkload(300, 5, 3, 11);
  RTree tree = RTree::BulkLoad(wl.points);
  ConstRow q = wl.points.row(3);
  for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
    ConstRow w = wl.weights.row(wi);
    const WeightBoxCounts counts = CountBetterForWeightBox(tree, q, w, w);
    const int64_t rank = RankOfQuery(wl.points, w, q);
    EXPECT_EQ(counts.definitely_better, rank);
    // possibly_better may exceed rank only through score ties.
    EXPECT_GE(counts.possibly_better, rank);
    EXPECT_LE(counts.possibly_better, rank + 2);
  }
}

TEST(CountBetterForWeightBoxTest, EarlyStopCapsDefiniteCount) {
  Workload wl = MakeWorkload(5000, 1, 3, 12);
  RTree tree = RTree::BulkLoad(wl.points);
  // Query at the worst corner: nearly everything is definitely better.
  std::vector<double> q(3, 9999.0);
  const WeightBoxCounts counts = CountBetterForWeightBox(
      tree, q, wl.weights.row(0), wl.weights.row(0), /*stop_definite_at=*/10);
  EXPECT_GE(counts.definitely_better, 10);
  EXPECT_LT(counts.definitely_better, 5000);
}

// ---------------------------------------------------------------- BBR

struct BaselineCase {
  size_t n, m, d, k;
  uint64_t seed;
};

class BbrEquivalence : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BbrEquivalence, MatchesNaive) {
  const BaselineCase& c = GetParam();
  Workload wl = MakeWorkload(c.n, c.m, c.d, c.seed);
  BbrOptions options;
  options.max_entries = 16;
  auto bbr = BbrReverseTopK::Build(wl.points, wl.weights, options).value();
  for (size_t qi : {size_t{0}, c.n / 2, c.n - 1}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(bbr.ReverseTopK(q, c.k),
              NaiveReverseTopK(wl.points, wl.weights, q, c.k))
        << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbrEquivalence,
    ::testing::Values(BaselineCase{100, 50, 2, 5, 21},
                      BaselineCase{400, 80, 3, 10, 22},
                      BaselineCase{300, 60, 4, 20, 23},
                      BaselineCase{200, 100, 6, 5, 24},
                      BaselineCase{150, 40, 8, 3, 25},
                      BaselineCase{500, 30, 5, 50, 26}));

TEST(BbrTest, GroupAcceptanceTriggersOnGoodQuery) {
  // The best point of P qualifies everywhere: whole W-subtrees accepted.
  Workload wl = MakeWorkload(2000, 500, 3, 27);
  // Find the point with the lowest coordinate sum (very likely top-ranked).
  size_t best = 0;
  double best_sum = 1e300;
  for (size_t i = 0; i < wl.points.size(); ++i) {
    double s = 0.0;
    for (double v : wl.points.row(i)) s += v;
    if (s < best_sum) {
      best_sum = s;
      best = i;
    }
  }
  auto bbr = BbrReverseTopK::Build(wl.points, wl.weights).value();
  QueryStats stats;
  auto result = bbr.ReverseTopK(wl.points.row(best), 100, &stats);
  EXPECT_EQ(result, NaiveReverseTopK(wl.points, wl.weights,
                                     wl.points.row(best), 100));
  EXPECT_GT(stats.weights_pruned, 0u);
  EXPECT_LT(stats.weights_evaluated, wl.weights.size());
}

TEST(BbrTest, RejectsMismatchedBuild) {
  Dataset points = GenerateUniform(10, 3, 28);
  Dataset weights = GenerateWeightsUniform(5, 4, 29);
  EXPECT_FALSE(BbrReverseTopK::Build(points, weights).ok());
  Dataset empty(3);
  EXPECT_FALSE(BbrReverseTopK::Build(empty, weights).ok());
}

TEST(BbrTest, KZeroGivesEmpty) {
  Workload wl = MakeWorkload(50, 20, 3, 30);
  auto bbr = BbrReverseTopK::Build(wl.points, wl.weights).value();
  EXPECT_TRUE(bbr.ReverseTopK(wl.points.row(0), 0).empty());
}

// ---------------------------------------------------------------- MPA

class MpaEquivalence : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(MpaEquivalence, MatchesNaive) {
  const BaselineCase& c = GetParam();
  Workload wl = MakeWorkload(c.n, c.m, c.d, c.seed);
  MpaOptions options;
  options.max_entries = 16;
  auto mpa = MpaReverseKRanks::Build(wl.points, wl.weights, options).value();
  for (size_t qi : {size_t{0}, c.n / 2, c.n - 1}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(mpa.ReverseKRanks(q, c.k),
              NaiveReverseKRanks(wl.points, wl.weights, q, c.k))
        << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpaEquivalence,
    ::testing::Values(BaselineCase{100, 50, 2, 5, 41},
                      BaselineCase{400, 80, 3, 10, 42},
                      BaselineCase{300, 60, 4, 20, 43},
                      BaselineCase{200, 100, 6, 5, 44},
                      BaselineCase{150, 40, 8, 3, 45},
                      BaselineCase{500, 30, 5, 25, 46}));

TEST(MpaTest, BucketPruningTriggers) {
  Workload wl = MakeWorkload(3000, 800, 4, 47);
  auto mpa = MpaReverseKRanks::Build(wl.points, wl.weights).value();
  QueryStats stats;
  auto result = mpa.ReverseKRanks(wl.points.row(7), 5, &stats);
  EXPECT_EQ(result, NaiveReverseKRanks(wl.points, wl.weights,
                                       wl.points.row(7), 5));
  EXPECT_GT(stats.weights_pruned, 0u);
}

TEST(MpaTest, KLargerThanWeights) {
  Workload wl = MakeWorkload(100, 12, 3, 48);
  auto mpa = MpaReverseKRanks::Build(wl.points, wl.weights).value();
  auto result = mpa.ReverseKRanks(wl.points.row(0), 50);
  EXPECT_EQ(result.size(), 12u);
  EXPECT_EQ(result,
            NaiveReverseKRanks(wl.points, wl.weights, wl.points.row(0), 50));
}

TEST(MpaTest, KZeroGivesEmpty) {
  Workload wl = MakeWorkload(50, 20, 3, 49);
  auto mpa = MpaReverseKRanks::Build(wl.points, wl.weights).value();
  EXPECT_TRUE(mpa.ReverseKRanks(wl.points.row(0), 0).empty());
}

TEST(MpaTest, HistogramResolutionDoesNotAffectResults) {
  Workload wl = MakeWorkload(300, 100, 5, 50);
  for (size_t c : {1u, 2u, 5u, 9u}) {
    MpaOptions options;
    options.intervals_per_dim = c;
    auto mpa = MpaReverseKRanks::Build(wl.points, wl.weights, options).value();
    EXPECT_EQ(mpa.ReverseKRanks(wl.points.row(33), 10),
              NaiveReverseKRanks(wl.points, wl.weights, wl.points.row(33), 10))
        << "c=" << c;
  }
}


// ---------------------------------------------------------------- RTA

class RtaEquivalence : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(RtaEquivalence, MatchesNaive) {
  const BaselineCase& c = GetParam();
  Workload wl = MakeWorkload(c.n, c.m, c.d, c.seed);
  auto rta = RtaReverseTopK::Build(wl.points, wl.weights).value();
  for (size_t qi : {size_t{0}, c.n / 2, c.n - 1}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(rta.ReverseTopK(q, c.k),
              NaiveReverseTopK(wl.points, wl.weights, q, c.k))
        << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtaEquivalence,
    ::testing::Values(BaselineCase{100, 50, 2, 5, 61},
                      BaselineCase{400, 80, 3, 10, 62},
                      BaselineCase{300, 60, 6, 20, 63},
                      BaselineCase{150, 40, 8, 3, 64},
                      BaselineCase{500, 30, 5, 50, 65}));

TEST(RtaTest, BufferPruningSavesFullScans) {
  // A poorly-ranked query: consecutive similar weights reject it from the
  // buffer alone, so far fewer than |W| full top-k evaluations happen.
  Workload wl = MakeWorkload(3000, 500, 4, 66);
  auto rta = RtaReverseTopK::Build(wl.points, wl.weights).value();
  // Worst point under an arbitrary weight is a safely unpopular query.
  size_t worst = 0;
  double worst_score = -1.0;
  for (size_t i = 0; i < wl.points.size(); ++i) {
    const double s = InnerProduct(wl.weights.row(0), wl.points.row(i));
    if (s > worst_score) {
      worst_score = s;
      worst = i;
    }
  }
  QueryStats stats;
  auto result = rta.ReverseTopK(wl.points.row(worst), 10, &stats);
  EXPECT_EQ(result, NaiveReverseTopK(wl.points, wl.weights,
                                     wl.points.row(worst), 10));
  EXPECT_GT(stats.weights_pruned, wl.weights.size() / 2);
}

TEST(RtaTest, OrderCoversEveryWeightOnce) {
  Workload wl = MakeWorkload(50, 120, 5, 67);
  auto rta = RtaReverseTopK::Build(wl.points, wl.weights).value();
  std::vector<int> seen(wl.weights.size(), 0);
  for (VectorId id : rta.order()) ++seen[id];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(RtaTest, KZeroAndBuildValidation) {
  Workload wl = MakeWorkload(30, 10, 3, 68);
  auto rta = RtaReverseTopK::Build(wl.points, wl.weights).value();
  EXPECT_TRUE(rta.ReverseTopK(wl.points.row(0), 0).empty());
  Dataset empty(3);
  EXPECT_FALSE(RtaReverseTopK::Build(empty, wl.weights).ok());
  Dataset mismatched = GenerateWeightsUniform(5, 4, 69);
  EXPECT_FALSE(RtaReverseTopK::Build(wl.points, mismatched).ok());
}

}  // namespace
}  // namespace gir

// Bit-identity property tests for the register-tiled scoring kernel
// family (core/simd.h: ScoreTileColumns, MinMaxDoubles, BinDoubles) and
// the layers built on it: every tiled result must equal the scalar
// reference double-for-double — not approximately — across tile-remainder
// shapes, dimensions and tie-heavy data, because the τ-index's threshold
// comparisons and the engines' equality contracts rest on exact rounding.
// Also covers τ builds (tiled + histogram-guided selection prune vs a
// scalar sort oracle, single- vs multi-threaded) and the batched query
// entry points against per-query dispatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/gir_queries.h"
#include "grid/parallel_gir.h"
#include "grid/tau_index.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeTieHeavy;

// Scalar reference for one tiled output: mul-then-add in ascending
// dimension order, the exact loop InnerProduct runs. (The default build
// has no FMA contraction outside core/simd.cc, so this compiles to plain
// mulsd/addsd — the reference rounding.)
double ScalarScore(const double* coeffs, const double* cols,
                   size_t col_stride, size_t j, size_t d) {
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) acc += coeffs[i] * cols[i * col_stride + j];
  return acc;
}

// Column-major SoA matrix of `count` random vectors (dimension i at
// cols[i * stride + j]), with stride > count to catch kernels that assume
// the columns are packed.
struct ColMatrix {
  size_t count;
  size_t stride;
  std::vector<double> data;
};

ColMatrix MakeColumns(const Dataset& rows) {
  ColMatrix m;
  m.count = rows.size();
  m.stride = rows.size() + 3;
  m.data.assign(rows.dim() * m.stride, -1e300);  // poison the padding
  for (size_t j = 0; j < rows.size(); ++j) {
    for (size_t i = 0; i < rows.dim(); ++i) {
      m.data[i * m.stride + j] = rows.row(j)[i];
    }
  }
  return m;
}

TEST(ScoreTileColumnsTest, BitIdenticalToScalarAcrossShapes) {
  // Counts straddle every tile boundary (portable 16-column tiles, AVX2
  // 8, AVX-512 16) and the scalar remainder; row counts straddle the
  // 4-row tile height.
  const size_t counts[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 257};
  const size_t row_counts[] = {1, 2, 3, 4, 5, 7, 8, 9, 17};
  for (size_t d : {size_t{2}, size_t{3}, size_t{8}, size_t{16}, size_t{50}}) {
    const Dataset vecs = GenerateUniform(257, d, 900 + d);
    const Dataset coeffs = GenerateWeightsUniform(17, d, 901 + d);
    const ColMatrix cols = MakeColumns(vecs);
    std::vector<const double*> coeff_rows;
    for (size_t r = 0; r < coeffs.size(); ++r) {
      coeff_rows.push_back(coeffs.row(r).data());
    }
    for (size_t count : counts) {
      for (size_t num_rows : row_counts) {
        const size_t out_stride = count + 5;
        std::vector<double> out(num_rows * out_stride, -1e300);
        simd::ScoreTileColumns(cols.data.data(), cols.stride, count,
                               coeff_rows.data(), num_rows, d, out.data(),
                               out_stride);
        for (size_t r = 0; r < num_rows; ++r) {
          for (size_t j = 0; j < count; ++j) {
            const double expect = ScalarScore(coeff_rows[r], cols.data.data(),
                                              cols.stride, j, d);
            ASSERT_EQ(out[r * out_stride + j], expect)
                << "d=" << d << " count=" << count << " rows=" << num_rows
                << " r=" << r << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(ScoreTileColumnsTest, BitIdenticalOnTieHeavyData) {
  // Lattice-snapped duplicated vectors: scores collide constantly, so any
  // rounding drift between tile and scalar shows up as a changed
  // comparison somewhere downstream. The kernel must still match exactly.
  const size_t d = 8;
  const Dataset vecs = MakeTieHeavy(128, d, 77);
  const Dataset coeffs = GenerateWeightsUniform(9, d, 78);
  const ColMatrix cols = MakeColumns(vecs);
  std::vector<const double*> coeff_rows;
  for (size_t r = 0; r < coeffs.size(); ++r) {
    coeff_rows.push_back(coeffs.row(r).data());
  }
  std::vector<double> out(coeffs.size() * vecs.size());
  simd::ScoreTileColumns(cols.data.data(), cols.stride, vecs.size(),
                         coeff_rows.data(), coeffs.size(), d, out.data(),
                         vecs.size());
  for (size_t r = 0; r < coeffs.size(); ++r) {
    for (size_t j = 0; j < vecs.size(); ++j) {
      ASSERT_EQ(out[r * vecs.size() + j],
                ScalarScore(coeff_rows[r], cols.data.data(), cols.stride, j, d))
          << "r=" << r << " j=" << j;
      // And the tiled score equals the row-major InnerProduct itself.
      ASSERT_EQ(out[r * vecs.size() + j],
                InnerProduct(coeffs.row(r), vecs.row(j)));
    }
  }
}

TEST(MinMaxDoublesTest, MatchesScalarAcrossLaneRemainders) {
  for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8},
                       size_t{9}, size_t{15}, size_t{16}, size_t{17},
                       size_t{31}, size_t{32}, size_t{33}, size_t{255},
                       size_t{256}, size_t{1000}}) {
    Dataset vals = GenerateUniform(count, 1, 500 + count);
    std::vector<double> v = vals.flat();
    // Plant duplicated extremes so ties at the min/max are exercised.
    if (count >= 4) {
      v[count / 2] = v[0];
      v[count - 1] = v[count / 3];
    }
    double expect_min = v[0], expect_max = v[0];
    for (double x : v) {
      expect_min = std::min(expect_min, x);
      expect_max = std::max(expect_max, x);
    }
    double got_min = 0.0, got_max = 0.0;
    simd::MinMaxDoubles(v.data(), count, &got_min, &got_max);
    EXPECT_EQ(got_min, expect_min) << "count=" << count;
    EXPECT_EQ(got_max, expect_max) << "count=" << count;
  }
}

// The scalar binning expression of TauIndex (tau_index.cc BinOf),
// replicated verbatim as the oracle.
uint32_t BinOfReference(double s, double lo, double inv, uint32_t bins) {
  const double t = (s - lo) * inv;
  if (!(t > 0.0)) return 0;
  const uint64_t b = static_cast<uint64_t>(t);
  return b >= bins ? bins - 1 : static_cast<uint32_t>(b);
}

TEST(BinDoublesTest, MatchesScalarBinOfIncludingClampCases) {
  for (uint32_t bins : {uint32_t{2}, uint32_t{7}, uint32_t{64},
                        uint32_t{1} << 20}) {
    for (size_t count : {size_t{1}, size_t{5}, size_t{8}, size_t{9},
                         size_t{16}, size_t{17}, size_t{257}}) {
      const double lo = 100.0;
      const double hi = 900.0;
      const double inv = bins / (hi - lo);
      Dataset raw = GenerateUniform(count, 1, 600 + count + bins);
      std::vector<double> scores = raw.flat();
      // Map into [lo - margin, hi + margin] so below-lo (bin 0) and
      // above-hi (clamp to bins - 1) inputs both occur, then pin the
      // edge cases explicitly.
      for (double& s : scores) s = lo - 50.0 + s / 10.0;
      scores[0] = lo;                    // t == 0 -> bin 0
      if (count > 1) scores[1] = hi;     // t == bins -> clamp
      if (count > 2) scores[2] = lo - 1; // t < 0 -> bin 0
      if (count > 3) scores[3] = hi + 1e6;  // far overshoot -> clamp
      std::vector<uint32_t> out(count, 0xdeadbeef);
      simd::BinDoubles(scores.data(), count, lo, inv, bins, out.data());
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], BinOfReference(scores[j], lo, inv, bins))
            << "bins=" << bins << " count=" << count << " j=" << j;
      }
      // Degenerate range (all scores equal): inv == 0, everything bins 0.
      std::vector<double> flat_scores(count, lo);
      simd::BinDoubles(flat_scores.data(), count, lo, 0.0, bins, out.data());
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], 0u) << "bins=" << bins << " j=" << j;
      }
    }
  }
}

// ---------------------------------------------------------------- τ build

// The tiled build (ScoreTileColumns over 8-weight groups + SIMD binning +
// histogram-guided selection prune) must produce exactly the thresholds
// and histograms of the definition: per weight, sort all n scalar scores
// and take the first k_cap; bin every score with BinOfReference and
// prefix-sum. Remainder shapes (n, m not multiples of any tile or group
// width) and tie-heavy scores are the adversarial cases for the prune.
void ExpectBuildMatchesScalarOracle(const Dataset& points,
                                    const Dataset& weights,
                                    const TauIndexOptions& options) {
  const auto tau = TauIndex::Build(points, weights, options).value();
  const size_t n = points.size();
  const size_t m = weights.size();
  const size_t bins = tau.bins();
  for (size_t w = 0; w < m; ++w) {
    std::vector<double> scores(n);
    for (size_t j = 0; j < n; ++j) {
      scores[j] = InnerProduct(weights.row(w), points.row(j));
    }
    double mn = scores[0], mx = scores[0];
    for (double s : scores) {
      mn = std::min(mn, s);
      mx = std::max(mx, s);
    }
    ASSERT_EQ(tau.score_max()[w], mx) << "w=" << w;
    const double inv = mx > mn ? bins / (mx - mn) : 0.0;
    std::vector<uint32_t> hist(bins, 0);
    for (double s : scores) ++hist[BinOfReference(s, mn, inv, bins)];
    uint32_t running = 0;
    for (size_t b = 0; b < bins; ++b) {
      running += hist[b];
      ASSERT_EQ(tau.hist_prefix()[w * bins + b], running)
          << "w=" << w << " b=" << b;
    }
    std::sort(scores.begin(), scores.end());
    for (size_t k = 1; k <= tau.k_cap(); ++k) {
      ASSERT_EQ(tau.Threshold(w, k), scores[k - 1])
          << "w=" << w << " k=" << k;
    }
  }
}

TEST(TauBuildTest, TiledBuildMatchesScalarSortOracle) {
  TauIndexOptions options;
  options.k_max = 13;
  options.bins = 19;
  options.threads = 1;
  for (size_t d : {size_t{3}, size_t{8}}) {
    // n=257, m=37: remainders for the 4096-score chunk, the 8-weight
    // build group, and every SIMD lane width.
    ExpectBuildMatchesScalarOracle(GenerateUniform(257, d, 30 + d),
                                   GenerateWeightsUniform(37, d, 31 + d),
                                   options);
  }
}

TEST(TauBuildTest, TiledBuildMatchesOracleOnTieHeavyScores) {
  TauIndexOptions options;
  options.k_max = 20;
  options.bins = 8;
  options.threads = 1;
  // Lattice-snapped duplicated points: masses of exactly-equal scores
  // sit on bin edges and straddle the k_cap cut — the selection prune
  // must still reproduce the full sort.
  ExpectBuildMatchesScalarOracle(MakeTieHeavy(200, 4, 41),
                                 GenerateWeightsUniform(25, 4, 42), options);
}

TEST(TauBuildTest, MultiThreadedBuildIsIdenticalToSingleThreaded) {
  const Dataset points = GenerateUniform(301, 8, 55);
  const Dataset weights = GenerateWeightsUniform(43, 8, 56);
  TauIndexOptions options;
  options.k_max = 10;
  options.bins = 16;
  options.threads = 1;
  const auto one = TauIndex::Build(points, weights, options).value();
  options.threads = 3;
  const auto three = TauIndex::Build(points, weights, options).value();
  EXPECT_EQ(one.tau(), three.tau());
  EXPECT_EQ(one.score_max(), three.score_max());
  EXPECT_EQ(one.hist_prefix(), three.hist_prefix());
}

// ------------------------------------------------------- batched queries

class BatchEquivalence : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    const bool tie_heavy = GetParam();
    const size_t n = 384, m = 60, d = 8;
    points_ = tie_heavy ? MakeTieHeavy(n, d, 21) : GenerateUniform(n, d, 21);
    weights_ = GenerateWeightsUniform(m, d, 22);
    queries_ = Dataset(d);
    for (size_t qi = 0; qi < 9; ++qi) {  // odd count: query-tile remainder
      queries_.AppendUnchecked(points_.row(qi * 41 % n));
    }

    GirOptions options;
    options.scan_mode = ScanMode::kBlocked;
    blocked_.emplace(GirIndex::Build(points_, weights_, options).value());
    tau_.emplace(GirIndex::Build(points_, weights_, options).value());
    tau_->AttachTauIndex(std::make_shared<const TauIndex>(
        TauIndex::Build(points_, weights_).value()));
    tau_->set_scan_mode(ScanMode::kTauIndex);
  }

  void ExpectBatchMatchesPerQuery(const GirIndex& index, size_t k) {
    const auto rtk = index.ReverseTopKBatch(queries_, k);
    const auto rkr = index.ReverseKRanksBatch(queries_, k);
    ASSERT_EQ(rtk.size(), queries_.size());
    ASSERT_EQ(rkr.size(), queries_.size());
    ThreadPool pool(3);
    const auto rtk_par = ParallelReverseTopKBatch(index, queries_, k, pool);
    const auto rkr_par = ParallelReverseKRanksBatch(index, queries_, k, pool);
    ASSERT_EQ(rtk_par.size(), queries_.size());
    ASSERT_EQ(rkr_par.size(), queries_.size());
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      const auto expect_rtk = index.ReverseTopK(queries_.row(qi), k);
      EXPECT_EQ(rtk[qi], expect_rtk) << "q=" << qi << " k=" << k;
      EXPECT_EQ(rtk_par[qi], expect_rtk) << "q=" << qi << " k=" << k;
      const auto expect_rkr = index.ReverseKRanks(queries_.row(qi), k);
      ASSERT_EQ(rkr[qi].size(), expect_rkr.size()) << "q=" << qi;
      ASSERT_EQ(rkr_par[qi].size(), expect_rkr.size()) << "q=" << qi;
      for (size_t i = 0; i < expect_rkr.size(); ++i) {
        EXPECT_EQ(rkr[qi][i].weight_id, expect_rkr[i].weight_id);
        EXPECT_EQ(rkr[qi][i].rank, expect_rkr[i].rank);
        EXPECT_EQ(rkr_par[qi][i].weight_id, expect_rkr[i].weight_id);
        EXPECT_EQ(rkr_par[qi][i].rank, expect_rkr[i].rank);
      }
    }
  }

  Dataset points_{1};
  Dataset weights_{1};
  Dataset queries_{1};
  std::optional<GirIndex> blocked_;
  std::optional<GirIndex> tau_;
};

TEST_P(BatchEquivalence, BlockedBatchMatchesPerQueryDispatch) {
  for (size_t k : {size_t{1}, size_t{5}, size_t{25}}) {
    ExpectBatchMatchesPerQuery(*blocked_, k);
  }
}

TEST_P(BatchEquivalence, TauBatchMatchesPerQueryDispatch) {
  // k=5 stays inside the τ vector's reach; k=100 exceeds k_cap, forcing
  // the batch path through the blocked fallback while τ still handles
  // the histogram bracketing.
  for (size_t k : {size_t{5}, size_t{100}}) {
    ExpectBatchMatchesPerQuery(*tau_, k);
  }
}

INSTANTIATE_TEST_SUITE_P(SmoothAndTies, BatchEquivalence, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("Ties")
                                             : std::string("Smooth");
                         });

}  // namespace
}  // namespace gir

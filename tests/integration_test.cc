#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/bbr.h"
#include "baselines/mpa.h"
#include "bench_util/table.h"
#include "bench_util/workloads.h"
#include "core/naive.h"
#include "core/simple_scan.h"
#include "data/generators.h"
#include "data/real_like.h"
#include "data/weights.h"
#include "grid/adaptive_grid.h"
#include "grid/gir_queries.h"
#include "grid/sparse_scan.h"

namespace gir {
namespace {

/// Full-stack agreement: every RTK implementation (naive, SIM, GIR,
/// adaptive GIR, sparse GIR, BBR) and every RKR implementation (naive,
/// SIM, GIR, adaptive, sparse, MPA) must return identical results on the
/// same workload. This is the repository's strongest single invariant.
struct StackCase {
  PointDistribution p_dist;
  WeightDistribution w_dist;
  size_t d;
  uint64_t seed;
};

std::string StackCaseName(const ::testing::TestParamInfo<StackCase>& info) {
  return std::string(PointDistributionName(info.param.p_dist)) +
         WeightDistributionName(info.param.w_dist) + "d" +
         std::to_string(info.param.d) + "s" + std::to_string(info.param.seed);
}

class FullStackAgreement : public ::testing::TestWithParam<StackCase> {};

TEST_P(FullStackAgreement, AllAlgorithmsAgree) {
  const StackCase& c = GetParam();
  const size_t n = 600, m = 120, k = 15;
  Dataset points = GeneratePoints(c.p_dist, n, c.d, c.seed);
  Dataset weights = GenerateWeights(c.w_dist, m, c.d, c.seed + 1);

  SimpleScan sim(points, weights);
  auto gir = GirIndex::Build(points, weights).value();
  auto adaptive = BuildAdaptiveGir(points, weights).value();
  auto sparse = SparseGir::Build(points, weights).value();
  BbrOptions bbr_options;
  bbr_options.max_entries = 25;
  auto bbr = BbrReverseTopK::Build(points, weights, bbr_options).value();
  auto mpa = MpaReverseKRanks::Build(points, weights).value();

  for (size_t qi : {size_t{1}, size_t{n / 2}}) {
    ConstRow q = points.row(qi);
    const auto expected_rtk = NaiveReverseTopK(points, weights, q, k);
    EXPECT_EQ(sim.ReverseTopK(q, k), expected_rtk);
    EXPECT_EQ(gir.ReverseTopK(q, k), expected_rtk);
    EXPECT_EQ(adaptive.ReverseTopK(q, k), expected_rtk);
    EXPECT_EQ(sparse.ReverseTopK(q, k), expected_rtk);
    EXPECT_EQ(bbr.ReverseTopK(q, k), expected_rtk);

    const auto expected_rkr = NaiveReverseKRanks(points, weights, q, k);
    EXPECT_EQ(sim.ReverseKRanks(q, k), expected_rkr);
    EXPECT_EQ(gir.ReverseKRanks(q, k), expected_rkr);
    EXPECT_EQ(adaptive.ReverseKRanks(q, k), expected_rkr);
    EXPECT_EQ(sparse.ReverseKRanks(q, k), expected_rkr);
    EXPECT_EQ(mpa.ReverseKRanks(q, k), expected_rkr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullStackAgreement,
    ::testing::Values(
        StackCase{PointDistribution::kUniform, WeightDistribution::kUniform,
                  2, 100},
        StackCase{PointDistribution::kUniform, WeightDistribution::kUniform,
                  6, 101},
        StackCase{PointDistribution::kClustered, WeightDistribution::kUniform,
                  4, 102},
        StackCase{PointDistribution::kAnticorrelated,
                  WeightDistribution::kUniform, 5, 103},
        StackCase{PointDistribution::kUniform, WeightDistribution::kClustered,
                  6, 104},
        StackCase{PointDistribution::kClustered,
                  WeightDistribution::kClustered, 3, 105},
        StackCase{PointDistribution::kNormal, WeightDistribution::kNormal, 6,
                  106},
        StackCase{PointDistribution::kExponential,
                  WeightDistribution::kExponential, 4, 107},
        StackCase{PointDistribution::kUniform, WeightDistribution::kSparse,
                  8, 108},
        StackCase{PointDistribution::kUniform, WeightDistribution::kUniform,
                  12, 109}),
    StackCaseName);

TEST(RealLikeIntegration, DianpingWorkloadAgreesAcrossAlgorithms) {
  Dataset restaurants = MakeDianpingRestaurantsLike(800, 201);
  Dataset users = MakeDianpingUsersLike(150, 202);
  SimpleScan sim(restaurants, users);
  auto gir = GirIndex::Build(restaurants, users).value();
  ConstRow q = restaurants.row(17);
  EXPECT_EQ(gir.ReverseTopK(q, 10), sim.ReverseTopK(q, 10));
  EXPECT_EQ(gir.ReverseKRanks(q, 10), sim.ReverseKRanks(q, 10));
}

TEST(RealLikeIntegration, HouseWorkloadAgrees) {
  Dataset house = MakeHouseLike(700, 203);
  Dataset users = GenerateWeightsUniform(120, kHouseDim, 204);
  SimpleScan sim(house, users);
  auto gir = GirIndex::Build(house, users).value();
  auto mpa = MpaReverseKRanks::Build(house, users).value();
  ConstRow q = house.row(3);
  EXPECT_EQ(gir.ReverseKRanks(q, 8), sim.ReverseKRanks(q, 8));
  EXPECT_EQ(mpa.ReverseKRanks(q, 8), sim.ReverseKRanks(q, 8));
}

TEST(RealLikeIntegration, ColorWorkloadAgrees) {
  Dataset color = MakeColorLike(700, 205);
  Dataset users = GenerateWeightsUniform(120, kColorDim, 206);
  SimpleScan sim(color, users);
  auto gir = GirIndex::Build(color, users).value();
  BbrOptions options;
  options.max_entries = 20;
  auto bbr = BbrReverseTopK::Build(color, users, options).value();
  ConstRow q = color.row(99);
  EXPECT_EQ(gir.ReverseTopK(q, 8), sim.ReverseTopK(q, 8));
  EXPECT_EQ(bbr.ReverseTopK(q, 8), sim.ReverseTopK(q, 8));
}

// ---------------------------------------------------------------- bench_util

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"d", "time"});
  table.AddRow({"2", "1.5"});
  table.AddRow({"20", "13.25"});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("| d  | time  |"), std::string::npos);
  EXPECT_NE(text.find("| 20 | 13.25 |"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.ToCsv(), "a,b,c\n1,,\n");
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
}

TEST(FormatTest, Counts) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(WorkloadsTest, ScaledCardinality) {
  EXPECT_EQ(ScaledCardinality(100000, BenchScale::kFull), 100000u);
  EXPECT_EQ(ScaledCardinality(100000, BenchScale::kQuick), 10000u);
  EXPECT_EQ(ScaledCardinality(100000, BenchScale::kSmoke), 1000u);
  EXPECT_EQ(ScaledCardinality(5000, BenchScale::kSmoke), 1000u);
}

TEST(WorkloadsTest, ScaledRepetitions) {
  EXPECT_EQ(ScaledRepetitions(1000, BenchScale::kFull), 1000u);
  EXPECT_EQ(ScaledRepetitions(1000, BenchScale::kQuick), 100u);
  EXPECT_EQ(ScaledRepetitions(1000, BenchScale::kSmoke), 2u);
  EXPECT_EQ(ScaledRepetitions(10, BenchScale::kQuick), 3u);
}

TEST(WorkloadsTest, PickQueryIndicesDeterministic) {
  auto a = PickQueryIndices(1000, 10, 5);
  auto b = PickQueryIndices(1000, 10, 5);
  EXPECT_EQ(a, b);
  for (size_t idx : a) EXPECT_LT(idx, 1000u);
}

TEST(WorkloadsTest, RunTimedQueriesAggregates) {
  auto queries = PickQueryIndices(100, 4, 6);
  TimedRun run = RunTimedQueries(queries, [](size_t, QueryStats* stats) {
    stats->inner_products += 10;
  });
  EXPECT_EQ(run.queries, 4u);
  EXPECT_EQ(run.stats.inner_products, 40u);
  EXPECT_GE(run.total_ms, 0.0);
}

TEST(WorkloadsTest, BenchScaleNames) {
  EXPECT_STREQ(BenchScaleName(BenchScale::kSmoke), "smoke");
  EXPECT_STREQ(BenchScaleName(BenchScale::kQuick), "quick");
  EXPECT_STREQ(BenchScaleName(BenchScale::kFull), "full");
}

}  // namespace
}  // namespace gir

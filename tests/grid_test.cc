#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "data/generators.h"
#include "data/rng.h"
#include "data/weights.h"
#include "grid/approx_vector.h"
#include "grid/bit_packed.h"
#include "grid/bounds.h"
#include "grid/grid_index.h"
#include "grid/partitioner.h"

namespace gir {
namespace {

// ---------------------------------------------------------------- Partitioner

TEST(PartitionerTest, UniformBoundaries) {
  auto part = Partitioner::Uniform(4, 1.0);
  ASSERT_TRUE(part.ok());
  const Partitioner& p = part.value();
  EXPECT_EQ(p.partitions(), 4u);
  EXPECT_TRUE(p.is_uniform());
  EXPECT_DOUBLE_EQ(p.Boundary(0), 0.0);
  EXPECT_DOUBLE_EQ(p.Boundary(2), 0.5);
  EXPECT_DOUBLE_EQ(p.Boundary(4), 1.0);
}

TEST(PartitionerTest, PaperExampleCells) {
  // §3.1: p = (0.62, 0.15, 0.73) with 4 partitions of [0,1] -> (2, 0, 2).
  auto part = Partitioner::Uniform(4, 1.0);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.value().CellOf(0.62), 2);
  EXPECT_EQ(part.value().CellOf(0.15), 0);
  EXPECT_EQ(part.value().CellOf(0.73), 2);
}

TEST(PartitionerTest, TopValueClampsIntoLastCell) {
  auto part = Partitioner::Uniform(8, 2.0);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.value().CellOf(2.0), 7);
  EXPECT_EQ(part.value().CellOf(1.9999), 7);
  EXPECT_EQ(part.value().CellOf(0.0), 0);
}

TEST(PartitionerTest, RejectsBadParameters) {
  EXPECT_FALSE(Partitioner::Uniform(0, 1.0).ok());
  EXPECT_FALSE(Partitioner::Uniform(256, 1.0).ok());
  EXPECT_FALSE(Partitioner::Uniform(4, 0.0).ok());
  EXPECT_FALSE(Partitioner::Uniform(4, -1.0).ok());
}

TEST(PartitionerTest, FromBoundariesCellLookup) {
  auto part = Partitioner::FromBoundaries({0.0, 0.1, 0.5, 1.0});
  ASSERT_TRUE(part.ok());
  const Partitioner& p = part.value();
  EXPECT_FALSE(p.is_uniform());
  EXPECT_EQ(p.partitions(), 3u);
  EXPECT_EQ(p.CellOf(0.05), 0);
  EXPECT_EQ(p.CellOf(0.1), 1);  // boundary belongs to the upper cell
  EXPECT_EQ(p.CellOf(0.49), 1);
  EXPECT_EQ(p.CellOf(0.99), 2);
  EXPECT_EQ(p.CellOf(1.0), 2);  // top value clamps into the last cell
}

TEST(PartitionerTest, FromBoundariesRejectsInvalid) {
  EXPECT_FALSE(Partitioner::FromBoundaries({0.0}).ok());
  EXPECT_FALSE(Partitioner::FromBoundaries({0.1, 0.5}).ok());  // first != 0
  EXPECT_FALSE(Partitioner::FromBoundaries({0.0, 0.5, 0.5}).ok());
  EXPECT_FALSE(Partitioner::FromBoundaries({0.0, 0.7, 0.5}).ok());
}

TEST(PartitionerTest, UniformAndGeneralAgree) {
  auto uniform = Partitioner::Uniform(16, 3.0).value();
  std::vector<double> bounds;
  for (size_t i = 0; i <= 16; ++i) bounds.push_back(3.0 * i / 16.0);
  auto general = Partitioner::FromBoundaries(bounds).value();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextDouble(0.0, 3.0);
    EXPECT_EQ(uniform.CellOf(v), general.CellOf(v)) << "value " << v;
  }
}

// ---------------------------------------------------------------- GridIndex

TEST(GridIndexTest, TableHoldsBoundaryProducts) {
  auto pp = Partitioner::Uniform(4, 1.0).value();
  auto wp = Partitioner::Uniform(4, 1.0).value();
  GridIndex grid = GridIndex::Make(pp, wp);
  // Eq. 1: Grid[i][j] = alpha_p[i] * alpha_w[j].
  EXPECT_DOUBLE_EQ(grid.Lower(2, 0), 0.5 * 0.0);
  EXPECT_DOUBLE_EQ(grid.Upper(2, 0), 0.75 * 0.25);  // paper's §3.1 example
  EXPECT_DOUBLE_EQ(grid.Lower(3, 3), 0.75 * 0.75);
  EXPECT_DOUBLE_EQ(grid.Upper(3, 3), 1.0 * 1.0);
}

TEST(GridIndexTest, RectangularPartitionsSupported) {
  auto pp = Partitioner::Uniform(8, 100.0).value();
  auto wp = Partitioner::Uniform(4, 1.0).value();
  GridIndex grid = GridIndex::Make(pp, wp);
  EXPECT_EQ(grid.point_partitions(), 8u);
  EXPECT_EQ(grid.weight_partitions(), 4u);
  EXPECT_DOUBLE_EQ(grid.Lower(8, 4), 100.0 * 1.0);
}

TEST(GridIndexTest, TableBytesMatchesPaperFigure) {
  // §5.3: a 32x32 grid needs less than 8KB (33*33*8 = 8712 ~ 8.7KB with
  // boundary rows; the paper's 32*32*8 = 8192 counts cells).
  auto pp = Partitioner::Uniform(32, 1.0).value();
  GridIndex grid = GridIndex::Make(pp, pp);
  EXPECT_EQ(grid.TableBytes(), 33u * 33u * sizeof(double));
  EXPECT_LT(grid.TableBytes(), 10000u);
}

TEST(GridIndexTest, PerDimProductAlwaysInsideCorners) {
  auto pp = Partitioner::Uniform(16, 50.0).value();
  auto wp = Partitioner::Uniform(16, 1.0).value();
  GridIndex grid = GridIndex::Make(pp, wp);
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const double pv = rng.NextDouble(0.0, 50.0);
    const double wv = rng.NextDouble(0.0, 1.0);
    const uint8_t pc = pp.CellOf(pv);
    const uint8_t wc = wp.CellOf(wv);
    EXPECT_LE(grid.Lower(pc, wc), pv * wv);
    EXPECT_GE(grid.Upper(pc, wc), pv * wv);
  }
}

// ---------------------------------------------------------------- Approx

TEST(ApproxVectorsTest, BuildQuantizesEveryValue) {
  Dataset ds = GenerateUniform(100, 5, 7);
  auto part = Partitioner::Uniform(32, 10000.0).value();
  ApproxVectors av = ApproxVectors::Build(ds, part);
  EXPECT_EQ(av.size(), 100u);
  EXPECT_EQ(av.dim(), 5u);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = 0; j < ds.dim(); ++j) {
      EXPECT_EQ(av.row(i)[j], part.CellOf(ds.row(i)[j]));
    }
  }
}

TEST(ApproxVectorsTest, MemoryIsOneBytePerCell) {
  Dataset ds = GenerateUniform(64, 6, 8);
  auto part = Partitioner::Uniform(32, 10000.0).value();
  ApproxVectors av = ApproxVectors::Build(ds, part);
  EXPECT_EQ(av.MemoryBytes(), 64u * 6u);
}

// ---------------------------------------------------------------- Bounds

class BoundsInvariant
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BoundsInvariant, ScoreAlwaysWithinBounds) {
  const auto [d, n] = GetParam();
  Dataset points = GenerateUniform(200, d, 9);
  Dataset weights = GenerateWeightsUniform(50, d, 10);
  auto pp = Partitioner::Uniform(n, points.MaxValue()).value();
  auto wp = Partitioner::Uniform(n, weights.MaxValue()).value();
  GridIndex grid = GridIndex::Make(pp, wp);
  ApproxVectors pa = ApproxVectors::Build(points, pp);
  ApproxVectors wa = ApproxVectors::Build(weights, wp);
  for (size_t wi = 0; wi < weights.size(); ++wi) {
    for (size_t pi = 0; pi < points.size(); ++pi) {
      const Score exact = InnerProduct(weights.row(wi), points.row(pi));
      const Score lower = ScoreLowerBound(grid, pa.row(pi), wa.row(wi), d);
      const Score upper = ScoreUpperBound(grid, pa.row(pi), wa.row(wi), d);
      ASSERT_LE(lower, exact + 1e-9);
      ASSERT_GE(upper, exact - 1e-9);
      ASSERT_LE(lower, upper);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndPartitions, BoundsInvariant,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{4}, size_t{8},
                                         size_t{16}),
                       ::testing::Values(size_t{4}, size_t{32}, size_t{128})));

TEST(BoundsTest, ClassifyAgainstQueryScore) {
  EXPECT_EQ(ClassifyBounds(0.1, 0.2, 0.3), BoundCase::kPrecedesQuery);
  EXPECT_EQ(ClassifyBounds(0.4, 0.5, 0.3), BoundCase::kExceedsQuery);
  EXPECT_EQ(ClassifyBounds(0.2, 0.4, 0.3), BoundCase::kIncomparable);
  // Boundary: L == query score counts as Case 2 under strict ranking.
  EXPECT_EQ(ClassifyBounds(0.3, 0.5, 0.3), BoundCase::kExceedsQuery);
  // Boundary: U == query score is unresolved (f(p) could tie or be below).
  EXPECT_EQ(ClassifyBounds(0.1, 0.3, 0.3), BoundCase::kIncomparable);
}

TEST(BoundsTest, FilterRateImprovesWithPartitions) {
  const size_t d = 6;
  Dataset points = GenerateUniform(2000, d, 11);
  Dataset weights = GenerateWeightsUniform(20, d, 12);
  double previous_unresolved = 2.0;
  for (size_t n : {4u, 16u, 64u}) {
    auto pp = Partitioner::Uniform(n, points.MaxValue()).value();
    auto wp = Partitioner::Uniform(n, weights.MaxValue()).value();
    GridIndex grid = GridIndex::Make(pp, wp);
    ApproxVectors pa = ApproxVectors::Build(points, pp);
    ApproxVectors wa = ApproxVectors::Build(weights, wp);
    size_t unresolved = 0, total = 0;
    for (size_t wi = 0; wi < weights.size(); ++wi) {
      const Score qs = InnerProduct(weights.row(wi), points.row(0));
      for (size_t pi = 1; pi < points.size(); ++pi) {
        const Score lo = ScoreLowerBound(grid, pa.row(pi), wa.row(wi), d);
        const Score up = ScoreUpperBound(grid, pa.row(pi), wa.row(wi), d);
        unresolved += ClassifyBounds(lo, up, qs) == BoundCase::kIncomparable;
        ++total;
      }
    }
    const double rate =
        static_cast<double>(unresolved) / static_cast<double>(total);
    EXPECT_LT(rate, previous_unresolved);
    previous_unresolved = rate;
  }
  // At n = 64 most points are resolved. (The paper's idealized model
  // predicts ~0.1%; the real 2-D cell bounds are wider — see
  // EXPERIMENTS.md on Table 4 — so ~6% is what the implementation and the
  // paper's own experimental setup actually achieve here.)
  EXPECT_LT(previous_unresolved, 0.10);
}

// ---------------------------------------------------------------- BitPacked

TEST(BitPackedTest, RoundTripAllWidths) {
  Dataset ds = GenerateUniform(150, 7, 13);
  for (uint32_t bits : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
    const size_t n = (bits >= 8) ? 255 : (size_t{1} << bits);
    auto part = Partitioner::Uniform(n, 10000.0).value();
    ApproxVectors av = ApproxVectors::Build(ds, part);
    auto packed = BitPackedVectors::Pack(av, bits);
    ASSERT_TRUE(packed.ok()) << "bits " << bits;
    ApproxVectors unpacked = packed.value().Unpack();
    ASSERT_EQ(unpacked.size(), av.size());
    for (size_t i = 0; i < av.size(); ++i) {
      for (size_t j = 0; j < av.dim(); ++j) {
        ASSERT_EQ(unpacked.row(i)[j], av.row(i)[j])
            << "bits " << bits << " row " << i << " dim " << j;
      }
    }
  }
}

TEST(BitPackedTest, RejectsOverflowingCells) {
  Dataset ds = GenerateUniform(10, 3, 14);
  auto part = Partitioner::Uniform(32, 10000.0).value();  // cells up to 31
  ApproxVectors av = ApproxVectors::Build(ds, part);
  EXPECT_FALSE(BitPackedVectors::Pack(av, 4).ok());  // 4 bits: max 15
  EXPECT_TRUE(BitPackedVectors::Pack(av, 5).ok());
}

TEST(BitPackedTest, RejectsBadBitWidth) {
  Dataset ds = GenerateUniform(4, 2, 15);
  auto part = Partitioner::Uniform(4, 10000.0).value();
  ApproxVectors av = ApproxVectors::Build(ds, part);
  EXPECT_FALSE(BitPackedVectors::Pack(av, 0).ok());
  EXPECT_FALSE(BitPackedVectors::Pack(av, 9).ok());
}

TEST(BitPackedTest, CompressionRatioMatchesPaper) {
  // §3.2: with b = 6 the packed form is < 1/10 of 64-bit originals. (At
  // d = 6 the per-vector byte alignment rounds 36 bits to 40, giving 1/9.6;
  // d = 8 packs to exactly 6 bytes per vector, 1/10.7.)
  Dataset ds = GenerateUniform(1000, 8, 16);
  auto part = Partitioner::Uniform(64, 10000.0).value();
  ApproxVectors av = ApproxVectors::Build(ds, part);
  auto packed = BitPackedVectors::Pack(av, 6).value();
  const size_t original_bytes = ds.size() * ds.dim() * sizeof(double);
  EXPECT_LT(packed.MemoryBytes() * 10, original_bytes);
}

TEST(BitPackedTest, BlobRoundTrip) {
  Dataset ds = GenerateUniform(33, 5, 17);
  auto part = Partitioner::Uniform(16, 10000.0).value();
  ApproxVectors av = ApproxVectors::Build(ds, part);
  auto packed = BitPackedVectors::Pack(av, 4).value();
  PackedBlob blob = packed.ToBlob();
  auto restored = BitPackedVectors::FromBlob(std::move(blob));
  ASSERT_TRUE(restored.ok());
  ApproxVectors unpacked = restored.value().Unpack();
  for (size_t i = 0; i < av.size(); ++i) {
    for (size_t j = 0; j < av.dim(); ++j) {
      ASSERT_EQ(unpacked.row(i)[j], av.row(i)[j]);
    }
  }
}

TEST(BitPackedTest, PaperSection32Example) {
  // Fig. 6: p^(a) = (2, 0, 2) at 2 bits/cell packs into the 6-bit string
  // 100010 (byte 0b10001000 with trailing padding).
  ApproxVectors av = ApproxVectors::FromCells(3, {2, 0, 2});
  auto packed = BitPackedVectors::Pack(av, 2).value();
  EXPECT_EQ(packed.MemoryBytes(), 1u);
  EXPECT_EQ(packed.ToBlob().payload[0], 0b10001000);
}

}  // namespace
}  // namespace gir

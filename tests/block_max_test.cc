#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "grid/block_max.h"
#include "grid/blocked_scan.h"
#include "grid/dynamic_index.h"
#include "grid/gir_queries.h"
#include "grid/index_io.h"
#include "grid/succinct.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeTieHeavy;
using testing_util::MakeWorkload;
using testing_util::Workload;

// ---- RankSelectBitmap ---------------------------------------------------

TEST(RankSelectBitmapTest, MatchesByteReferenceUnderRandomOps) {
  std::mt19937_64 rng(7);
  RankSelectBitmap bitmap;
  std::vector<uint8_t> ref;
  for (size_t step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng() % 3);
    if (op == 0 || ref.empty()) {
      const bool v = (rng() & 1) != 0;
      bitmap.PushBack(v);
      ref.push_back(v ? 1 : 0);
    } else if (op == 1) {
      const size_t i = rng() % ref.size();
      const bool v = (rng() & 1) != 0;
      bitmap.Set(i, v);
      ref[i] = v ? 1 : 0;
    } else {
      const size_t end = rng() % (ref.size() + 1);
      const size_t expect = static_cast<size_t>(
          std::count(ref.begin(), ref.begin() + end, 1));
      ASSERT_EQ(bitmap.Rank1(end), expect) << "end=" << end;
    }
    ASSERT_EQ(bitmap.size(), ref.size());
    ASSERT_EQ(bitmap.ones(),
              static_cast<size_t>(std::count(ref.begin(), ref.end(), 1)));
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(bitmap.Get(i), ref[i] != 0) << i;
  }
  EXPECT_EQ(bitmap.ToBytes(), ref);
}

TEST(RankSelectBitmapTest, FromBytesRoundTripsAndCounts) {
  std::mt19937_64 rng(11);
  std::vector<uint8_t> bytes(777);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng() & 1);
  RankSelectBitmap bitmap = RankSelectBitmap::FromBytes(bytes);
  EXPECT_EQ(bitmap.size(), bytes.size());
  EXPECT_EQ(bitmap.ToBytes(), bytes);
  EXPECT_EQ(bitmap.ones(),
            static_cast<size_t>(std::count(bytes.begin(), bytes.end(), 1)));
  EXPECT_EQ(bitmap.zeros(), bytes.size() - bitmap.ones());
  EXPECT_EQ(bitmap.Rank1(bytes.size()), bitmap.ones());
  // 8x denser than the byte vector (plus the small rank directory).
  EXPECT_LT(bitmap.MemoryBytes(), bytes.size());
}

TEST(RankSelectBitmapTest, AllOnesAndAssign) {
  RankSelectBitmap bitmap = RankSelectBitmap::AllOnes(130);
  EXPECT_EQ(bitmap.size(), 130u);
  EXPECT_EQ(bitmap.ones(), 130u);
  EXPECT_EQ(bitmap.Rank1(65), 65u);
  bitmap.Assign(40, false);
  EXPECT_EQ(bitmap.size(), 40u);
  EXPECT_EQ(bitmap.ones(), 0u);
  EXPECT_EQ(bitmap.Rank1(40), 0u);
  bitmap.Assign(0, false);
  EXPECT_EQ(bitmap.size(), 0u);
  EXPECT_EQ(bitmap.Rank1(0), 0u);
}

// ---- CompressedScoreArray -----------------------------------------------

std::vector<double> RandomSortedScores(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-5000.0, 5000.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  // Inject ties and signed zeros — the adversarial cases for the
  // order-preserving key map.
  for (size_t i = 0; 3 * i + 2 < n; i += 7) v[3 * i + 2] = v[3 * i];
  if (n > 4) {
    v[1] = 0.0;
    v[2] = -0.0;
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(CompressedScoreArrayTest, RoundTripIsBitExact) {
  for (const size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 1000u}) {
    const std::vector<double> v = RandomSortedScores(n, 100 + n);
    CompressedScoreArray a = CompressedScoreArray::FromSorted(v);
    ASSERT_EQ(a.size(), n);
    const std::vector<double> back = a.ToVector();
    ASSERT_EQ(back.size(), n);
    for (size_t i = 0; i < n; ++i) {
      // Bit-exact up to the canonical -0.0 == +0.0 (key bijection).
      ASSERT_EQ(back[i], v[i]) << i;
    }
  }
}

TEST(CompressedScoreArrayTest, CountStrictlyBelowMatchesLowerBound) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<double> v = RandomSortedScores(513, seed);
    CompressedScoreArray a = CompressedScoreArray::FromSorted(v);
    std::vector<double> targets = v;
    for (double x : v) {
      targets.push_back(std::nextafter(x, 1e308));
      targets.push_back(std::nextafter(x, -1e308));
    }
    targets.push_back(0.0);
    targets.push_back(-0.0);
    targets.push_back(v.front() - 1.0);
    targets.push_back(v.back() + 1.0);
    targets.push_back(std::numeric_limits<double>::infinity());
    targets.push_back(-std::numeric_limits<double>::infinity());
    for (double t : targets) {
      const int64_t expect = static_cast<int64_t>(
          std::lower_bound(v.begin(), v.end(), t) - v.begin());
      ASSERT_EQ(a.CountStrictlyBelow(t), expect) << "target=" << t;
    }
  }
}

TEST(CompressedScoreArrayTest, ConstantAndEmptyArrays) {
  CompressedScoreArray empty = CompressedScoreArray::FromSorted({});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.CountStrictlyBelow(0.0), 0);
  EXPECT_FALSE(empty.begin().valid());

  std::vector<double> flat(200, 42.5);
  CompressedScoreArray a = CompressedScoreArray::FromSorted(flat);
  EXPECT_EQ(a.ToVector(), flat);
  EXPECT_EQ(a.CountStrictlyBelow(42.5), 0);
  EXPECT_EQ(a.CountStrictlyBelow(std::nextafter(42.5, 1e308)), 200);
  // All deltas are zero: the packed payload collapses to ~nothing.
  EXPECT_LT(a.MemoryBytes(), a.UncompressedBytes() / 10);
}

TEST(CompressedScoreArrayTest, CursorStreamsInOrder) {
  const std::vector<double> v = RandomSortedScores(300, 9);
  CompressedScoreArray a = CompressedScoreArray::FromSorted(v);
  size_t i = 0;
  for (CompressedScoreArray::Cursor c = a.begin(); c.valid(); c.Next()) {
    ASSERT_LT(i, v.size());
    ASSERT_EQ(c.value(), v[i]) << i;
    ++i;
  }
  EXPECT_EQ(i, v.size());
}

TEST(CompressedScoreArrayTest, ClusteredScoresCompress) {
  // Lattice-valued scores (small integer deltas) — the shape real
  // inner-product arrays take under the tie-heavy generators.
  std::vector<double> v(4096);
  std::mt19937_64 rng(13);
  for (auto& x : v) x = static_cast<double>(rng() % 1000);
  std::sort(v.begin(), v.end());
  CompressedScoreArray a = CompressedScoreArray::FromSorted(v);
  EXPECT_EQ(a.ToVector(), v);
  EXPECT_LT(a.MemoryBytes(), a.UncompressedBytes());
}

// ---- Cursor bit-identity ------------------------------------------------

/// Correlated ramp: every dimension of row j sits near 9000 * j / n, so
/// scan blocks have narrow per-dimension ranges — the score-homogeneous
/// layout where the block-max cursor resolves almost every block.
/// (Sorting *uniform* data by coordinate sum is not enough: each
/// dimension's block max stays near the global max.)
Dataset RampPoints(size_t n, size_t d, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(0.0, 200.0);
  std::vector<double> flat(n * d);
  for (size_t j = 0; j < n; ++j) {
    const double base = 9000.0 * static_cast<double>(j) / static_cast<double>(n);
    for (size_t i = 0; i < d; ++i) flat[j * d + i] = base + noise(rng);
  }
  return Dataset::FromFlat(d, std::move(flat)).value();
}

Dataset SortedBySum(const Dataset& ds) {
  std::vector<size_t> order(ds.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double sa = 0.0, sb = 0.0;
    for (size_t i = 0; i < ds.dim(); ++i) {
      sa += ds.row(a)[i];
      sb += ds.row(b)[i];
    }
    return sa < sb;
  });
  Dataset out(ds.dim());
  out.Reserve(ds.size());
  for (size_t i : order) out.AppendUnchecked(ds.row(i));
  return out;
}

GirIndex BuildIndex(const Workload& w, ScanMode mode, bool use_block_max) {
  GirOptions options;
  options.scan_mode = mode;
  options.use_block_max = use_block_max;
  auto built = GirIndex::Build(w.points, w.weights, options);
  EXPECT_TRUE(built.ok()) << built.status().message();
  return std::move(built).value();
}

void ExpectIdenticalAnswers(const GirIndex& on, const GirIndex& off,
                            const Dataset& queries) {
  for (const size_t k : {1u, 3u, 17u}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ConstRow q = queries.row(qi);
      EXPECT_EQ(on.ReverseTopK(q, k), off.ReverseTopK(q, k))
          << "topk qi=" << qi << " k=" << k;
      EXPECT_EQ(on.ReverseKRanks(q, k), off.ReverseKRanks(q, k))
          << "kranks qi=" << qi << " k=" << k;
    }
    EXPECT_EQ(on.ReverseTopKBatch(queries, k),
              off.ReverseTopKBatch(queries, k));
    EXPECT_EQ(on.ReverseKRanksBatch(queries, k),
              off.ReverseKRanksBatch(queries, k));
  }
}

TEST(BlockMaxCursorTest, BitIdenticalOnTieHeavyWorkload) {
  // > 1 scan block (d=16 gives 2048-point blocks) with constant exact
  // ties — the adversarial case for the take-all margin.
  Workload w{MakeTieHeavy(6144, 16, 21),
             testing_util::SmallWeights(48, 16, 22)};
  const Dataset queries = testing_util::SmallPoints(6, 16, 23);
  for (ScanMode mode :
       {ScanMode::kWeightAtATime, ScanMode::kBlocked, ScanMode::kTauIndex}) {
    GirIndex on = BuildIndex(w, mode, /*use_block_max=*/true);
    GirIndex off = BuildIndex(w, mode, /*use_block_max=*/false);
    ASSERT_NE(on.block_max(), nullptr);
    ASSERT_EQ(off.block_max(), nullptr);
    ExpectIdenticalAnswers(on, off, queries);
  }
}

TEST(BlockMaxCursorTest, BitIdenticalOnScoreHomogeneousBlocks) {
  // Sorting P by coordinate sum makes blocks score-homogeneous, the
  // maximum-skip layout; extreme queries drive the all-skipped paths.
  Workload w = MakeWorkload(6144, 48, 16, 31);
  w.points = SortedBySum(w.points);
  Dataset queries(16);
  std::vector<double> row(16, 0.0);
  queries.AppendUnchecked(w.points.row(w.points.size() / 2));
  for (auto& x : row) x = 1e6;  // above every score: every block takes all
  queries.AppendUnchecked(ConstRow(row.data(), row.size()));
  std::fill(row.begin(), row.end(), 0.0);  // below: every block skips zero
  queries.AppendUnchecked(ConstRow(row.data(), row.size()));
  for (ScanMode mode : {ScanMode::kBlocked, ScanMode::kTauIndex}) {
    GirIndex on = BuildIndex(w, mode, /*use_block_max=*/true);
    GirIndex off = BuildIndex(w, mode, /*use_block_max=*/false);
    ExpectIdenticalAnswers(on, off, queries);
  }
}

TEST(BlockMaxCursorTest, SkipCountersAccountForEveryPoint) {
  Workload w = MakeWorkload(6144, 32, 16, 41);
  w.points = RampPoints(6144, 16, 42);
  GirIndex on = BuildIndex(w, ScanMode::kBlocked, /*use_block_max=*/true);
  GirIndex off = BuildIndex(w, ScanMode::kBlocked, /*use_block_max=*/false);
  ConstRow q = w.points.row(w.points.size() / 2);
  QueryStats stats_on, stats_off;
  EXPECT_EQ(on.ReverseKRanks(q, 5, &stats_on),
            off.ReverseKRanks(q, 5, &stats_off));
  // The cursor must actually fire on this layout...
  EXPECT_GT(stats_on.blocks_skipped, 0u);
  EXPECT_GT(stats_on.points_skipped, 0u);
  EXPECT_EQ(stats_off.blocks_skipped, 0u);
  EXPECT_EQ(stats_off.points_skipped, 0u);
  // ...and every point it skips is one the linear sweep would have
  // visited: visited + skipped is invariant, dominated is untouched.
  EXPECT_EQ(stats_on.points_visited + stats_on.points_skipped,
            stats_off.points_visited);
  EXPECT_EQ(stats_on.points_dominated, stats_off.points_dominated);
}

TEST(BlockMaxCursorTest, BitIdenticalUnderTombstoneRiddledChurn) {
  DynamicIndexOptions options;
  options.gir.scan_mode = ScanMode::kBlocked;
  options.auto_compact = false;
  Workload w = MakeWorkload(4096, 40, 16, 51);
  w.points = SortedBySum(w.points);
  auto built = DynamicGirIndex::Build(w.points, w.weights, options);
  ASSERT_TRUE(built.ok()) << built.status().message();
  DynamicGirIndex dyn = std::move(built).value();
  // Riddle the base with tombstones and add delta rows so the dirty
  // scanners run against blocks full of dominated/dead points.
  std::mt19937_64 rng(52);
  for (size_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(dyn.DeletePoint(rng() % dyn.live_point_count()).ok());
  }
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(dyn.DeleteWeight(rng() % dyn.live_weight_count()).ok());
  }
  const Dataset extra = testing_util::SmallPoints(60, 16, 53);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(dyn.InsertPoint(extra.row(i)).ok());
  }
  ASSERT_TRUE(dyn.dirty());

  Workload live{dyn.LivePoints(), dyn.LiveWeights()};
  GirIndex oracle = BuildIndex(live, ScanMode::kBlocked,
                               /*use_block_max=*/false);
  const Dataset queries = testing_util::SmallPoints(5, 16, 54);
  for (const size_t k : {1u, 4u, 9u}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ConstRow q = queries.row(qi);
      EXPECT_EQ(dyn.ReverseTopK(q, k), oracle.ReverseTopK(q, k))
          << "qi=" << qi << " k=" << k;
      EXPECT_EQ(dyn.ReverseKRanks(q, k), oracle.ReverseKRanks(q, k))
          << "qi=" << qi << " k=" << k;
    }
  }

  const DynamicGirIndex::MemoryBreakdown mb = dyn.MemoryBytes();
  EXPECT_GT(mb.base_bytes, 0u);
  EXPECT_GT(mb.block_max_bytes, 0u);
  EXPECT_GT(mb.bitmap_bytes, 0u);
  EXPECT_GT(mb.delta_bytes, 0u);
  EXPECT_EQ(mb.total(), mb.base_bytes + mb.tau_bytes + mb.block_max_bytes +
                            mb.bitmap_bytes + mb.delta_bytes);
}

// ---- GIRBMX01 serialization (hostile inputs) ----------------------------

class BlockMaxIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_bmx_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    workload_ = MakeWorkload(200, 16, 16, 61);
    GirOptions options;
    options.use_block_max = true;
    auto built = GirIndex::Build(workload_.points, workload_.weights, options);
    ASSERT_TRUE(built.ok());
    index_.emplace(std::move(built).value());
    path_ = (dir_ / "index.bin").string();
    ASSERT_TRUE(SaveGirIndex(path_, *index_).ok());
    // Trailing-section geometry: magic(8) + dim u32 + n u64 + bp u64 +
    // 2*dim edge doubles + 2*dim*nb u16 codes, lengths header-implied.
    const BlockMaxIndex& bmx = *index_->block_max();
    section_bytes_ = 8 + 4 + 8 + 8 + 2 * bmx.dim() * sizeof(double) +
                     2 * bmx.dim() * bmx.num_blocks() * sizeof(uint16_t);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<char> ReadFile() const {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }
  void WriteFile(const std::vector<char>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  size_t SectionOffset(const std::vector<char>& bytes) const {
    return bytes.size() - section_bytes_;
  }
  Result<GirIndex> Load() const {
    return LoadGirIndex(path_, workload_.points, workload_.weights);
  }

  std::filesystem::path dir_;
  std::string path_;
  Workload workload_{Dataset(16), Dataset(16)};
  std::optional<GirIndex> index_;
  size_t section_bytes_ = 0;
};

TEST_F(BlockMaxIoTest, SectionRoundTrips) {
  auto loaded = Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(loaded.value().block_max(), nullptr);
  const BlockMaxIndex& got = *loaded.value().block_max();
  const BlockMaxIndex& want = *index_->block_max();
  EXPECT_EQ(got.qmin(), want.qmin());
  EXPECT_EQ(got.qmax(), want.qmax());
  EXPECT_EQ(got.dim_lo(), want.dim_lo());
  EXPECT_EQ(got.dim_hi(), want.dim_hi());
  const Dataset queries = testing_util::SmallPoints(4, 16, 62);
  ExpectIdenticalAnswers(loaded.value(), *index_, queries);
}

TEST_F(BlockMaxIoTest, LegacyFileWithoutSectionRebuildsFresh) {
  // A pre-block-max GIRIDX01 file ends at the weight cells; the loader
  // rebuilds the skip structure so old indexes gain the cursor.
  std::vector<char> bytes = ReadFile();
  bytes.resize(SectionOffset(bytes));
  WriteFile(bytes);
  auto loaded = Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_NE(loaded.value().block_max(), nullptr);
  EXPECT_EQ(loaded.value().block_max()->qmin(), index_->block_max()->qmin());
  EXPECT_EQ(loaded.value().block_max()->qmax(), index_->block_max()->qmax());

  // The fresh rebuild must answer exactly like the index that wrote the
  // file, and the recovered cursor must be invisible to results: the
  // loaded (cursor-on) index and a cursor-off build over the same data
  // are bit-identical, legacy file or not.
  const Dataset queries = testing_util::SmallPoints(4, 16, 63);
  ExpectIdenticalAnswers(loaded.value(), *index_, queries);
  GirOptions off_options;
  off_options.use_block_max = false;
  auto off = GirIndex::Build(workload_.points, workload_.weights, off_options);
  ASSERT_TRUE(off.ok());
  ASSERT_EQ(off.value().block_max(), nullptr);
  ExpectIdenticalAnswers(loaded.value(), off.value(), queries);
}

TEST_F(BlockMaxIoTest, RejectsTruncatedSection) {
  std::vector<char> bytes = ReadFile();
  for (const size_t keep :
       std::vector<size_t>{4, 12, 30, section_bytes_ - 2}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + SectionOffset(bytes) + keep);
    WriteFile(cut);
    auto loaded = Load();
    ASSERT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(BlockMaxIoTest, RejectsForgedSectionMagic) {
  std::vector<char> bytes = ReadFile();
  bytes[SectionOffset(bytes)] = 'X';
  WriteFile(bytes);
  auto loaded = Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(BlockMaxIoTest, RejectsForgedBlockCounts) {
  const std::vector<char> orig = ReadFile();
  // block_points lives after magic(8) + dim(4) + num_points(8).
  const size_t bp_off = SectionOffset(orig) + 20;
  for (const uint64_t forged :
       {uint64_t{0}, uint64_t{64}, uint64_t{1} << 60}) {
    std::vector<char> bytes = orig;
    std::memcpy(bytes.data() + bp_off, &forged, sizeof(forged));
    WriteFile(bytes);
    auto loaded = Load();
    ASSERT_FALSE(loaded.ok()) << "forged=" << forged;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(BlockMaxIoTest, RejectsNonMonotoneBounds) {
  std::vector<char> bytes = ReadFile();
  const BlockMaxIndex& bmx = *index_->block_max();
  const size_t qmin_off =
      SectionOffset(bytes) + 28 + 2 * bmx.dim() * sizeof(double);
  const uint16_t hi = 0xFFFF;
  std::memcpy(bytes.data() + qmin_off, &hi, sizeof(hi));
  const size_t qmax_off =
      qmin_off + bmx.dim() * bmx.num_blocks() * sizeof(uint16_t);
  const uint16_t lo = 0;
  std::memcpy(bytes.data() + qmax_off, &lo, sizeof(lo));
  WriteFile(bytes);
  auto loaded = Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(BlockMaxIoTest, RejectsUnsoundBounds) {
  // Forge qmin := qmax: still monotone, but the dequantized lower bounds
  // no longer bracket the block minima — the float fallback verification
  // (SoundFor) must catch it, since an unsound bound would silently
  // change query results.
  std::vector<char> bytes = ReadFile();
  const BlockMaxIndex& bmx = *index_->block_max();
  const size_t codes = bmx.dim() * bmx.num_blocks();
  const size_t qmin_off =
      SectionOffset(bytes) + 28 + 2 * bmx.dim() * sizeof(double);
  const size_t qmax_off = qmin_off + codes * sizeof(uint16_t);
  std::memcpy(bytes.data() + qmin_off, bytes.data() + qmax_off,
              codes * sizeof(uint16_t));
  WriteFile(bytes);
  auto loaded = Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("bracket"), std::string::npos)
      << loaded.status().message();
}

TEST_F(BlockMaxIoTest, RejectsTrailingGarbage) {
  std::vector<char> bytes = ReadFile();
  bytes.push_back('\0');
  bytes.push_back('!');
  WriteFile(bytes);
  auto loaded = Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace gir

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef GIR_CLI_PATH
#error "GIR_CLI_PATH must be defined by the build"
#endif

namespace gir {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Runs the CLI with `args`, captures stdout into `output` and stderr
  /// into `errors`, returns the exit code.
  int RunCli(const std::string& args, std::string* output = nullptr,
             std::string* errors = nullptr) {
    const std::string out_file = Path("stdout.txt");
    const std::string err_file = Path("stderr.txt");
    const std::string command = std::string(GIR_CLI_PATH) + " " + args +
                                " > " + out_file + " 2>" + err_file;
    const int status = std::system(command.c_str());
    if (output != nullptr) {
      std::ifstream in(out_file);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      *output = buffer.str();
    }
    if (errors != nullptr) {
      std::ifstream in(err_file);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      *errors = buffer.str();
    }
    return WEXITSTATUS(status);
  }

  std::filesystem::path dir_;
};

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  EXPECT_EQ(RunCli(""), 1);
  EXPECT_EQ(RunCli("bogus-command"), 1);
}

TEST_F(CliTest, EveryUsageFailurePrintsOneErrorLineAndExits1) {
  // Exit-code contract: 1 for usage errors, 2 for runtime failures, and
  // every failure path leads with exactly one `error: ...` stderr line.
  std::string errors;
  EXPECT_EQ(RunCli("", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: missing command", 0), 0u) << errors;

  EXPECT_EQ(RunCli("bogus-command", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: unknown command: bogus-command", 0), 0u);

  EXPECT_EQ(RunCli("tau", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: tau requires an action", 0), 0u);

  EXPECT_EQ(RunCli("tau shred --points x", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: unknown tau action: shred", 0), 0u);

  EXPECT_EQ(RunCli("update", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: update requires an action", 0), 0u);

  EXPECT_EQ(RunCli("update explode", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: unknown update action: explode", 0), 0u);

  EXPECT_EQ(RunCli("remote", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: remote requires an action", 0), 0u);

  EXPECT_EQ(RunCli("remote shout --port 1", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: unknown remote action: shout", 0), 0u);

  EXPECT_EQ(RunCli("remote ping", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: remote requires --port", 0), 0u);

  EXPECT_EQ(RunCli("generate --kind points --dist UN", nullptr, &errors), 1);
  EXPECT_EQ(errors.rfind("error: generate requires", 0), 0u);
}

TEST_F(CliTest, RuntimeFailuresPrintOneErrorLineAndExit2) {
  std::string errors;
  EXPECT_EQ(RunCli("info --dataset " + Path("absent.bin"), nullptr, &errors),
            2);
  EXPECT_EQ(errors.rfind("error: ", 0), 0u) << errors;
  EXPECT_EQ(std::count(errors.begin(), errors.end(), '\n'), 1) << errors;

  // A remote command against a port nothing listens on is a runtime
  // failure, not a usage one.
  EXPECT_EQ(RunCli("remote ping --port 1 --host 127.0.0.1", nullptr,
                   &errors),
            2);
  EXPECT_EQ(errors.rfind("error: ", 0), 0u) << errors;
}

TEST_F(CliTest, GenerateBuildsReadableDataset) {
  std::string output;
  ASSERT_EQ(RunCli("generate --kind points --dist UN --n 500 --d 3 --seed 9 "
                   "--out " + Path("p.bin"), &output), 0);
  EXPECT_NE(output.find("500 x 3-d"), std::string::npos);
  ASSERT_EQ(RunCli("info --dataset " + Path("p.bin"), &output), 0);
  EXPECT_NE(output.find("500 vectors, 3 dims"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsBadDistribution) {
  EXPECT_NE(RunCli("generate --kind points --dist NOPE --n 10 --d 2 "
                   "--out " + Path("x.bin")), 0);
  EXPECT_NE(RunCli("generate --kind cheese --dist UN --n 10 --d 2 "
                   "--out " + Path("x.bin")), 0);
}

TEST_F(CliTest, FullPipelineProducesConsistentAnswers) {
  ASSERT_EQ(RunCli("generate --kind points --dist UN --n 800 --d 4 --seed 1 "
                   "--out " + Path("p.bin")), 0);
  ASSERT_EQ(RunCli("generate --kind weights --dist UN --n 200 --d 4 --seed 2 "
                   "--out " + Path("w.bin")), 0);
  ASSERT_EQ(RunCli("build-index --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --out " + Path("i.bin") +
                   " --partitions 32"), 0);

  // Query through the persisted index and by rebuilding: identical output.
  std::string via_index, rebuilt;
  ASSERT_EQ(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --index " + Path("i.bin") +
                   " --type rkr --k 5 --query-row 17", &via_index), 0);
  ASSERT_EQ(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --type rkr --k 5 --query-row 17",
                   &rebuilt), 0);
  EXPECT_EQ(via_index, rebuilt);
  EXPECT_NE(via_index.find("rank"), std::string::npos);
}

TEST_F(CliTest, AdaptiveIndexRoundTrips) {
  ASSERT_EQ(RunCli("generate --kind points --dist EXP --n 400 --d 3 --seed 5 "
                   "--out " + Path("p.bin")), 0);
  ASSERT_EQ(RunCli("generate --kind weights --dist UN --n 100 --d 3 --seed 6 "
                   "--out " + Path("w.bin")), 0);
  ASSERT_EQ(RunCli("build-index --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --out " + Path("i.bin") + " --adaptive"),
            0);
  std::string output;
  ASSERT_EQ(RunCli("info --index " + Path("i.bin") + " --points " +
                   Path("p.bin") + " --weights " + Path("w.bin"), &output),
            0);
  EXPECT_NE(output.find("adaptive"), std::string::npos);
  EXPECT_NE(output.find("sections: base"), std::string::npos);
  EXPECT_NE(output.find("block-max"), std::string::npos);
}

TEST_F(CliTest, QueryVectorLiteral) {
  ASSERT_EQ(RunCli("generate --kind points --dist UN --n 300 --d 2 --seed 7 "
                   "--out " + Path("p.bin")), 0);
  ASSERT_EQ(RunCli("generate --kind weights --dist UN --n 50 --d 2 --seed 8 "
                   "--out " + Path("w.bin")), 0);
  std::string output;
  ASSERT_EQ(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --type rtk --k 100 --query 1.0,2.0 "
                   "--stats", &output), 0);
  EXPECT_NE(output.find("matching preferences"), std::string::npos);
  EXPECT_NE(output.find("# stats"), std::string::npos);
  // Wrong width fails cleanly.
  EXPECT_NE(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --type rtk --k 5 --query 1.0,2.0,3.0"),
            0);
}

TEST_F(CliTest, TopKSubcommand) {
  ASSERT_EQ(RunCli("generate --kind points --dist UN --n 300 --d 3 --seed 9 "
                   "--out " + Path("p.bin")), 0);
  ASSERT_EQ(RunCli("generate --kind weights --dist UN --n 10 --d 3 --seed 10 "
                   "--out " + Path("w.bin")), 0);
  std::string output;
  ASSERT_EQ(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --type topk --k 5 --weight-row 3",
                   &output), 0);
  EXPECT_EQ(std::count(output.begin(), output.end(), '\n'), 5);
}

TEST_F(CliTest, TauPipelineBuildsQueriesAndInspects) {
  ASSERT_EQ(RunCli("generate --kind points --dist UN --n 600 --d 4 --seed 21 "
                   "--out " + Path("p.bin")), 0);
  ASSERT_EQ(RunCli("generate --kind weights --dist UN --n 150 --d 4 --seed 22 "
                   "--out " + Path("w.bin")), 0);

  std::string output;
  ASSERT_EQ(RunCli("tau build --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --out " + Path("t.bin") +
                   " --k-max 16 --bins 8", &output), 0);
  EXPECT_NE(output.find("k_cap"), std::string::npos);

  ASSERT_EQ(RunCli("tau info --tau " + Path("t.bin") + " --weights " +
                   Path("w.bin"), &output), 0);
  EXPECT_NE(output.find("16"), std::string::npos);

  // Queries through the loaded tau-index match the plain query command.
  std::string via_tau, via_scan;
  ASSERT_EQ(RunCli("tau query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --tau " + Path("t.bin") +
                   " --type rtk --k 5 --query-row 13", &via_tau), 0);
  ASSERT_EQ(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --type rtk --k 5 --query-row 13",
                   &via_scan), 0);
  EXPECT_EQ(via_tau, via_scan);

  ASSERT_EQ(RunCli("tau query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --tau " + Path("t.bin") +
                   " --type rkr --k 5 --query-row 13", &via_tau), 0);
  ASSERT_EQ(RunCli("query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --type rkr --k 5 --query-row 13",
                   &via_scan), 0);
  EXPECT_EQ(via_tau, via_scan);

  // Corrupt tau file fails cleanly, as does a missing one.
  {
    std::ofstream out(Path("t.bin"),
                      std::ios::binary | std::ios::app);
    out << "garbage";
  }
  EXPECT_NE(RunCli("tau query --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --tau " + Path("t.bin") +
                   " --type rtk --k 5 --query-row 0"), 0);
  EXPECT_NE(RunCli("tau info --tau " + Path("absent.bin") + " --weights " +
                   Path("w.bin")), 0);
}

TEST_F(CliTest, MissingFilesFailGracefully) {
  EXPECT_EQ(RunCli("query --points " + Path("no.bin") + " --weights " +
                   Path("no2.bin") + " --type rkr --k 5 --query-row 0"), 2);
  EXPECT_EQ(RunCli("info --dataset " + Path("missing.bin")), 2);
}

TEST_F(CliTest, ShardSplitExplodesEnvelopeIntoServableLanes) {
  ASSERT_EQ(RunCli("generate --kind points --dist UN --n 120 --d 3 --seed 5 "
                   "--out " + Path("p.bin")), 0);
  ASSERT_EQ(RunCli("generate --kind weights --dist UN --n 50 --d 3 --seed 6 "
                   "--out " + Path("w.bin")), 0);
  ASSERT_EQ(RunCli("shard init --points " + Path("p.bin") + " --weights " +
                   Path("w.bin") + " --out " + Path("shd.bin") +
                   " --shards 3"), 0);

  std::string output;
  ASSERT_EQ(RunCli("shard split --index " + Path("shd.bin") +
                   " --out-prefix " + Path("t"), &output), 0);
  EXPECT_NE(output.find("3 lane(s)"), std::string::npos) << output;

  // Every lane is a standalone GIRDYN01 file: full point replica, a
  // disjoint slice of the 50 weights (round robin: 17 + 17 + 16).
  size_t total_weights = 0;
  for (int lane = 0; lane < 3; ++lane) {
    const std::string lane_path = Path("t.lane" + std::to_string(lane) +
                                       ".gir");
    ASSERT_TRUE(std::filesystem::exists(lane_path)) << lane_path;
    std::string info;
    ASSERT_EQ(RunCli("update info --index " + lane_path, &info), 0);
    EXPECT_NE(info.find("120 live points"), std::string::npos) << info;
    const size_t pos = info.find(" live weights");
    ASSERT_NE(pos, std::string::npos) << info;
    const size_t start = info.rfind('x', pos);
    ASSERT_NE(start, std::string::npos) << info;
    total_weights += std::strtoull(info.c_str() + start + 1, nullptr, 10);
  }
  EXPECT_EQ(total_weights, 50u);

  // Splitting a file that is not a GIRSHD01 envelope is a runtime error.
  EXPECT_EQ(RunCli("shard split --index " + Path("p.bin") +
                   " --out-prefix " + Path("bad")), 2);
}

}  // namespace
}  // namespace gir

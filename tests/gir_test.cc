#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/naive.h"
#include "core/rank.h"
#include "core/simple_scan.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/gin_topk.h"
#include "grid/gir_queries.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

// ---------------------------------------------------------------- GInTopK

class GinTopKTest : public ::testing::Test {
 protected:
  void Init(size_t n, size_t m, size_t d, uint64_t seed, size_t partitions) {
    wl_ = MakeWorkload(n, m, d, seed);
    GirOptions opts;
    opts.partitions = partitions;
    index_.emplace(GirIndex::Build(wl_.points, wl_.weights, opts).value());
  }

  Workload wl_{Dataset(1), Dataset(1)};
  std::optional<GirIndex> index_;
};

TEST_F(GinTopKTest, ExactRankBelowThreshold) {
  Init(400, 30, 5, 1, 32);
  GinContext ctx{&wl_.points, &index_->point_cells(), &index_->grid(),
                 BoundMode::kUpperFirst};
  GinScratch scratch;
  for (size_t wi = 0; wi < wl_.weights.size(); ++wi) {
    const int64_t exact = RankOfQuery(wl_.points, wl_.weights.row(wi),
                                      wl_.points.row(3));
    const int64_t got = GInTopK(ctx, wl_.weights.row(wi),
                                index_->weight_cells().row(wi),
                                wl_.points.row(3), exact + 1,
                                /*domin=*/nullptr, scratch);
    EXPECT_EQ(got, exact) << "weight " << wi;
    const int64_t over = GInTopK(ctx, wl_.weights.row(wi),
                                 index_->weight_cells().row(wi),
                                 wl_.points.row(3), exact,
                                 /*domin=*/nullptr, scratch);
    EXPECT_EQ(over, kRankOverThreshold);
  }
}

TEST_F(GinTopKTest, FusedModeGivesSameRanks) {
  Init(300, 20, 6, 2, 16);
  GinContext upper{&wl_.points, &index_->point_cells(), &index_->grid(),
                   BoundMode::kUpperFirst};
  GinContext fused{&wl_.points, &index_->point_cells(), &index_->grid(),
                   BoundMode::kFused};
  GinScratch scratch;
  const int64_t cap = static_cast<int64_t>(wl_.points.size()) + 1;
  for (size_t wi = 0; wi < wl_.weights.size(); ++wi) {
    const int64_t a =
        GInTopK(upper, wl_.weights.row(wi), index_->weight_cells().row(wi),
                wl_.points.row(7), cap, nullptr, scratch);
    const int64_t b =
        GInTopK(fused, wl_.weights.row(wi), index_->weight_cells().row(wi),
                wl_.points.row(7), cap, nullptr, scratch);
    EXPECT_EQ(a, b);
  }
}

TEST_F(GinTopKTest, DominBufferPreCountsAndSkips) {
  Init(200, 10, 4, 3, 32);
  GinContext ctx{&wl_.points, &index_->point_cells(), &index_->grid(),
                 BoundMode::kUpperFirst};
  DominBuffer domin(wl_.points.size());
  GinScratch scratch;
  const int64_t cap = static_cast<int64_t>(wl_.points.size()) + 1;
  // Query near the maximum corner: many dominators.
  std::vector<double> q(4, 9990.0);
  const int64_t first = GInTopK(ctx, wl_.weights.row(0),
                                index_->weight_cells().row(0), q, cap, &domin,
                                scratch);
  EXPECT_GT(domin.count(), 0);
  QueryStats stats;
  const int64_t second = GInTopK(ctx, wl_.weights.row(0),
                                 index_->weight_cells().row(0), q, cap,
                                 &domin, scratch, &stats);
  EXPECT_EQ(first, second);  // same weight, same rank, dominators pre-counted
  EXPECT_GT(stats.points_dominated, 0u);
}

TEST_F(GinTopKTest, StatsAccountForEveryVisitedPoint) {
  Init(500, 5, 6, 4, 32);
  GinContext ctx{&wl_.points, &index_->point_cells(), &index_->grid(),
                 BoundMode::kUpperFirst};
  GinScratch scratch;
  QueryStats stats;
  const int64_t cap = static_cast<int64_t>(wl_.points.size()) + 1;
  GInTopK(ctx, wl_.weights.row(0), index_->weight_cells().row(0),
          wl_.points.row(0), cap, nullptr, scratch, &stats);
  EXPECT_EQ(stats.points_visited, 500u);
  EXPECT_EQ(stats.points_filtered + stats.points_refined, 500u);
  // Refinement inner products + the query score.
  EXPECT_EQ(stats.inner_products, stats.points_refined + 1);
}

TEST_F(GinTopKTest, HighFilterRateAtPaperDefaults) {
  // n = 32, d = 6 (Table 5 defaults). The paper's Theorem 1 promises >99%
  // under its idealized product-interval model; the implementable 2-D cell
  // bounds resolve ~88% here (see EXPERIMENTS.md, Table 4 discussion), and
  // more partitions push it higher (asserted below).
  Init(5000, 10, 6, 5, 32);
  GinContext ctx{&wl_.points, &index_->point_cells(), &index_->grid(),
                 BoundMode::kUpperFirst};
  GinScratch scratch;
  QueryStats stats;
  const int64_t cap = static_cast<int64_t>(wl_.points.size()) + 1;
  for (size_t wi = 0; wi < wl_.weights.size(); ++wi) {
    GInTopK(ctx, wl_.weights.row(wi), index_->weight_cells().row(wi),
            wl_.points.row(11), cap, nullptr, scratch, &stats);
  }
  EXPECT_GT(stats.FilterRate(), 0.85);

  // n = 128 resolves substantially more.
  GirOptions opts;
  opts.partitions = 128;
  auto fine = GirIndex::Build(wl_.points, wl_.weights, opts).value();
  QueryStats fine_stats;
  GinContext fine_ctx{&wl_.points, &fine.point_cells(), &fine.grid(),
                      BoundMode::kUpperFirst};
  for (size_t wi = 0; wi < wl_.weights.size(); ++wi) {
    GInTopK(fine_ctx, wl_.weights.row(wi), fine.weight_cells().row(wi),
            wl_.points.row(11), cap, nullptr, scratch, &fine_stats);
  }
  EXPECT_GT(fine_stats.FilterRate(), stats.FilterRate());
  EXPECT_GT(fine_stats.FilterRate(), 0.95);
}

// ---------------------------------------------------------------- GirIndex

TEST(GirIndexTest, BuildRejectsDimensionMismatch) {
  Dataset points = GenerateUniform(10, 3, 1);
  Dataset weights = GenerateWeightsUniform(10, 4, 2);
  EXPECT_FALSE(GirIndex::Build(points, weights).ok());
}

TEST(GirIndexTest, BuildRejectsEmptyPoints) {
  Dataset points(3);
  Dataset weights = GenerateWeightsUniform(10, 3, 3);
  EXPECT_FALSE(GirIndex::Build(points, weights).ok());
}

TEST(GirIndexTest, BuildRejectsPartitionerNotCoveringData) {
  Dataset points = GenerateUniform(10, 3, 4);
  Dataset weights = GenerateWeightsUniform(10, 3, 5);
  auto small = Partitioner::Uniform(8, 1.0).value();  // points go to 10K
  auto wp = Partitioner::Uniform(8, 1.0).value();
  EXPECT_FALSE(
      GirIndex::BuildWithPartitioners(points, weights, small, wp).ok());
}

TEST(GirIndexTest, MemoryBytesBreakdown) {
  Dataset points = GenerateUniform(100, 6, 6);
  Dataset weights = GenerateWeightsUniform(50, 6, 7);
  GirOptions opts;
  opts.partitions = 32;
  auto index = GirIndex::Build(points, weights, opts).value();
  ASSERT_NE(index.block_max(), nullptr);
  EXPECT_EQ(index.MemoryBytes(),
            33u * 33u * sizeof(double) + 100u * 6u + 50u * 6u +
                index.block_max()->MemoryBytes());
  // 100 points fit one scan block: the breakdown is 2 u16 codes and 3
  // double edges (lo / hi / step) per dimension.
  EXPECT_EQ(index.block_max()->MemoryBytes(),
            6u * (2u * sizeof(uint16_t) + 3u * sizeof(double)));
}

TEST(GirIndexTest, AllZeroWeightRowHandled) {
  // A zero row cannot be a valid preference, but the index must not choke
  // when handed one (it scores everything 0).
  Dataset points = GenerateUniform(50, 3, 8);
  auto weights = Dataset::FromRows({{0.0, 0.0, 0.0}, {0.5, 0.25, 0.25}});
  ASSERT_TRUE(weights.ok());
  auto index = GirIndex::Build(points, weights.value());
  ASSERT_TRUE(index.ok());
  auto result = index.value().ReverseTopK(points.row(0), 5);
  EXPECT_EQ(result, NaiveReverseTopK(points, weights.value(), points.row(0), 5));
}

struct GirCase {
  size_t n, m, d, k, partitions;
  PointDistribution p_dist;
  WeightDistribution w_dist;
  uint64_t seed;
};

std::string GirCaseName(const ::testing::TestParamInfo<GirCase>& info) {
  const GirCase& c = info.param;
  return "n" + std::to_string(c.n) + "m" + std::to_string(c.m) + "d" +
         std::to_string(c.d) + "k" + std::to_string(c.k) + "part" +
         std::to_string(c.partitions) + PointDistributionName(c.p_dist) +
         WeightDistributionName(c.w_dist) + "s" + std::to_string(c.seed);
}

class GirEquivalence : public ::testing::TestWithParam<GirCase> {
 protected:
  void SetUp() override {
    const GirCase& c = GetParam();
    points_ = GeneratePoints(c.p_dist, c.n, c.d, c.seed);
    weights_ = GenerateWeights(c.w_dist, c.m, c.d, c.seed + 1);
    GirOptions opts;
    opts.partitions = c.partitions;
    index_.emplace(GirIndex::Build(points_, weights_, opts).value());
  }

  Dataset points_{1};
  Dataset weights_{1};
  std::optional<GirIndex> index_;
};

TEST_P(GirEquivalence, ReverseTopKMatchesNaive) {
  const GirCase& c = GetParam();
  for (size_t qi : {size_t{0}, c.n / 3, c.n - 1}) {
    ConstRow q = points_.row(qi);
    EXPECT_EQ(index_->ReverseTopK(q, c.k),
              NaiveReverseTopK(points_, weights_, q, c.k))
        << "query " << qi;
  }
}

TEST_P(GirEquivalence, ReverseKRanksMatchesNaive) {
  const GirCase& c = GetParam();
  for (size_t qi : {size_t{0}, c.n / 3, c.n - 1}) {
    ConstRow q = points_.row(qi);
    EXPECT_EQ(index_->ReverseKRanks(q, c.k),
              NaiveReverseKRanks(points_, weights_, q, c.k))
        << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GirEquivalence,
    ::testing::Values(
        GirCase{60, 30, 2, 5, 4, PointDistribution::kUniform,
                WeightDistribution::kUniform, 11},
        GirCase{200, 50, 3, 10, 8, PointDistribution::kUniform,
                WeightDistribution::kUniform, 12},
        GirCase{300, 40, 6, 20, 32, PointDistribution::kUniform,
                WeightDistribution::kUniform, 13},
        GirCase{150, 30, 6, 7, 32, PointDistribution::kClustered,
                WeightDistribution::kUniform, 14},
        GirCase{150, 30, 6, 7, 32, PointDistribution::kAnticorrelated,
                WeightDistribution::kUniform, 15},
        GirCase{150, 30, 6, 7, 32, PointDistribution::kUniform,
                WeightDistribution::kClustered, 16},
        GirCase{150, 30, 6, 7, 32, PointDistribution::kClustered,
                WeightDistribution::kClustered, 17},
        GirCase{120, 25, 10, 5, 32, PointDistribution::kUniform,
                WeightDistribution::kUniform, 18},
        GirCase{100, 20, 16, 5, 64, PointDistribution::kUniform,
                WeightDistribution::kUniform, 19},
        GirCase{80, 15, 24, 3, 64, PointDistribution::kUniform,
                WeightDistribution::kUniform, 20},
        GirCase{200, 30, 4, 1, 128, PointDistribution::kNormal,
                WeightDistribution::kNormal, 21},
        GirCase{200, 30, 4, 15, 16, PointDistribution::kExponential,
                WeightDistribution::kExponential, 22},
        GirCase{500, 10, 6, 100, 32, PointDistribution::kUniform,
                WeightDistribution::kUniform, 23},
        GirCase{50, 50, 8, 2, 2, PointDistribution::kUniform,
                WeightDistribution::kUniform, 24}),
    GirCaseName);

TEST(GirIndexTest, MatchesSimpleScanOnLargerInstance) {
  Workload wl = MakeWorkload(3000, 200, 6, 31);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  SimpleScan sim(wl.points, wl.weights);
  ConstRow q = wl.points.row(123);
  EXPECT_EQ(index.ReverseTopK(q, 50), sim.ReverseTopK(q, 50));
  EXPECT_EQ(index.ReverseKRanks(q, 50), sim.ReverseKRanks(q, 50));
}

TEST(GirIndexTest, DominOffStillCorrect) {
  Workload wl = MakeWorkload(400, 60, 5, 32);
  GirOptions opts;
  opts.use_domin = false;
  auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
  ConstRow q = wl.points.row(9);
  EXPECT_EQ(index.ReverseTopK(q, 10),
            NaiveReverseTopK(wl.points, wl.weights, q, 10));
  EXPECT_EQ(index.ReverseKRanks(q, 10),
            NaiveReverseKRanks(wl.points, wl.weights, q, 10));
}

class GirBoundModes : public ::testing::TestWithParam<BoundMode> {};

TEST_P(GirBoundModes, AllModesMatchNaive) {
  Workload wl = MakeWorkload(400, 60, 5, 33);
  GirOptions opts;
  opts.bound_mode = GetParam();
  auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
  for (size_t qi : {size_t{0}, size_t{100}, size_t{399}}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(index.ReverseTopK(q, 10),
              NaiveReverseTopK(wl.points, wl.weights, q, 10));
    EXPECT_EQ(index.ReverseKRanks(q, 10),
              NaiveReverseKRanks(wl.points, wl.weights, q, 10));
  }
}

TEST_P(GirBoundModes, HighDimensionalCorrectness) {
  Workload wl = MakeWorkload(150, 25, 20, 34);
  GirOptions opts;
  opts.bound_mode = GetParam();
  auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
  ConstRow q = wl.points.row(75);
  EXPECT_EQ(index.ReverseTopK(q, 5),
            NaiveReverseTopK(wl.points, wl.weights, q, 5));
  EXPECT_EQ(index.ReverseKRanks(q, 5),
            NaiveReverseKRanks(wl.points, wl.weights, q, 5));
}

INSTANTIATE_TEST_SUITE_P(Modes, GirBoundModes,
                         ::testing::Values(BoundMode::kUpperFirst,
                                           BoundMode::kFused,
                                           BoundMode::kExactWeight),
                         [](const ::testing::TestParamInfo<BoundMode>& info) {
                           switch (info.param) {
                             case BoundMode::kUpperFirst:
                               return "UpperFirst";
                             case BoundMode::kFused:
                               return "Fused";
                             case BoundMode::kExactWeight:
                               return "ExactWeight";
                           }
                           return "Unknown";
                         });

TEST(GinTopKTest2, ExactWeightModeExactRanks) {
  Workload wl = MakeWorkload(400, 30, 5, 36);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  GinContext ctx{&wl.points, &index.point_cells(), &index.grid(),
                 BoundMode::kExactWeight};
  GinScratch scratch;
  for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
    const int64_t exact =
        RankOfQuery(wl.points, wl.weights.row(wi), wl.points.row(3));
    EXPECT_EQ(GInTopK(ctx, wl.weights.row(wi), index.weight_cells().row(wi),
                      wl.points.row(3), exact + 1, nullptr, scratch),
              exact);
    EXPECT_EQ(GInTopK(ctx, wl.weights.row(wi), index.weight_cells().row(wi),
                      wl.points.row(3), exact, nullptr, scratch),
              kRankOverThreshold);
  }
}

TEST(GinTopKTest2, ExactWeightFilterRateBeatsGrid2D) {
  // The per-weight scaled row removes the weight-side quantization error:
  // on normalized weights at d = 12 it must resolve far more points.
  Workload wl = MakeWorkload(3000, 20, 12, 37);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  GinScratch scratch;
  const int64_t cap = static_cast<int64_t>(wl.points.size()) + 1;
  auto measure = [&](BoundMode mode) {
    GinContext ctx{&wl.points, &index.point_cells(), &index.grid(), mode};
    QueryStats stats;
    for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
      GInTopK(ctx, wl.weights.row(wi), index.weight_cells().row(wi),
              wl.points.row(9), cap, nullptr, scratch, &stats);
    }
    return stats.FilterRate();
  };
  const double grid2d = measure(BoundMode::kUpperFirst);
  const double exact_weight = measure(BoundMode::kExactWeight);
  EXPECT_GT(exact_weight, grid2d);
  EXPECT_GT(exact_weight, 0.9);
}

TEST(GirIndexTest, EmptyResultWhenKDominatorsExist) {
  auto points = Dataset::FromRows(
                    {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {100.0, 100.0}})
                    .value();
  auto weights = Dataset::FromRows({{0.5, 0.5}, {0.2, 0.8}}).value();
  auto index = GirIndex::Build(points, weights).value();
  std::vector<double> q{50.0, 50.0};
  EXPECT_TRUE(index.ReverseTopK(q, 3).empty());
}

TEST(GirIndexTest, KRanksSavesWorkViaThreshold) {
  // With k << |W| most weights are rejected early; points visited per
  // weight should be far below |P| * |W| on average.
  Workload wl = MakeWorkload(5000, 200, 6, 34);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  QueryStats stats;
  index.ReverseKRanks(wl.points.row(77), 5, &stats);
  EXPECT_LT(stats.points_visited + stats.points_dominated,
            uint64_t{5000} * 200);
}

TEST(GirIndexTest, QueryOutsideDataRangeStillCorrect) {
  // q beyond the partitioner's top boundary: q is never grid-approximated,
  // so results must still match the oracle.
  Workload wl = MakeWorkload(200, 40, 4, 35);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  std::vector<double> q{20000.0, 15000.0, 30000.0, 12000.0};
  EXPECT_EQ(index.ReverseTopK(q, 10),
            NaiveReverseTopK(wl.points, wl.weights, q, 10));
  EXPECT_EQ(index.ReverseKRanks(q, 10),
            NaiveReverseKRanks(wl.points, wl.weights, q, 10));
}

}  // namespace
}  // namespace gir

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/dataset.h"
#include "data/generators.h"
#include "data/real_like.h"
#include "data/rng.h"
#include "data/weights.h"

namespace gir {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(5.0, 6.5);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.5);
  }
}

TEST(RngTest, NextIndexCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextIndex(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += parent.NextU64() == child.NextU64();
  EXPECT_LT(equal, 2);
}

// ---------------------------------------------------------------- Points

TEST(GeneratorsTest, UniformShapeAndRange) {
  Dataset ds = GenerateUniform(5000, 6, 21);
  EXPECT_EQ(ds.size(), 5000u);
  EXPECT_EQ(ds.dim(), 6u);
  EXPECT_GE(ds.MinValue(), 0.0);
  EXPECT_LT(ds.MaxValue(), 10000.0);
  // Mean of each dimension ~ range/2.
  for (size_t j = 0; j < 6; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < ds.size(); ++i) sum += ds.row(i)[j];
    EXPECT_NEAR(sum / static_cast<double>(ds.size()), 5000.0, 300.0);
  }
}

TEST(GeneratorsTest, UniformDeterministicPerSeed) {
  Dataset a = GenerateUniform(100, 3, 5);
  Dataset b = GenerateUniform(100, 3, 5);
  Dataset c = GenerateUniform(100, 3, 6);
  EXPECT_EQ(a.flat(), b.flat());
  EXPECT_NE(a.flat(), c.flat());
}

TEST(GeneratorsTest, ClusteredStaysInRange) {
  Dataset ds = GenerateClustered(5000, 4, 22);
  EXPECT_GE(ds.MinValue(), 0.0);
  EXPECT_LT(ds.MaxValue(), 10000.0);
}

TEST(GeneratorsTest, ClusteredIsMoreConcentratedThanUniform) {
  // Nearest-cluster-center spread: clustered data has much lower average
  // distance to its nearest neighbor than uniform data of the same size.
  GeneratorOptions opts;
  opts.num_clusters = 5;
  opts.sigma_fraction = 0.02;
  Dataset cl = GenerateClustered(500, 3, 23, opts);
  Dataset un = GenerateUniform(500, 3, 23);
  auto avg_nn = [](const Dataset& ds) {
    double total = 0.0;
    for (size_t i = 0; i < 100; ++i) {
      double best = 1e300;
      for (size_t j = 0; j < ds.size(); ++j) {
        if (i == j) continue;
        double d2 = 0.0;
        for (size_t t = 0; t < ds.dim(); ++t) {
          const double diff = ds.row(i)[t] - ds.row(j)[t];
          d2 += diff * diff;
        }
        best = std::min(best, d2);
      }
      total += std::sqrt(best);
    }
    return total / 100.0;
  };
  EXPECT_LT(avg_nn(cl), avg_nn(un) * 0.8);
}

TEST(GeneratorsTest, AnticorrelatedSumsConcentrate) {
  Dataset ds = GenerateAnticorrelated(5000, 6, 24);
  EXPECT_GE(ds.MinValue(), 0.0);
  EXPECT_LT(ds.MaxValue(), 10000.0);
  // Coordinate sums cluster near d/2 * range; spread far below uniform's.
  double mean_sum = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < ds.dim(); ++j) s += ds.row(i)[j];
    mean_sum += s;
  }
  mean_sum /= static_cast<double>(ds.size());
  EXPECT_NEAR(mean_sum, 3.0 * 10000.0, 600.0);

  double var_sum = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < ds.dim(); ++j) s += ds.row(i)[j];
    var_sum += (s - mean_sum) * (s - mean_sum);
  }
  var_sum /= static_cast<double>(ds.size());
  // Uniform sum variance would be d * range^2 / 12 = 5e7; AC is far less.
  EXPECT_LT(var_sum, 1e7);
}

TEST(GeneratorsTest, AnticorrelatedNegativelyCorrelatedDims) {
  Dataset ds = GenerateAnticorrelated(20000, 2, 25);
  double mx = 0, my = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    mx += ds.row(i)[0];
    my += ds.row(i)[1];
  }
  mx /= static_cast<double>(ds.size());
  my /= static_cast<double>(ds.size());
  double cov = 0, vx = 0, vy = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const double dx = ds.row(i)[0] - mx;
    const double dy = ds.row(i)[1] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(corr, -0.5);
}

TEST(GeneratorsTest, NormalCentersAtHalfRange) {
  Dataset ds = GenerateNormal(20000, 3, 26);
  double mean = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) mean += ds.row(i)[0];
  mean /= static_cast<double>(ds.size());
  EXPECT_NEAR(mean, 5000.0, 100.0);
}

TEST(GeneratorsTest, ExponentialSkewsLow) {
  Dataset ds = GenerateExponential(20000, 3, 27);
  // Exp(2) on the unit scale: P(X < 0.5) = 1 - e^-1 = 0.632, far above the
  // uniform's 0.5; and the median sits near 0.35 * range.
  size_t below = 0;
  for (double v : ds.flat()) below += v < 5000.0;
  EXPECT_GT(static_cast<double>(below) / static_cast<double>(ds.flat().size()),
            0.60);
}

TEST(GeneratorsTest, DispatchMatchesDirectCalls) {
  EXPECT_EQ(GeneratePoints(PointDistribution::kUniform, 50, 3, 1).flat(),
            GenerateUniform(50, 3, 1).flat());
  EXPECT_EQ(GeneratePoints(PointDistribution::kClustered, 50, 3, 1).flat(),
            GenerateClustered(50, 3, 1).flat());
  EXPECT_EQ(
      GeneratePoints(PointDistribution::kAnticorrelated, 50, 3, 1).flat(),
      GenerateAnticorrelated(50, 3, 1).flat());
}

TEST(GeneratorsTest, ParseNames) {
  EXPECT_TRUE(ParsePointDistribution("UN").ok());
  EXPECT_TRUE(ParsePointDistribution("cl").ok());
  EXPECT_TRUE(ParsePointDistribution("AC").ok());
  EXPECT_TRUE(ParsePointDistribution("exp").ok());
  EXPECT_FALSE(ParsePointDistribution("bogus").ok());
  EXPECT_STREQ(PointDistributionName(PointDistribution::kUniform), "UN");
}

// ---------------------------------------------------------------- Weights

TEST(WeightsTest, UniformRowsAreOnSimplex) {
  Dataset ws = GenerateWeightsUniform(1000, 5, 31);
  EXPECT_TRUE(ValidateWeightDataset(ws).ok());
}

TEST(WeightsTest, UniformSimplexIsSymmetric) {
  Dataset ws = GenerateWeightsUniform(50000, 4, 32);
  for (size_t j = 0; j < 4; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < ws.size(); ++i) mean += ws.row(i)[j];
    mean /= static_cast<double>(ws.size());
    EXPECT_NEAR(mean, 0.25, 0.005);
  }
}

TEST(WeightsTest, ClusteredRowsAreOnSimplex) {
  Dataset ws = GenerateWeightsClustered(1000, 6, 33);
  EXPECT_TRUE(ValidateWeightDataset(ws).ok());
}

TEST(WeightsTest, NormalAndExponentialAreOnSimplex) {
  EXPECT_TRUE(ValidateWeightDataset(GenerateWeightsNormal(500, 6, 34)).ok());
  EXPECT_TRUE(
      ValidateWeightDataset(GenerateWeightsExponential(500, 6, 35)).ok());
}

TEST(WeightsTest, SparseHasExactZeros) {
  WeightGeneratorOptions opts;
  opts.sparsity_nonzero_fraction = 0.3;
  Dataset ws = GenerateWeightsSparse(500, 10, 36, opts);
  EXPECT_TRUE(ValidateWeightDataset(ws).ok());
  size_t zeros = 0;
  for (double v : ws.flat()) zeros += v == 0.0;
  const double zero_fraction =
      static_cast<double>(zeros) / static_cast<double>(ws.flat().size());
  EXPECT_GT(zero_fraction, 0.55);
  EXPECT_LT(zero_fraction, 0.85);
}

TEST(WeightsTest, SparseAlwaysHasSupport) {
  WeightGeneratorOptions opts;
  opts.sparsity_nonzero_fraction = 0.01;  // forces the fallback path often
  Dataset ws = GenerateWeightsSparse(300, 8, 37, opts);
  for (size_t i = 0; i < ws.size(); ++i) {
    double sum = 0.0;
    for (double v : ws.row(i)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(WeightsTest, ParseNames) {
  EXPECT_TRUE(ParseWeightDistribution("UN").ok());
  EXPECT_TRUE(ParseWeightDistribution("SPARSE").ok());
  EXPECT_FALSE(ParseWeightDistribution("zzz").ok());
  EXPECT_STREQ(WeightDistributionName(WeightDistribution::kClustered), "CL");
}

// ---------------------------------------------------------------- Real-like

TEST(RealLikeTest, HouseRowsArePercentages) {
  Dataset house = MakeHouseLike(2000, 41);
  EXPECT_EQ(house.dim(), kHouseDim);
  for (size_t i = 0; i < house.size(); ++i) {
    double sum = 0.0;
    for (double v : house.row(i)) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 100.0, 1e-9);
  }
}

TEST(RealLikeTest, HouseCategorySkewFollowsBudgetShape) {
  Dataset house = MakeHouseLike(20000, 42);
  std::vector<double> means(kHouseDim, 0.0);
  for (size_t i = 0; i < house.size(); ++i) {
    for (size_t j = 0; j < kHouseDim; ++j) means[j] += house.row(i)[j];
  }
  for (double& m : means) m /= static_cast<double>(house.size());
  // Property tax (5) > insurance (4) > electricity (1) > water (2).
  EXPECT_GT(means[5], means[4]);
  EXPECT_GT(means[4], means[1]);
  EXPECT_GT(means[1], means[2]);
}

TEST(RealLikeTest, ColorValuesInUnitCube) {
  Dataset color = MakeColorLike(3000, 43);
  EXPECT_EQ(color.dim(), kColorDim);
  EXPECT_GE(color.MinValue(), 0.0);
  EXPECT_LE(color.MaxValue(), 1.0);
}

TEST(RealLikeTest, ColorChannelsCorrelated) {
  Dataset color = MakeColorLike(20000, 44);
  // Channel 0 vs channel 1 share component brightness: correlation > 0.3.
  double m0 = 0, m1 = 0;
  for (size_t i = 0; i < color.size(); ++i) {
    m0 += color.row(i)[0];
    m1 += color.row(i)[1];
  }
  m0 /= static_cast<double>(color.size());
  m1 /= static_cast<double>(color.size());
  double cov = 0, v0 = 0, v1 = 0;
  for (size_t i = 0; i < color.size(); ++i) {
    const double d0 = color.row(i)[0] - m0;
    const double d1 = color.row(i)[1] - m1;
    cov += d0 * d1;
    v0 += d0 * d0;
    v1 += d1 * d1;
  }
  EXPECT_GT(cov / std::sqrt(v0 * v1), 0.3);
}

TEST(RealLikeTest, DianpingRestaurantsOnBadnessScale) {
  Dataset rest = MakeDianpingRestaurantsLike(3000, 45);
  EXPECT_EQ(rest.dim(), kDianpingDim);
  EXPECT_GE(rest.MinValue(), 0.0);
  EXPECT_LE(rest.MaxValue(), 5.0);
  // Latent quality correlates the aspects within a restaurant: the
  // between-restaurant variance of the row mean stays substantial.
  double mean_of_means = 0.0;
  for (size_t i = 0; i < rest.size(); ++i) {
    double m = 0.0;
    for (double v : rest.row(i)) m += v;
    mean_of_means += m / kDianpingDim;
  }
  mean_of_means /= static_cast<double>(rest.size());
  EXPECT_GT(mean_of_means, 0.5);
  EXPECT_LT(mean_of_means, 2.5);  // most restaurants are decent (low badness)
}

TEST(RealLikeTest, DianpingUsersAreValidPreferences) {
  Dataset users = MakeDianpingUsersLike(2000, 46);
  EXPECT_EQ(users.dim(), kDianpingDim);
  EXPECT_TRUE(ValidateWeightDataset(users).ok());
}

TEST(RealLikeTest, DeterministicPerSeed) {
  EXPECT_EQ(MakeHouseLike(100, 1).flat(), MakeHouseLike(100, 1).flat());
  EXPECT_NE(MakeHouseLike(100, 1).flat(), MakeHouseLike(100, 2).flat());
}

}  // namespace
}  // namespace gir

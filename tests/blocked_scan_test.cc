// Property tests for the blocked, weight-batched scan engine: results and
// ranks must be identical to the weight-at-a-time scan and the naive
// oracle across dimensions, bound modes, partitioners (uniform and
// quantile-adaptive) and tie-heavy data, for the sequential, parallel and
// batched entry points.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/naive.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/adaptive_grid.h"
#include "grid/blocked_scan.h"
#include "grid/gir_queries.h"
#include "grid/parallel_gir.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeTieHeavy;
using testing_util::MakeWorkload;
using testing_util::Workload;

struct Case {
  size_t d;
  BoundMode mode;
  bool adaptive;
  bool tie_heavy;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = "d" + std::to_string(c.d);
  switch (c.mode) {
    case BoundMode::kUpperFirst:
      name += "UpperFirst";
      break;
    case BoundMode::kFused:
      name += "Fused";
      break;
    case BoundMode::kExactWeight:
      name += "ExactWeight";
      break;
  }
  name += c.adaptive ? "Adaptive" : "Uniform";
  name += c.tie_heavy ? "Ties" : "Smooth";
  return name;
}

class BlockedEquivalence : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const Case& c = GetParam();
    const size_t n = 384;
    const size_t m = 60;
    points_ = c.tie_heavy ? MakeTieHeavy(n, c.d, 11)
                          : GenerateUniform(n, c.d, 11);
    weights_ = GenerateWeightsUniform(m, c.d, 12);

    GirOptions serial_opts;
    serial_opts.bound_mode = c.mode;
    GirOptions blocked_opts = serial_opts;
    blocked_opts.scan_mode = ScanMode::kBlocked;
    if (c.adaptive) {
      serial_ = BuildAdaptiveGir(points_, weights_, serial_opts).value();
      blocked_ = BuildAdaptiveGir(points_, weights_, blocked_opts).value();
    } else {
      serial_ = GirIndex::Build(points_, weights_, serial_opts).value();
      blocked_ = GirIndex::Build(points_, weights_, blocked_opts).value();
    }
  }

  std::vector<std::vector<double>> Queries() const {
    std::vector<std::vector<double>> qs;
    for (size_t qi : {size_t{0}, size_t{7}, size_t{128}}) {
      qs.emplace_back(points_.row(qi).begin(), points_.row(qi).end());
    }
    // A point dominated by much of the data (near-max corner) and one
    // dominating most of it (near zero).
    qs.emplace_back(points_.dim(), 9500.0);
    qs.emplace_back(points_.dim(), 3.0);
    return qs;
  }

  Dataset points_{1};
  Dataset weights_{1};
  std::optional<GirIndex> serial_;
  std::optional<GirIndex> blocked_;
};

TEST_P(BlockedEquivalence, ReverseTopKMatchesSerialAndOracle) {
  for (const auto& q : Queries()) {
    for (size_t k : {size_t{1}, size_t{10}, size_t{100}}) {
      const ReverseTopKResult expected =
          NaiveReverseTopK(points_, weights_, q, k);
      EXPECT_EQ(serial_->ReverseTopK(q, k), expected) << "k=" << k;
      EXPECT_EQ(blocked_->ReverseTopK(q, k), expected) << "k=" << k;
    }
  }
}

TEST_P(BlockedEquivalence, ReverseKRanksMatchesSerialAndOracle) {
  for (const auto& q : Queries()) {
    for (size_t k : {size_t{1}, size_t{5}, size_t{25}}) {
      const ReverseKRanksResult expected =
          NaiveReverseKRanks(points_, weights_, q, k);
      EXPECT_EQ(serial_->ReverseKRanks(q, k), expected) << "k=" << k;
      EXPECT_EQ(blocked_->ReverseKRanks(q, k), expected) << "k=" << k;
    }
  }
}

TEST_P(BlockedEquivalence, ParallelBlockedMatchesSerial) {
  ThreadPool pool(3);
  const auto q = Queries()[1];
  EXPECT_EQ(ParallelReverseTopK(*blocked_, q, 20, pool),
            serial_->ReverseTopK(q, 20));
  EXPECT_EQ(ParallelReverseKRanks(*blocked_, q, 10, pool),
            serial_->ReverseKRanks(q, 10));
}

TEST_P(BlockedEquivalence, BatchedQueriesMatchSingleQuery) {
  Dataset queries(points_.dim());
  for (const auto& q : Queries()) queries.AppendUnchecked(q);
  const auto rtk = blocked_->ReverseTopKBatch(queries, 12);
  const auto rkr = blocked_->ReverseKRanksBatch(queries, 8);
  ASSERT_EQ(rtk.size(), queries.size());
  ASSERT_EQ(rkr.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(rtk[qi], serial_->ReverseTopK(queries.row(qi), 12)) << qi;
    EXPECT_EQ(rkr[qi], serial_->ReverseKRanks(queries.row(qi), 8)) << qi;
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (size_t d : {2, 4, 16, 50}) {
    for (BoundMode mode : {BoundMode::kExactWeight, BoundMode::kUpperFirst}) {
      for (bool adaptive : {false, true}) {
        for (bool ties : {false, true}) {
          cases.push_back(Case{d, mode, adaptive, ties});
        }
      }
    }
  }
  // One fused-mode spot check (fused and upper-first share bound values).
  cases.push_back(Case{4, BoundMode::kFused, false, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockedEquivalence,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------------------ raw engine

TEST(BlockedScannerTest, RanksMatchGInTopKUnderAnyThreshold) {
  Workload wl = MakeWorkload(300, 24, 6, 21);
  GirOptions opts;
  auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
  BlockedScanner scanner(wl.points, index.point_cells(), wl.weights,
                         index.weight_cells(), index.grid(),
                         opts.bound_mode);
  const auto qctx = scanner.MakeQueryContext(wl.points.row(5), true);
  GinContext ctx{&wl.points, &index.point_cells(), &index.grid(),
                 opts.bound_mode};
  GinScratch gin_scratch;
  BlockedScratch scratch;
  const int64_t cap = static_cast<int64_t>(wl.points.size()) + 1;
  for (int64_t threshold : {int64_t{1}, int64_t{13}, cap}) {
    std::vector<int64_t> thresholds(wl.weights.size(), threshold);
    std::vector<int64_t> ranks(wl.weights.size());
    scanner.RankBatch(wl.points.row(5), qctx, 0, wl.weights.size(),
                      thresholds.data(), ranks.data(), scratch, nullptr);
    for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
      const int64_t expected =
          GInTopK(ctx, wl.weights.row(wi), index.weight_cells().row(wi),
                  wl.points.row(5), threshold, nullptr, gin_scratch);
      EXPECT_EQ(ranks[wi], expected) << "w=" << wi << " thr=" << threshold;
    }
  }
}

TEST(BlockedScannerTest, DominatorContextFindsExactDominators) {
  Workload wl = MakeWorkload(250, 4, 5, 31);
  GirOptions opts;
  auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
  BlockedScanner scanner(wl.points, index.point_cells(), wl.weights,
                         index.weight_cells(), index.grid(),
                         opts.bound_mode);
  std::vector<double> q(5, 6000.0);
  const auto qctx = scanner.MakeQueryContext(q, true);
  int64_t expected = 0;
  for (size_t j = 0; j < wl.points.size(); ++j) {
    const bool dom = Dominates(wl.points.row(j), q);
    EXPECT_EQ(qctx.dominated[j] != 0, dom) << j;
    expected += dom ? 1 : 0;
  }
  EXPECT_EQ(qctx.dominator_count, expected);
  EXPECT_GT(expected, 0);  // q sits well inside the value range

  const auto off = scanner.MakeQueryContext(q, false);
  EXPECT_TRUE(off.dominated.empty());
  EXPECT_EQ(off.dominator_count, 0);
}

// ------------------------------------------------------------- SoA mirror

TEST(ApproxVectorsSoaTest, ColumnsMirrorRowsWithZeroPadding) {
  Dataset ds = GenerateUniform(100, 7, 41);
  auto part = Partitioner::Uniform(32, 10000.0).value();
  ApproxVectors av = ApproxVectors::Build(ds, part);
  EXPECT_GE(av.column_stride(), av.size());
  EXPECT_EQ(av.column_stride() % ApproxVectors::kColumnPad, 0u);
  for (size_t i = 0; i < av.dim(); ++i) {
    const uint8_t* col = av.column(i);
    for (size_t j = 0; j < av.size(); ++j) {
      EXPECT_EQ(col[j], av.row(j)[i]);
    }
    for (size_t j = av.size(); j < av.column_stride(); ++j) {
      EXPECT_EQ(col[j], 0);
    }
  }
  EXPECT_EQ(av.SoaMemoryBytes(), av.dim() * av.column_stride());
}

// ------------------------------------------------------------ SIMD kernels

TEST(SimdKernelTest, ScaledBytesMatchesScalarReference) {
  std::vector<uint8_t> cells(203);
  for (size_t j = 0; j < cells.size(); ++j) {
    cells[j] = static_cast<uint8_t>((j * 37 + 11) % 256);
  }
  std::vector<double> acc(cells.size(), 0.5);
  std::vector<double> ref = acc;
  simd::AccumulateScaledBytes(cells.data(), 0.125, acc.data(), cells.size());
  for (size_t j = 0; j < cells.size(); ++j) {
    ref[j] += 0.125 * static_cast<double>(cells[j]);
  }
  // One fused-multiply-add of exactly representable inputs: bitwise equal.
  EXPECT_EQ(acc, ref);
}

TEST(SimdKernelTest, LookupBoundsMatchesScalarReference) {
  std::vector<uint8_t> cells(131);
  for (size_t j = 0; j < cells.size(); ++j) {
    cells[j] = static_cast<uint8_t>((j * 53 + 5) % 32);
  }
  std::vector<double> tlo(32), thi(32);
  for (size_t c = 0; c < 32; ++c) {
    tlo[c] = 0.25 * static_cast<double>(c);
    thi[c] = 0.25 * static_cast<double>(c + 1);
  }
  std::vector<double> lo(cells.size(), 1.0), hi(cells.size(), 2.0);
  std::vector<double> rlo = lo, rhi = hi;
  simd::AccumulateLookupBounds(cells.data(), tlo.data(), thi.data(),
                               lo.data(), hi.data(), cells.size());
  for (size_t j = 0; j < cells.size(); ++j) {
    rlo[j] += tlo[cells[j]];
    rhi[j] += thi[cells[j]];
  }
  EXPECT_EQ(lo, rlo);
  EXPECT_EQ(hi, rhi);
}

// ------------------------------------------------- stats bugfix coverage

// q is dominated by >= k points, so Algorithm 2 aborts early; the stats
// must report the number of weights whose scans actually ran, not zero
// (the pre-fix behaviour) and not |W|.
TEST(QueryStatsTest, AbortedReverseTopKCountsEvaluatedWeights) {
  auto points =
      Dataset::FromRows({{1.0, 1.0}, {2.0, 2.0}, {9.0, 9.0}, {8.0, 7.0}})
          .value();
  auto weights = Dataset::FromRows({{0.5, 0.5},
                                    {0.25, 0.75},
                                    {0.75, 0.25},
                                    {0.4, 0.6}})
                     .value();
  GirOptions opts;
  auto index = GirIndex::Build(points, weights, opts).value();
  std::vector<double> q{5.0, 5.0};  // dominated by (1,1) and (2,2)

  QueryStats stats;
  EXPECT_TRUE(index.ReverseTopK(q, 1, &stats).empty());
  // The first weight's scan discovers a dominator, so exactly one weight
  // was evaluated before the >= k dominators abort.
  EXPECT_EQ(stats.weights_evaluated, 1u);

  // Parallel driver: every weight evaluated before the abort is counted;
  // with a dominator found in the first stripe the total stays below |W|+1
  // and above zero.
  ThreadPool pool(2);
  QueryStats pstats;
  EXPECT_TRUE(ParallelReverseTopK(index, q, 1, pool, &pstats).empty());
  EXPECT_GE(pstats.weights_evaluated, 1u);
  EXPECT_LE(pstats.weights_evaluated, weights.size());

  // Non-aborted queries still count every weight.
  QueryStats full;
  index.ReverseTopK(q, 4, &full);
  EXPECT_EQ(full.weights_evaluated, weights.size());
}

}  // namespace
}  // namespace gir

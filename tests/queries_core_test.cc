#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/naive.h"
#include "core/rank.h"
#include "core/simple_scan.h"
#include "core/topk.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

// ------------------------------------------------------------ Naive oracle

TEST(NaiveReverseTopKTest, PaperFigure1RT2) {
  // Fig. 1(b): the RT-2 result for each phone.
  auto phones = Dataset::FromRows({{0.6, 0.7},
                                   {0.2, 0.3},
                                   {0.1, 0.6},
                                   {0.7, 0.5},
                                   {0.8, 0.2}})
                    .value();
  auto users =
      Dataset::FromRows({{0.8, 0.2}, {0.3, 0.7}, {0.9, 0.1}}).value();
  // p1: empty; p2: all three; p3: Tom, Spike; p4: empty; p5: Jerry.
  EXPECT_TRUE(NaiveReverseTopK(phones, users, phones.row(0), 2).empty());
  EXPECT_EQ(NaiveReverseTopK(phones, users, phones.row(1), 2),
            (ReverseTopKResult{0, 1, 2}));
  EXPECT_EQ(NaiveReverseTopK(phones, users, phones.row(2), 2),
            (ReverseTopKResult{0, 2}));
  EXPECT_TRUE(NaiveReverseTopK(phones, users, phones.row(3), 2).empty());
  EXPECT_EQ(NaiveReverseTopK(phones, users, phones.row(4), 2),
            (ReverseTopKResult{1}));
}

TEST(NaiveReverseKRanksTest, PaperFigure1R1Rank) {
  auto phones = Dataset::FromRows({{0.6, 0.7},
                                   {0.2, 0.3},
                                   {0.1, 0.6},
                                   {0.7, 0.5},
                                   {0.8, 0.2}})
                    .value();
  auto users =
      Dataset::FromRows({{0.8, 0.2}, {0.3, 0.7}, {0.9, 0.1}}).value();
  // Fig. 1(c): R1-R of p1 is Tom (rank 2 zero-based; paper's rank 3 is
  // 1-based). Tom's id 0 wins the (rank, id) tie against Spike's id 2.
  auto r1 = NaiveReverseKRanks(phones, users, phones.row(0), 1);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].weight_id, 0u);
  EXPECT_EQ(r1[0].rank, 2);

  // p5's best user is Jerry (rank 1 in the paper's 1-based list).
  auto r5 = NaiveReverseKRanks(phones, users, phones.row(4), 1);
  ASSERT_EQ(r5.size(), 1u);
  EXPECT_EQ(r5[0].weight_id, 1u);
  EXPECT_EQ(r5[0].rank, 1);
}

TEST(NaiveReverseKRanksTest, DefinitionConsistentWithRankOfQuery) {
  Workload wl = MakeWorkload(80, 40, 3, 101);
  auto result = NaiveReverseKRanks(wl.points, wl.weights, wl.points.row(5), 7);
  ASSERT_EQ(result.size(), 7u);
  for (const auto& entry : result) {
    EXPECT_EQ(entry.rank, RankOfQuery(wl.points, wl.weights.row(entry.weight_id),
                                      wl.points.row(5)));
  }
  // Sorted by (rank, id) and no non-member beats a member.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_TRUE(result[i - 1] < result[i]);
  }
  for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
    bool in_result = false;
    for (const auto& entry : result) in_result |= entry.weight_id == wi;
    if (in_result) continue;
    RankedWeight outsider{static_cast<VectorId>(wi),
                          RankOfQuery(wl.points, wl.weights.row(wi),
                                      wl.points.row(5))};
    EXPECT_TRUE(result.back() < outsider);
  }
}

TEST(NaiveReverseKRanksTest, KLargerThanWeightsReturnsAll) {
  Workload wl = MakeWorkload(30, 8, 2, 103);
  auto result =
      NaiveReverseKRanks(wl.points, wl.weights, wl.points.row(0), 100);
  EXPECT_EQ(result.size(), 8u);
}

TEST(NaiveReverseTopKTest, TopKMembershipMatchesDefinition) {
  // Definition 2: w in result iff q scores <= the k-th best point.
  Workload wl = MakeWorkload(60, 25, 4, 105);
  const size_t k = 5;
  ConstRow q = wl.points.row(3);
  auto result = NaiveReverseTopK(wl.points, wl.weights, q, k);
  for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
    auto topk = TopK(wl.points, wl.weights.row(wi), k);
    const Score kth = topk.back().score;
    const bool qualifies = InnerProduct(wl.weights.row(wi), q) <= kth;
    const bool in_result =
        std::find(result.begin(), result.end(), static_cast<VectorId>(wi)) !=
        result.end();
    EXPECT_EQ(qualifies, in_result) << "weight " << wi;
  }
}

// ------------------------------------------------------------ SimpleScan

struct SimCase {
  size_t n, m, d, k;
  uint64_t seed;
};

class SimpleScanEquivalence : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimpleScanEquivalence, ReverseTopKMatchesNaive) {
  const SimCase& c = GetParam();
  Workload wl = MakeWorkload(c.n, c.m, c.d, c.seed);
  SimpleScan sim(wl.points, wl.weights);
  for (size_t qi : {size_t{0}, c.n / 2, c.n - 1}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(sim.ReverseTopK(q, c.k),
              NaiveReverseTopK(wl.points, wl.weights, q, c.k));
  }
}

TEST_P(SimpleScanEquivalence, ReverseKRanksMatchesNaive) {
  const SimCase& c = GetParam();
  Workload wl = MakeWorkload(c.n, c.m, c.d, c.seed);
  SimpleScan sim(wl.points, wl.weights);
  for (size_t qi : {size_t{0}, c.n / 2, c.n - 1}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(sim.ReverseKRanks(q, c.k),
              NaiveReverseKRanks(wl.points, wl.weights, q, c.k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimpleScanEquivalence,
    ::testing::Values(SimCase{50, 20, 2, 3, 1}, SimCase{200, 50, 3, 10, 2},
                      SimCase{100, 100, 4, 5, 3}, SimCase{300, 30, 6, 20, 4},
                      SimCase{150, 40, 8, 1, 5}, SimCase{80, 60, 10, 7, 6},
                      SimCase{500, 20, 5, 50, 7}, SimCase{60, 10, 16, 4, 8}));

TEST(SimpleScanTest, EmptyWeightsGivesEmptyResults) {
  Dataset points = testing_util::SmallPoints(20, 3, 9);
  Dataset weights(3);
  SimpleScan sim(points, weights);
  EXPECT_TRUE(sim.ReverseTopK(points.row(0), 5).empty());
  EXPECT_TRUE(sim.ReverseKRanks(points.row(0), 5).empty());
}

TEST(SimpleScanTest, KZero) {
  Workload wl = MakeWorkload(20, 10, 3, 10);
  SimpleScan sim(wl.points, wl.weights);
  // k = 0: no weight can rank q in its top-0; reverse k-ranks of size 0.
  EXPECT_TRUE(sim.ReverseTopK(wl.points.row(0), 0).empty());
  EXPECT_TRUE(sim.ReverseKRanks(wl.points.row(0), 0).empty());
}

TEST(SimpleScanTest, DominBufferReducesVisits) {
  // A query point dominated by many points: the second and later weight
  // scans skip the dominating points.
  Dataset points = testing_util::SmallPoints(2000, 4, 11);
  Dataset weights = testing_util::SmallWeights(50, 4, 12);
  // Synthesize a clearly bad query: component-wise near the max.
  std::vector<double> q(4, 9999.0);
  SimpleScan sim(points, weights);
  QueryStats stats;
  sim.ReverseKRanks(q, 5, &stats);
  EXPECT_GT(stats.points_dominated, 0u);
}

TEST(SimpleScanTest, ReverseTopKEmptyWhenKDominatorsExist) {
  // q is dominated by >= k points => empty RTK result (Alg. 2 lines 7-8).
  auto points = Dataset::FromRows(
                    {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {10.0, 10.0}})
                    .value();
  auto weights = Dataset::FromRows({{0.5, 0.5}, {0.9, 0.1}}).value();
  SimpleScan sim(points, weights);
  std::vector<double> q{9.0, 9.0};
  EXPECT_TRUE(sim.ReverseTopK(q, 2).empty());
  EXPECT_EQ(NaiveReverseTopK(points, weights, q, 2), ReverseTopKResult{});
}

TEST(SimpleScanTest, QueryNotInDataset) {
  Workload wl = MakeWorkload(100, 30, 3, 13);
  std::vector<double> q{123.0, 4567.0, 89.0};
  SimpleScan sim(wl.points, wl.weights);
  EXPECT_EQ(sim.ReverseTopK(q, 10),
            NaiveReverseTopK(wl.points, wl.weights, q, 10));
  EXPECT_EQ(sim.ReverseKRanks(q, 10),
            NaiveReverseKRanks(wl.points, wl.weights, q, 10));
}

TEST(SimpleScanTest, AllWeightsQualifyForBestPoint) {
  // The origin out-ranks everything for every weight: rank 0 everywhere.
  Dataset points(2);
  std::vector<double> origin{0.0, 0.0};
  ASSERT_TRUE(points.Append(origin).ok());
  Dataset more = testing_util::SmallPoints(50, 2, 14);
  for (size_t i = 0; i < more.size(); ++i) {
    points.AppendUnchecked(more.row(i));
  }
  Dataset weights = testing_util::SmallWeights(10, 2, 15);
  SimpleScan sim(points, weights);
  auto result = sim.ReverseTopK(points.row(0), 1);
  EXPECT_EQ(result.size(), weights.size());
}

}  // namespace
}  // namespace gir

// End-to-end tests of the GIRNET01 query server (server/server.h): a real
// QueryServer on a loopback ephemeral port, driven through RemoteClient
// and — for the hostile-frame cases — a raw socket. Covers answer
// equality with local execution, micro-batch coalescing, admission
// control under overload, malformed/hostile frames, deadline expiry,
// graceful drain, and churn-vs-query bit-identity via serial replay of
// the version stamps.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "data/weights.h"
#include "grid/dynamic_index.h"
#include "grid/sharded_index.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

// TSan slows execution ~10x, which shifts the timing-sensitive
// saturation assertions; the affected tests relax (never skip) there.
#if defined(__SANITIZE_THREAD__)
#define GIR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GIR_TSAN_BUILD 1
#endif
#endif
#ifndef GIR_TSAN_BUILD
#define GIR_TSAN_BUILD 0
#endif

namespace gir {
namespace {

Dataset MakePoints(size_t n, size_t d, uint64_t seed) {
  return GeneratePoints(PointDistribution::kUniform, n, d, seed);
}

Dataset MakeWeights(size_t m, size_t d, uint64_t seed) {
  return GenerateWeights(WeightDistribution::kUniform, m, d, seed);
}

std::unique_ptr<ShardedGirIndex> BuildIndex(const Dataset& points,
                                            const Dataset& weights,
                                            ScanMode mode = ScanMode::kBlocked,
                                            size_t shards = 1) {
  ShardedIndexOptions options;
  options.shards = shards;
  options.dynamic.gir.scan_mode = mode;
  auto index = ShardedGirIndex::Build(points, weights, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

RemoteClient MustConnect(const QueryServer& server) {
  auto client = RemoteClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Raw TCP connection for the hostile-frame tests; sends whatever bytes
/// the test forges, bypassing the client's well-formed encoders.
class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  void SendRaw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads one response frame and decodes it; false once the server has
  /// hung up.
  bool ReadResponse(NetResponse* response) {
    std::string body;
    if (!ReadFrameBody(fd_, kMaxFrameBytes, &body).ok()) return false;
    return DecodeResponseBody(body, response);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(QueryServerTest, StartsOnEphemeralPortAndStopsTwice) {
  const Dataset points = MakePoints(200, 3, 1);
  const Dataset weights = MakeWeights(50, 3, 2);
  auto index = BuildIndex(points, weights);
  QueryServer server(index.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.Shutdown();
  server.Shutdown();  // idempotent
}

TEST(QueryServerTest, PingInfoAndStatsRoundTrip) {
  const Dataset points = MakePoints(300, 4, 3);
  const Dataset weights = MakeWeights(80, 4, 4);
  auto index = BuildIndex(points, weights, ScanMode::kBlocked, /*shards=*/2);
  QueryServer server(index.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  RemoteClient client = MustConnect(server);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.last_index_version(), 0u);

  auto info = client.Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().dim, 4u);
  EXPECT_EQ(info.value().live_points, 300u);
  EXPECT_EQ(info.value().live_weights, 80u);
  EXPECT_EQ(info.value().generation, 0u);
  EXPECT_EQ(info.value().dirty, 0u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("requests_received"), std::string::npos);
  EXPECT_NE(stats.value().find("qps"), std::string::npos);
  EXPECT_NE(stats.value().find("latency_p99_us_le"), std::string::npos);

  // The scan-work counters are part of the snapshot from the start, and
  // after a query has run the streamed count must be nonzero (the blocked
  // engine always streams at least the band blocks).
  EXPECT_NE(stats.value().find("scan_points_streamed"), std::string::npos);
  EXPECT_NE(stats.value().find("scan_points_skipped"), std::string::npos);
  EXPECT_NE(stats.value().find("scan_skip_rate_pct"), std::string::npos);
  ASSERT_TRUE(client.ReverseKRanks(points.row(0), 4).ok());
  auto after = client.Stats();
  ASSERT_TRUE(after.ok());
  const std::string& text = after.value();
  const size_t pos = text.find("scan_points_streamed ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(std::strtoull(
                text.c_str() + pos + sizeof("scan_points_streamed ") - 1,
                nullptr, 10),
            0u);

  // The sharded server appends one `shardN.<key> <value>` row set per
  // shard; after a query both shards must report it applied.
  for (const char* key :
       {"shard0.applied_seq", "shard0.generation", "shard0.queue_depth",
        "shard0.live_weights", "shard0.queries", "shard0.qps_share_pct",
        "shard0.latency_p99_us_le", "shard1.queries"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
  const size_t q0 = text.find("shard0.queries ");
  const size_t q1 = text.find("shard1.queries ");
  ASSERT_NE(q0, std::string::npos);
  ASSERT_NE(q1, std::string::npos);
  EXPECT_GE(std::strtoull(text.c_str() + q0 + sizeof("shard0.queries ") - 1,
                          nullptr, 10),
            1u);
  EXPECT_GE(std::strtoull(text.c_str() + q1 + sizeof("shard1.queries ") - 1,
                          nullptr, 10),
            1u);
}

TEST(QueryServerTest, SingleQueriesMatchLocalExecution) {
  const Dataset points = MakePoints(500, 4, 5);
  const Dataset weights = MakeWeights(120, 4, 6);
  auto index = BuildIndex(points, weights);
  QueryServer server(index.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RemoteClient client = MustConnect(server);

  for (size_t row = 0; row < 20; ++row) {
    for (uint32_t k : {1u, 5u, 16u}) {
      auto remote_rtk = client.ReverseTopK(points.row(row), k);
      ASSERT_TRUE(remote_rtk.ok()) << remote_rtk.status().ToString();
      EXPECT_EQ(remote_rtk.value(), index->ReverseTopK(points.row(row), k));

      auto remote_rkr = client.ReverseKRanks(points.row(row), k);
      ASSERT_TRUE(remote_rkr.ok());
      const auto local = index->ReverseKRanks(points.row(row), k);
      ASSERT_EQ(remote_rkr.value().size(), local.size());
      for (size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ(remote_rkr.value()[i].weight_id, local[i].weight_id);
        EXPECT_EQ(remote_rkr.value()[i].rank, local[i].rank);
      }
    }
  }
}

TEST(QueryServerTest, WireBatchLargerThanMicroBatchIsNeverSplit) {
  const Dataset points = MakePoints(400, 3, 7);
  const Dataset weights = MakeWeights(90, 3, 8);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.max_batch = 16;  // far below the wire batch below
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  RemoteClient client = MustConnect(server);

  Dataset queries(points.dim());
  for (size_t i = 0; i < 200; ++i) queries.AppendUnchecked(points.row(i));
  auto remote = client.ReverseTopKBatch(queries, 8);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote.value(), index->ReverseTopKBatch(queries, 8));

  auto remote_rkr = client.ReverseKRanksBatch(queries, 4);
  ASSERT_TRUE(remote_rkr.ok());
  const auto local = index->ReverseKRanksBatch(queries, 4);
  ASSERT_EQ(remote_rkr.value().size(), local.size());
  for (size_t q = 0; q < local.size(); ++q) {
    ASSERT_EQ(remote_rkr.value()[q].size(), local[q].size());
    for (size_t i = 0; i < local[q].size(); ++i) {
      EXPECT_EQ(remote_rkr.value()[q][i].weight_id, local[q][i].weight_id);
      EXPECT_EQ(remote_rkr.value()[q][i].rank, local[q][i].rank);
    }
  }
}

TEST(QueryServerTest, ConcurrentClientsCoalesceIntoMicroBatches) {
  const Dataset points = MakePoints(600, 4, 9);
  const Dataset weights = MakeWeights(150, 4, 10);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.batch_wait_us = 3000;  // wide window so peers always co-batch
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 25;
  constexpr uint32_t kK = 8;
  std::vector<ReverseTopKResult> expected(points.size());
  for (size_t i = 0; i < 64; ++i) {
    expected[i] = index->ReverseTopK(points.row(i), kK);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RemoteClient client = MustConnect(server);
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t row = (t * kRounds + round) % 64;
        auto result = client.ReverseTopK(points.row(row), kK);
        if (!result.ok() || result.value() != expected[row]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // With 8 blocked round-trip clients and a 3 ms fill window, the
  // scheduler must have merged requests: strictly fewer dispatches than
  // wire requests.
  RemoteClient client = MustConnect(server);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  const std::string& text = stats.value();
  const auto value_of = [&](const std::string& key) {
    const size_t pos = text.find(key + " ");
    EXPECT_NE(pos, std::string::npos) << key;
    return std::strtoull(text.c_str() + pos + key.size() + 1, nullptr, 10);
  };
  const uint64_t requests = value_of("requests_completed");
  const uint64_t batches = value_of("batches_dispatched");
  EXPECT_EQ(requests, kThreads * kRounds);
  EXPECT_LT(batches, requests);
}

TEST(QueryServerTest, OverloadRejectsBeyondQueueLimitAndStaysBounded) {
  const Dataset points = MakePoints(300, 3, 11);
  const Dataset weights = MakeWeights(60, 3, 12);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.queue_limit = 4;
  // max_batch above queue_limit: the scheduler can never fill a batch
  // early, so the admitted rows sit the whole fill window and every
  // request arriving meanwhile is rejected — deterministically, however
  // staggered the client threads get on a loaded machine.
  options.max_batch = 8;
  options.batch_wait_us = 100000;  // hold the queue full for 100 ms
  // Every client sends the identical query; with the cache on, a single
  // early fill would serve the rest at admission and the queue would
  // never overflow. This test is about the queue bound, so cache off.
  options.enable_cache = false;
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 24;
  std::atomic<int> ok_count{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> wrong{0};
  // All clients connect first, then fire together: connection setup is
  // slow (very slow under sanitizers), and staggered arrivals would let
  // the scheduler drain each max_batch as it fills without the queue
  // ever reaching its bound.
  std::atomic<size_t> ready{0};
  const ReverseTopKResult expected = index->ReverseTopK(points.row(0), 4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      RemoteClient client = MustConnect(server);
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      auto result = client.ReverseTopK(points.row(0), 4);
      if (result.ok()) {
        ok_count.fetch_add(1);
        if (result.value() != expected) wrong.fetch_add(1);
      } else if (client.last_net_status() == NetStatus::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(overloaded.load(), 0);  // admission control actually rejected
  EXPECT_GT(ok_count.load(), 0);    // and admitted work still completed
  EXPECT_EQ(ok_count.load() + overloaded.load(),
            static_cast<int>(kClients));
  EXPECT_EQ(server.metrics().Render().find("rejected_overload 0"),
            std::string::npos);
}

TEST(QueryServerTest, DeadlineExpiresWhileQueuedBehindTheFillWindow) {
  const Dataset points = MakePoints(200, 3, 13);
  const Dataset weights = MakeWeights(40, 3, 14);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.batch_wait_us = 50000;  // 50 ms fill window
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  RemoteClient client = MustConnect(server);
  client.set_deadline_us(1);  // expires long before the window closes
  auto result = client.ReverseTopK(points.row(0), 4);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client.last_net_status(), NetStatus::kDeadlineExceeded);

  // The connection stays usable after a deadline rejection.
  client.set_deadline_us(0);
  auto retry = client.ReverseTopK(points.row(0), 4);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value(), index->ReverseTopK(points.row(0), 4));
}

TEST(QueryServerTest, MalformedFramesAreRejectedAndServerSurvives) {
  const Dataset points = MakePoints(200, 3, 15);
  const Dataset weights = MakeWeights(40, 3, 16);
  auto index = BuildIndex(points, weights);
  QueryServer server(index.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const auto frame = [](const std::string& body) {
    const uint32_t len = static_cast<uint32_t>(body.size());
    std::string bytes(reinterpret_cast<const char*>(&len), sizeof(len));
    return bytes + body;
  };
  const std::string magic(kNetMagic, sizeof(kNetMagic));

  {
    // Unknown verb byte.
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.SendRaw(magic + frame(std::string(16, '\xff')));
    NetResponse response;
    ASSERT_TRUE(raw.ReadResponse(&response));
    EXPECT_EQ(response.status, NetStatus::kMalformed);
    EXPECT_FALSE(raw.ReadResponse(&response));  // connection closed after
  }
  {
    // Truncated header: fewer bytes than the fixed request prefix.
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.SendRaw(magic + frame(std::string(3, '\x01')));
    NetResponse response;
    ASSERT_TRUE(raw.ReadResponse(&response));
    EXPECT_EQ(response.status, NetStatus::kMalformed);
  }
  {
    // Forged count: a reverse top-k whose num_queries*dim implies far
    // more payload than the frame carries.
    NetRequest req;
    req.verb = NetVerb::kReverseTopKBatch;
    req.k = 4;
    req.num_queries = 1u << 30;
    req.dim = 3;
    std::string body = EncodeRequestBody(req);  // encodes zero doubles
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.SendRaw(magic + frame(body));
    NetResponse response;
    ASSERT_TRUE(raw.ReadResponse(&response));
    EXPECT_EQ(response.status, NetStatus::kMalformed);
  }
  {
    // Trailing garbage after a well-formed request body.
    NetRequest req;
    req.verb = NetVerb::kPing;
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.SendRaw(magic + frame(EncodeRequestBody(req) + "JUNK"));
    NetResponse response;
    ASSERT_TRUE(raw.ReadResponse(&response));
    EXPECT_EQ(response.status, NetStatus::kMalformed);
  }
  {
    // Hostile length prefix beyond the frame cap.
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    const uint32_t huge = kMaxFrameBytes + 1;
    std::string bytes(reinterpret_cast<const char*>(&huge), sizeof(huge));
    raw.SendRaw(magic + bytes);
    NetResponse response;
    ASSERT_TRUE(raw.ReadResponse(&response));
    EXPECT_EQ(response.status, NetStatus::kMalformed);
  }
  {
    // Bad protocol magic: dropped without a reply.
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    raw.SendRaw("NOTGIRNE");
    NetResponse response;
    EXPECT_FALSE(raw.ReadResponse(&response));
  }
  {
    // A frame the peer abandons mid-body must not wedge the server.
    RawConnection raw(server.port());
    ASSERT_TRUE(raw.connected());
    const uint32_t len = 64;
    std::string bytes(reinterpret_cast<const char*>(&len), sizeof(len));
    raw.SendRaw(magic + bytes + "only-ten-b");
  }

  // After every attack the server still answers a well-formed client.
  RemoteClient client = MustConnect(server);
  auto result = client.ReverseTopK(points.row(0), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), index->ReverseTopK(points.row(0), 4));
  const std::string stats = server.metrics().Render();
  EXPECT_EQ(stats.find("malformed_frames 0"), std::string::npos);
}

TEST(QueryServerTest, SemanticallyInvalidRequestsGetInvalidArgument) {
  const Dataset points = MakePoints(200, 3, 17);
  const Dataset weights = MakeWeights(40, 3, 18);
  auto index = BuildIndex(points, weights);
  QueryServer server(index.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  RemoteClient client = MustConnect(server);

  const std::vector<double> wrong_dim = {1.0, 2.0};
  auto result = client.ReverseTopK(ConstRow(wrong_dim.data(), 2), 4);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client.last_net_status(), NetStatus::kInvalidArgument);

  const std::vector<double> q = {1.0, 2.0, 3.0};
  result = client.ReverseTopK(ConstRow(q.data(), 3), 0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client.last_net_status(), NetStatus::kInvalidArgument);

  // Inserting a weight that is not a distribution is the index's call.
  EXPECT_FALSE(client.InsertWeight(ConstRow(q.data(), 3)).ok());
  EXPECT_EQ(client.last_net_status(), NetStatus::kInvalidArgument);

  // The connection survives semantic rejections.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(QueryServerTest, GracefulShutdownAnswersAdmittedRequests) {
  const Dataset points = MakePoints(300, 3, 19);
  const Dataset weights = MakeWeights(60, 3, 20);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.batch_wait_us = 30000;  // requests sit queued when drain starts
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  const ReverseTopKResult expected = index->ReverseTopK(points.row(1), 4);
  std::atomic<int> answered{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      RemoteClient client = MustConnect(server);
      auto result = client.ReverseTopK(points.row(1), 4);
      if (result.ok()) {
        answered.fetch_add(1);
        if (result.value() != expected) wrong.fetch_add(1);
      }
    });
  }
  // Wait (via live STATS, served inline off the queue) until all four
  // requests are past admission — either held by the fill window or
  // already answered — so Shutdown can never race a client thread that
  // has not reached the server yet.
  RemoteClient monitor = MustConnect(server);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = monitor.Stats();
    ASSERT_TRUE(stats.ok());
    const std::string& text = stats.value();
    const auto value_of = [&](const std::string& key) {
      const size_t pos = text.find(key + " ");
      return pos == std::string::npos
                 ? 0ull
                 : std::strtoull(text.c_str() + pos + key.size() + 1, nullptr,
                                 10);
    };
    if (value_of("queue_depth") + value_of("requests_completed") >= 4) break;
    std::this_thread::yield();
  }
  server.Shutdown();  // every request is now admitted; drain answers the rest
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(answered.load(), 4);  // drain answered every admitted request
  EXPECT_FALSE(RemoteClient::Connect("127.0.0.1", server.port()).ok());
}

TEST(QueryServerTest, ChurnVersusQueriesReplaysToBitIdenticalAnswers) {
  const size_t kDim = 4;
  const Dataset points = MakePoints(300, kDim, 21);
  const Dataset weights = MakeWeights(80, kDim, 22);
  auto index = BuildIndex(points, weights, ScanMode::kBlocked, /*shards=*/2);
  ServerOptions options;
  options.batch_wait_us = 500;
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // The mutation log: op o was applied at version o+1. Queries record the
  // version their response was stamped with.
  struct Mutation {
    bool insert = false;
    bool point = false;
    std::vector<double> values;
    uint64_t id = 0;
  };
  std::vector<Mutation> mutations;
  struct Observation {
    std::vector<double> query;
    uint32_t k;
    uint64_t version;
    ReverseTopKResult rtk;
    ReverseKRanksResult rkr;
    bool is_rkr;
  };
  std::vector<Observation> observations[2];

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> query_threads;
  for (int t = 0; t < 2; ++t) {
    query_threads.emplace_back([&, t] {
      RemoteClient client = MustConnect(server);
      std::mt19937_64 rng(1000 + t);
      while (!stop.load()) {
        Observation obs;
        const size_t row = rng() % points.size();
        obs.query.assign(points.row(row).begin(), points.row(row).end());
        obs.k = 1 + static_cast<uint32_t>(rng() % 8);
        obs.is_rkr = (t == 1);
        const ConstRow q(obs.query.data(), obs.query.size());
        if (obs.is_rkr) {
          auto result = client.ReverseKRanks(q, obs.k);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          obs.rkr = std::move(result).value();
        } else {
          auto result = client.ReverseTopK(q, obs.k);
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          obs.rtk = std::move(result).value();
        }
        obs.version = client.last_index_version();
        observations[t].push_back(std::move(obs));
      }
    });
  }

  // One mutating client: inserts and deletes racing the query batches.
  {
    RemoteClient client = MustConnect(server);
    std::mt19937_64 rng(77);
    std::uniform_real_distribution<double> value(0.0, 10000.0);
    size_t live_points = points.size();
    for (int op = 0; op < 40; ++op) {
      Mutation m;
      m.point = true;
      m.insert = live_points < 150 || (rng() % 2 == 0);
      if (m.insert) {
        for (size_t i = 0; i < kDim; ++i) m.values.push_back(value(rng));
        ASSERT_TRUE(
            client.InsertPoint(ConstRow(m.values.data(), kDim)).ok());
        ++live_points;
      } else {
        m.id = rng() % live_points;
        ASSERT_TRUE(client.DeletePoint(m.id).ok());
        --live_points;
      }
      ASSERT_EQ(client.last_index_version(),
                static_cast<uint64_t>(op + 1));
      mutations.push_back(std::move(m));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop.store(true);
  for (std::thread& t : query_threads) t.join();
  server.Shutdown();
  EXPECT_EQ(failures.load(), 0);

  // Serial replay: a fresh index stepped through the mutation log; every
  // observation re-executed at its stamped version must be bit-identical.
  // Replaying into a single DynamicGirIndex doubles as a sharded-vs-single
  // merge oracle: the server ran the sharded router.
  DynamicIndexOptions replay_options;
  replay_options.gir.scan_mode = ScanMode::kBlocked;
  auto replay_built = DynamicGirIndex::Build(points, weights, replay_options);
  ASSERT_TRUE(replay_built.ok()) << replay_built.status().ToString();
  DynamicGirIndex replay = std::move(replay_built).value();
  std::vector<Observation> all;
  for (auto& per_thread : observations) {
    for (auto& obs : per_thread) all.push_back(std::move(obs));
  }
  size_t checked = 0;
  for (uint64_t version = 0; version <= mutations.size(); ++version) {
    if (version > 0) {
      const Mutation& m = mutations[version - 1];
      if (m.insert) {
        ASSERT_TRUE(
            replay.InsertPoint(ConstRow(m.values.data(), kDim)).ok());
      } else {
        ASSERT_TRUE(
            replay.DeletePoint(static_cast<VectorId>(m.id)).ok());
      }
    }
    for (const Observation& obs : all) {
      if (obs.version != version) continue;
      ++checked;
      const ConstRow q(obs.query.data(), obs.query.size());
      if (obs.is_rkr) {
        const auto serial = replay.ReverseKRanks(q, obs.k);
        ASSERT_EQ(obs.rkr.size(), serial.size()) << "version " << version;
        for (size_t i = 0; i < serial.size(); ++i) {
          EXPECT_EQ(obs.rkr[i].weight_id, serial[i].weight_id);
          EXPECT_EQ(obs.rkr[i].rank, serial[i].rank);
        }
      } else {
        EXPECT_EQ(obs.rtk, replay.ReverseTopK(q, obs.k))
            << "version " << version;
      }
    }
  }
  EXPECT_EQ(checked, all.size());
  EXPECT_GT(checked, 0u);
}

// ---- Result cache (server/result_cache.h wired into the server) ------------

TEST(QueryServerTest, CacheServesRepeatsAndSurvivesIrrelevantMutations) {
  const size_t kDim = 3;
  const Dataset points = MakePoints(250, kDim, 23);
  const Dataset weights = MakeWeights(60, kDim, 24);
  // τ mode: the live-τ heads are what turn point mutations into useful
  // survival bands; under the pure scan modes every band is 1 and the
  // cache can only refill, never extend.
  auto index = BuildIndex(points, weights, ScanMode::kTauIndex);
  QueryServer server(index.get(), ServerOptions{});  // cache on by default
  ASSERT_TRUE(server.Start().ok());
  RemoteClient client = MustConnect(server);

  const ConstRow q = points.row(0);
  auto first = client.ReverseTopK(q, 4);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(client.last_cache_hit());
  auto second = client.ReverseTopK(q, 4);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(client.last_cache_hit());
  EXPECT_EQ(second.value(), first.value());

  // A far-away point lands at the bottom of every weight's score list
  // (its probe band is the worst live position), so the cached top-4
  // answer provably survives: still a hit, still the same answer.
  std::vector<double> far(kDim, 1e7);
  ASSERT_TRUE(client.InsertPoint(ConstRow(far.data(), kDim)).ok());
  auto after_far = client.ReverseTopK(q, 4);
  ASSERT_TRUE(after_far.ok());
  EXPECT_TRUE(client.last_cache_hit());
  EXPECT_EQ(after_far.value(), index->ReverseTopK(q, 4));

  // An all-zero point scores strictly below everything (band 1), so the
  // pass must drop the entry; the re-executed answer refills the cache.
  std::vector<double> zero(kDim, 0.0);
  ASSERT_TRUE(client.InsertPoint(ConstRow(zero.data(), kDim)).ok());
  auto after_zero = client.ReverseTopK(q, 4);
  ASSERT_TRUE(after_zero.ok());
  EXPECT_FALSE(client.last_cache_hit());
  EXPECT_EQ(after_zero.value(), index->ReverseTopK(q, 4));
  auto refill = client.ReverseTopK(q, 4);
  ASSERT_TRUE(refill.ok());
  EXPECT_TRUE(client.last_cache_hit());

  // Compaction rebuilds bit-identically: cached entries stay valid.
  ASSERT_TRUE(client.Compact().ok());
  auto after_compact = client.ReverseTopK(q, 4);
  ASSERT_TRUE(after_compact.ok());
  EXPECT_TRUE(client.last_cache_hit());
  EXPECT_EQ(after_compact.value(), index->ReverseTopK(q, 4));

  const std::string stats = server.metrics().Render();
  EXPECT_EQ(stats.find("cache_hits 0\n"), std::string::npos);
  EXPECT_EQ(stats.find("cache_extensions 0\n"), std::string::npos);
  EXPECT_EQ(stats.find("cache_invalidations 0\n"), std::string::npos);
}

TEST(QueryServerTest, CacheDisabledNeverSetsTheHitFlag) {
  const Dataset points = MakePoints(200, 3, 25);
  const Dataset weights = MakeWeights(40, 3, 26);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.enable_cache = false;
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());
  RemoteClient client = MustConnect(server);
  for (int i = 0; i < 3; ++i) {
    auto result = client.ReverseTopK(points.row(0), 4);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(client.last_cache_hit());
  }
  EXPECT_NE(server.metrics().Render().find("cache_hits 0\n"),
            std::string::npos);
}

// The churn-interleaved cache property test: >= 1000 interleaved
// mutations/queries against one server, every response shadow-checked
// against a DynamicGirIndex fed the identical mutation stream (the
// sharded router is documented bit-identical to it). Deterministic and
// single-threaded — the server still runs its full concurrent pipeline
// (reader, scheduler, shard workers, cache passes), so TSan sees every
// hand-off. Runs the same script against a 1-shard and a 2-shard server.
TEST(QueryServerTest, CachedAnswersStayBitIdenticalUnderChurn) {
  const size_t kDim = 4;
  const Dataset points = MakePoints(240, kDim, 27);
  const Dataset weights = MakeWeights(60, kDim, 28);
  // A pool of valid preference rows for weight inserts.
  const Dataset weight_pool = MakeWeights(64, kDim, 29);

  for (const size_t shards : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    // τ mode on the serving side so invalidation bands / head certificates
    // are live (extensions happen); the shadow runs the blocked scan so the
    // equality check also crosses engines.
    auto index = BuildIndex(points, weights, ScanMode::kTauIndex, shards);
    ServerOptions options;
    options.batch_wait_us = 0;  // single client: dispatch immediately
    QueryServer server(index.get(), options);
    ASSERT_TRUE(server.Start().ok());
    RemoteClient client = MustConnect(server);

    DynamicIndexOptions shadow_options;
    shadow_options.gir.scan_mode = ScanMode::kBlocked;
    auto shadow_built =
        DynamicGirIndex::Build(points, weights, shadow_options);
    ASSERT_TRUE(shadow_built.ok()) << shadow_built.status().ToString();
    DynamicGirIndex shadow = std::move(shadow_built).value();

    std::mt19937_64 rng(500 + shards);
    std::uniform_real_distribution<double> coord(0.0, 10000.0);
    size_t live_points = points.size();
    size_t live_weights = weights.size();
    size_t next_weight = 0;
    uint64_t version = 0;
    size_t hits = 0;
    constexpr int kOps = 1100;
    for (int op = 0; op < kOps; ++op) {
      const uint64_t dice = rng() % 100;
      if (dice < 3) {  // point insert (one in three far away)
        std::vector<double> p(kDim);
        const bool far = rng() % 3 == 0;
        for (double& v : p) v = far ? 1e6 + coord(rng) : coord(rng);
        ASSERT_TRUE(client.InsertPoint(ConstRow(p.data(), kDim)).ok());
        ASSERT_TRUE(shadow.InsertPoint(ConstRow(p.data(), kDim)).ok());
        ++live_points;
        ++version;
      } else if (dice < 5 && live_points > 60) {  // point delete
        const VectorId id = static_cast<VectorId>(rng() % live_points);
        ASSERT_TRUE(client.DeletePoint(id).ok());
        ASSERT_TRUE(shadow.DeletePoint(id).ok());
        --live_points;
        ++version;
      } else if (dice < 7 && next_weight < weight_pool.size()) {
        const ConstRow w = weight_pool.row(next_weight++);
        ASSERT_TRUE(client.InsertWeight(w).ok());
        ASSERT_TRUE(shadow.InsertWeight(w).ok());
        ++live_weights;
        ++version;
      } else if (dice < 8 && live_weights > 20) {  // weight delete
        const VectorId id = static_cast<VectorId>(rng() % live_weights);
        ASSERT_TRUE(client.DeleteWeight(id).ok());
        ASSERT_TRUE(shadow.DeleteWeight(id).ok());
        --live_weights;
        ++version;
      } else if (dice < 9) {  // compaction
        ASSERT_TRUE(client.Compact().ok());
        ASSERT_TRUE(shadow.Compact().ok());
        ++version;
      } else {  // query from a small pool so repeats hit the cache
        const size_t row = rng() % 24;
        const uint32_t k = 1 + static_cast<uint32_t>(rng() % 8);
        const ConstRow q = points.row(row);
        if (rng() % 2 == 0) {
          auto remote = client.ReverseTopK(q, k);
          ASSERT_TRUE(remote.ok()) << remote.status().ToString();
          EXPECT_EQ(remote.value(), shadow.ReverseTopK(q, k))
              << "op " << op << " k " << k << " row " << row
              << (client.last_cache_hit() ? " (cache hit)" : "");
        } else {
          auto remote = client.ReverseKRanks(q, k);
          ASSERT_TRUE(remote.ok()) << remote.status().ToString();
          const auto local = shadow.ReverseKRanks(q, k);
          ASSERT_EQ(remote.value().size(), local.size())
              << "op " << op << " k " << k << " row " << row
              << (client.last_cache_hit() ? " (cache hit)" : "");
          for (size_t i = 0; i < local.size(); ++i) {
            EXPECT_EQ(remote.value()[i].weight_id, local[i].weight_id);
            EXPECT_EQ(remote.value()[i].rank, local[i].rank);
          }
        }
        if (client.last_cache_hit()) ++hits;
        // A cache hit is stamped with the snapshot it was served at,
        // which in this single-client lockstep is the mutation count.
        ASSERT_EQ(client.last_index_version(), version) << "op " << op;
      }
    }
    // The cache must actually have carried answers across mutations —
    // otherwise this test degenerates to the plain churn replay.
    EXPECT_GT(hits, 50u);
    server.Shutdown();
  }
}

// ---- Per-tenant QoS --------------------------------------------------------

TEST(QueryServerTest, QosSplitsSaturatedThroughputByTenantWeight) {
  const Dataset points = MakePoints(3000, 4, 31);
  const Dataset weights = MakeWeights(400, 4, 32);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.enable_cache = false;  // measure scheduling, not the cache
  options.max_batch = 8;
  options.batch_wait_us = 200;
  options.tenants.push_back(TenantOptions{/*id=*/1, /*weight=*/3});
  options.tenants.push_back(TenantOptions{/*id=*/2, /*weight=*/1});
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Closed-loop saturation: enough clients per tenant that both classes
  // stay backlogged, so the deficit round robin (not arrival order)
  // decides who is served.
  constexpr size_t kClientsPerTenant = 12;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served[2] = {{0}, {0}};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int tenant = 0; tenant < 2; ++tenant) {
    for (size_t c = 0; c < kClientsPerTenant; ++c) {
      threads.emplace_back([&, tenant, c] {
        RemoteClient client = MustConnect(server);
        client.set_tenant(static_cast<uint16_t>(tenant + 1));
        std::mt19937_64 rng(9000 + tenant * 100 + c);
        while (!stop.load()) {
          const size_t row = rng() % points.size();
          if (client.ReverseKRanks(points.row(row), 8).ok()) {
            served[tenant].fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        }
      });
    }
  }
  // Measure steady state only, and by request count rather than by wall
  // clock: the connect/ramp-up phase serves whoever arrives first (the
  // queues are still single-class), and on a loaded machine a fixed time
  // window can end up dominated by that phase. Burn a warmup quota, then
  // snapshot and measure a fixed quota of further requests.
  const auto total = [&] { return served[0].load() + served[1].load(); };
  const auto hard_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (total() < 150 && std::chrono::steady_clock::now() < hard_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const uint64_t warm_heavy = served[0].load();
  const uint64_t warm_light = served[1].load();
  const uint64_t warm_total = warm_heavy + warm_light;
  while (total() < warm_total + 600 &&
         std::chrono::steady_clock::now() < hard_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  server.Shutdown();

  EXPECT_EQ(errors.load(), 0);
  const double heavy = static_cast<double>(served[0].load() - warm_heavy);
  const double light = static_cast<double>(served[1].load() - warm_light);
  ASSERT_GT(light, 0.0);
  const double ratio = heavy / light;
  // Weights 3:1 under saturation; the acceptance band is +-20%. Under
  // TSan the ~10x slowdown staggers arrivals enough that the queues are
  // frequently single-class (where the deficit ledger deliberately
  // stands aside), pulling the ratio toward arrival order — there the
  // test only requires the weighting to be clearly visible.
#if GIR_TSAN_BUILD
  EXPECT_GE(ratio, 1.3) << "heavy " << heavy << " light " << light;
#else
  EXPECT_GE(ratio, 2.4) << "heavy " << heavy << " light " << light;
  EXPECT_LE(ratio, 3.6) << "heavy " << heavy << " light " << light;
#endif

  // Both tenants are accounted under their registered STATS slots.
  const std::string stats = server.metrics().Render();
  EXPECT_NE(stats.find("tenant1.served "), std::string::npos);
  EXPECT_NE(stats.find("tenant2.served "), std::string::npos);
  EXPECT_EQ(stats.find("tenant1.served 0\n"), std::string::npos);
  EXPECT_EQ(stats.find("tenant2.served 0\n"), std::string::npos);
}

TEST(QueryServerTest, QosRateLimitedTenantGetsExplicitOverloaded) {
  const Dataset points = MakePoints(200, 3, 33);
  const Dataset weights = MakeWeights(40, 3, 34);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.enable_cache = false;  // hits would bypass the token charge
  TenantOptions limited;
  limited.id = 7;
  limited.rate_qps = 0.001;  // one token every ~17 minutes
  limited.burst = 2;         // two queries pass, the third is throttled
  options.tenants.push_back(limited);
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  RemoteClient client = MustConnect(server);
  client.set_tenant(7);
  EXPECT_TRUE(client.ReverseTopK(points.row(0), 4).ok());
  EXPECT_TRUE(client.ReverseTopK(points.row(1), 4).ok());
  auto throttled = client.ReverseTopK(points.row(2), 4);
  EXPECT_FALSE(throttled.ok());
  // The throttle is an explicit wire status with a distinguishable
  // message — never a silent drop or a generic failure.
  EXPECT_EQ(client.last_net_status(), NetStatus::kOverloaded);
  EXPECT_NE(throttled.status().ToString().find("rate limited"),
            std::string::npos);

  // The connection survives, other tenants are unaffected, and the
  // rejection is visible in STATS.
  RemoteClient other = MustConnect(server);
  EXPECT_TRUE(other.ReverseTopK(points.row(2), 4).ok());
  EXPECT_TRUE(client.Ping().ok());
  const std::string stats = server.metrics().Render();
  EXPECT_NE(stats.find("tenant7.rejected_rate_limited "), std::string::npos);
  EXPECT_EQ(stats.find("tenant7.rejected_rate_limited 0\n"),
            std::string::npos);
}

TEST(QueryServerTest, TenantDeadlineClassAppliesWhenRequestCarriesNone) {
  const Dataset points = MakePoints(200, 3, 35);
  const Dataset weights = MakeWeights(40, 3, 36);
  auto index = BuildIndex(points, weights);
  ServerOptions options;
  options.enable_cache = false;
  options.batch_wait_us = 50000;  // 50 ms fill window
  TenantOptions strict;
  strict.id = 3;
  strict.default_deadline_us = 1;  // expires before the window closes
  options.tenants.push_back(strict);
  QueryServer server(index.get(), options);
  ASSERT_TRUE(server.Start().ok());

  RemoteClient client = MustConnect(server);
  client.set_tenant(3);
  auto result = client.ReverseTopK(points.row(0), 4);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client.last_net_status(), NetStatus::kDeadlineExceeded);

  // An explicit request deadline overrides the tenant default.
  client.set_deadline_us(10000000);
  auto retry = client.ReverseTopK(points.row(0), 4);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value(), index->ReverseTopK(points.row(0), 4));
}

// ---- RemoteClient failure paths against a hostile peer ---------------------

/// Minimal loopback peer that accepts one connection, consumes the
/// client's magic + first request frame, answers with arbitrary forged
/// bytes and closes.
class ForgingServer {
 public:
  explicit ForgingServer(std::string reply, bool hold_open = false)
      : reply_(std::move(reply)), hold_open_(hold_open) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_,
                            reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      // Drain the magic and the request frame (length prefix + body).
      char magic[8];
      (void)::recv(fd, magic, sizeof(magic), MSG_WAITALL);
      uint32_t frame_len = 0;
      if (::recv(fd, &frame_len, sizeof(frame_len), MSG_WAITALL) ==
          static_cast<ssize_t>(sizeof(frame_len))) {
        std::vector<char> body(frame_len);
        (void)::recv(fd, body.data(), body.size(), MSG_WAITALL);
      }
      if (!reply_.empty()) {
        (void)::send(fd, reply_.data(), reply_.size(), MSG_NOSIGNAL);
      }
      // hold_open: stay silent without hanging up, so the only way the
      // client unblocks is its own SO_RCVTIMEO deadline.
      while (hold_open_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ::close(fd);  // hang up — mid-frame if the reply was partial
    });
  }

  ~ForgingServer() {
    hold_open_.store(false);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  std::string reply_;
  std::atomic<bool> hold_open_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// One complete response frame: length prefix + the 24-byte response
/// header (verb, status, flags, pad, request id, index version) +
/// `payload`.
std::string ForgedFrame(uint8_t verb, uint8_t status,
                        const std::string& payload) {
  std::string body;
  body.push_back(static_cast<char>(verb));
  body.push_back(static_cast<char>(status));
  const uint16_t flags = 0;
  const uint32_t pad = 0;
  const uint64_t request_id = 1;  // RemoteClient's first id
  const uint64_t version = 0;
  body.append(reinterpret_cast<const char*>(&flags), sizeof(flags));
  body.append(reinterpret_cast<const char*>(&pad), sizeof(pad));
  body.append(reinterpret_cast<const char*>(&request_id),
              sizeof(request_id));
  body.append(reinterpret_cast<const char*>(&version), sizeof(version));
  body += payload;
  const uint32_t len = static_cast<uint32_t>(body.size());
  std::string frame(reinterpret_cast<const char*>(&len), sizeof(len));
  frame += body;
  return frame;
}

TEST(RemoteClientTest, ServerClosingMidFrameIsACleanError) {
  // Length prefix promises 64 bytes, only 10 arrive before the hangup:
  // the client must fail with a decode error — no hang, no garbage.
  const uint32_t len = 64;
  std::string reply(reinterpret_cast<const char*>(&len), sizeof(len));
  reply += "ten-bytes.";
  ForgingServer peer(reply);
  auto client = RemoteClient::Connect("127.0.0.1", peer.port());
  ASSERT_TRUE(client.ok());
  const Status s = client.value().Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("connection closed"), std::string::npos);
}

TEST(RemoteClientTest, ServerClosingBeforeAnyResponseIsACleanError) {
  ForgingServer peer("");  // reads the request, answers nothing
  auto client = RemoteClient::Connect("127.0.0.1", peer.port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client.value().Ping().ok());
}

TEST(RemoteClientTest, TruncatedResponseBodyIsACleanError) {
  // A complete frame whose body is shorter than the response header:
  // DecodeResponseBody must reject it, not read past the end.
  const uint32_t len = 5;
  std::string reply(reinterpret_cast<const char*>(&len), sizeof(len));
  reply += "stub!";
  ForgingServer peer(reply);
  auto client = RemoteClient::Connect("127.0.0.1", peer.port());
  ASSERT_TRUE(client.ok());
  const Status s = client.value().Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("undecodable"), std::string::npos);
}

TEST(RemoteClientTest, OversizedLengthPrefixIsACleanError) {
  // The forged prefix promises a frame beyond kMaxFrameBytes: the client
  // must refuse before allocating or reading a single payload byte.
  const uint32_t len = kMaxFrameBytes + 1;
  std::string reply(reinterpret_cast<const char*>(&len), sizeof(len));
  reply += "x";
  ForgingServer peer(reply);
  auto client = RemoteClient::Connect("127.0.0.1", peer.port());
  ASSERT_TRUE(client.ok());
  const Status s = client.value().Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("frame length exceeds the limit"),
            std::string::npos);
}

TEST(RemoteClientTest, ForgedStatusByteIsACleanError) {
  // A status byte past the last defined NetStatus fails decoding — it
  // must not be cast through and misreported as some known status.
  ForgingServer peer(
      ForgedFrame(static_cast<uint8_t>(NetVerb::kPing), 0xEE, ""));
  auto client = RemoteClient::Connect("127.0.0.1", peer.port());
  ASSERT_TRUE(client.ok());
  const Status s = client.value().Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("undecodable"), std::string::npos);
}

TEST(RemoteClientTest, ForgedDegradedCoverageIsACleanError) {
  // kDegraded with coverage bits set beyond the claimed shard count:
  // the bitmap validation must reject the frame outright.
  std::string payload;
  const uint32_t shard_count = 2;
  const uint64_t coverage = 0xFF;  // bits 2..7 exceed shard_count
  payload.append(reinterpret_cast<const char*>(&shard_count),
                 sizeof(shard_count));
  payload.append(reinterpret_cast<const char*>(&coverage),
                 sizeof(coverage));
  ForgingServer peer(ForgedFrame(
      static_cast<uint8_t>(NetVerb::kPing),
      static_cast<uint8_t>(NetStatus::kDegraded), payload));
  auto client = RemoteClient::Connect("127.0.0.1", peer.port());
  ASSERT_TRUE(client.ok());
  const Status s = client.value().Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("undecodable"), std::string::npos);
}

TEST(RemoteClientTest, SilentServerHitsTheIoDeadlineNotAHang) {
  // The peer accepts, reads the request and then says nothing, without
  // closing. Untimed, this blocks forever; with io_ms the recv surfaces
  // a typed timeout in bounded time.
  ForgingServer peer("", /*hold_open=*/true);
  RemoteClientOptions options;
  options.connect_ms = 2000;
  options.io_ms = 200;
  auto client = RemoteClient::Connect("127.0.0.1", peer.port(), options);
  ASSERT_TRUE(client.ok());
  const auto start = std::chrono::steady_clock::now();
  const Status s = client.value().Ping();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
  EXPECT_NE(s.ToString().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

// ---- gir_serve helpers -----------------------------------------------------

TEST(PortFileTest, WritesAtomicallyViaRename) {
  char dir_template[] = "/tmp/gir_portfile_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  const std::string path = dir + "/port.txt";

  ASSERT_TRUE(WritePortFileAtomic(path, 4242).ok());
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "4242\n");
  }
  // No temp artifact may remain next to the published file.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);

  // Overwriting an existing file goes through the same rename and
  // replaces the contents wholesale.
  ASSERT_TRUE(WritePortFileAtomic(path, 65535).ok());
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "65535\n");
  }
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);

  // An unwritable destination is a reported error, not a crash.
  EXPECT_FALSE(
      WritePortFileAtomic("/nonexistent-dir/deep/port.txt", 1).ok());

  ::remove(path.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace gir

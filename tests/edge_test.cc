#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/bbr.h"
#include "baselines/mpa.h"
#include "core/naive.h"
#include "core/simple_scan.h"
#include "core/topk.h"
#include "data/generators.h"
#include "data/rng.h"
#include "data/weights.h"
#include "grid/adaptive_grid.h"
#include "grid/gir_queries.h"
#include "grid/sparse_scan.h"

namespace gir {
namespace {

/// Lattice-valued workloads force exact score ties in double arithmetic —
/// the hardest case for the strict-rank tie-breaking rule (DESIGN.md §2).
/// Every algorithm must still agree bit-for-bit with the oracle.
Dataset LatticePoints(size_t n, size_t d, uint64_t seed, int levels) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      row[j] = static_cast<double>(rng.NextIndex(levels));
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

/// Weights with exactly representable values (multiples of 1/8, sum 1):
/// weighted sums of lattice points collide exactly.
Dataset LatticeWeights(size_t m, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(d);
  ds.Reserve(m);
  std::vector<double> row(d);
  for (size_t i = 0; i < m; ++i) {
    // Distribute 8 eighths across d dimensions.
    std::fill(row.begin(), row.end(), 0.0);
    for (int unit = 0; unit < 8; ++unit) {
      row[rng.NextIndex(d)] += 0.125;
    }
    ds.AppendUnchecked(row);
  }
  return ds;
}

struct TieCase {
  size_t n, m, d, k;
  int levels;
  uint64_t seed;
};

class TieStress : public ::testing::TestWithParam<TieCase> {};

TEST_P(TieStress, AllAlgorithmsAgreeUnderMassiveTies) {
  const TieCase& c = GetParam();
  Dataset points = LatticePoints(c.n, c.d, c.seed, c.levels);
  Dataset weights = LatticeWeights(c.m, c.d, c.seed + 1);

  SimpleScan sim(points, weights);
  auto gir = GirIndex::Build(points, weights).value();
  GirOptions paper_mode;
  paper_mode.bound_mode = BoundMode::kUpperFirst;
  auto gir2d = GirIndex::Build(points, weights, paper_mode).value();
  auto adaptive = BuildAdaptiveGir(points, weights).value();
  auto sparse = SparseGir::Build(points, weights).value();
  BbrOptions bbr_options;
  bbr_options.max_entries = 16;
  auto bbr = BbrReverseTopK::Build(points, weights, bbr_options).value();
  auto mpa = MpaReverseKRanks::Build(points, weights).value();

  for (size_t qi : {size_t{0}, c.n / 2, c.n - 1}) {
    ConstRow q = points.row(qi);
    const auto rtk = NaiveReverseTopK(points, weights, q, c.k);
    EXPECT_EQ(sim.ReverseTopK(q, c.k), rtk);
    EXPECT_EQ(gir.ReverseTopK(q, c.k), rtk);
    EXPECT_EQ(gir2d.ReverseTopK(q, c.k), rtk);
    EXPECT_EQ(adaptive.ReverseTopK(q, c.k), rtk);
    EXPECT_EQ(sparse.ReverseTopK(q, c.k), rtk);
    EXPECT_EQ(bbr.ReverseTopK(q, c.k), rtk);

    const auto rkr = NaiveReverseKRanks(points, weights, q, c.k);
    EXPECT_EQ(sim.ReverseKRanks(q, c.k), rkr);
    EXPECT_EQ(gir.ReverseKRanks(q, c.k), rkr);
    EXPECT_EQ(gir2d.ReverseKRanks(q, c.k), rkr);
    EXPECT_EQ(adaptive.ReverseKRanks(q, c.k), rkr);
    EXPECT_EQ(sparse.ReverseKRanks(q, c.k), rkr);
    EXPECT_EQ(mpa.ReverseKRanks(q, c.k), rkr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lattices, TieStress,
    ::testing::Values(TieCase{120, 40, 2, 5, 3, 1},   // massive ties, 2-d
                      TieCase{200, 50, 3, 10, 2, 2},  // binary attributes
                      TieCase{150, 30, 4, 7, 4, 3},
                      TieCase{100, 60, 6, 15, 3, 4},
                      TieCase{250, 20, 5, 3, 2, 5},
                      TieCase{80, 80, 8, 9, 2, 6}));

// --------------------------------------------------- degenerate shapes

TEST(DegenerateTest, SinglePointSingleWeight) {
  auto points = Dataset::FromRows({{1.0, 2.0}}).value();
  auto weights = Dataset::FromRows({{0.5, 0.5}}).value();
  auto gir = GirIndex::Build(points, weights).value();
  // q == the only point: rank 0 < 1, so the weight qualifies.
  EXPECT_EQ(gir.ReverseTopK(points.row(0), 1), (ReverseTopKResult{0}));
  auto rkr = gir.ReverseKRanks(points.row(0), 1);
  ASSERT_EQ(rkr.size(), 1u);
  EXPECT_EQ(rkr[0].rank, 0);
}

TEST(DegenerateTest, OneDimensionalData) {
  Dataset points = GenerateUniform(200, 1, 7);
  auto weights = Dataset::FromRows({{1.0}}).value();
  auto gir = GirIndex::Build(points, weights).value();
  SimpleScan sim(points, weights);
  for (size_t qi : {size_t{0}, size_t{100}}) {
    EXPECT_EQ(gir.ReverseTopK(points.row(qi), 50),
              NaiveReverseTopK(points, weights, points.row(qi), 50));
    EXPECT_EQ(gir.ReverseKRanks(points.row(qi), 1),
              sim.ReverseKRanks(points.row(qi), 1));
  }
}

TEST(DegenerateTest, AllPointsIdentical) {
  Dataset points(3);
  std::vector<double> row{5.0, 5.0, 5.0};
  for (int i = 0; i < 50; ++i) points.AppendUnchecked(row);
  Dataset weights = GenerateWeightsUniform(10, 3, 8);
  auto gir = GirIndex::Build(points, weights).value();
  // Every point ties with q: rank 0 for every weight.
  auto rtk = gir.ReverseTopK(points.row(0), 1);
  EXPECT_EQ(rtk.size(), weights.size());
  auto rkr = gir.ReverseKRanks(points.row(0), 5);
  for (const auto& entry : rkr) EXPECT_EQ(entry.rank, 0);
}

TEST(DegenerateTest, ConstantDimension) {
  // One dimension is constant across all points: its grid cells collapse.
  Rng rng(9);
  Dataset points(3);
  std::vector<double> row(3);
  for (int i = 0; i < 150; ++i) {
    row[0] = rng.NextDouble(0.0, 100.0);
    row[1] = 42.0;
    row[2] = rng.NextDouble(0.0, 100.0);
    points.AppendUnchecked(row);
  }
  Dataset weights = GenerateWeightsUniform(30, 3, 10);
  auto gir = GirIndex::Build(points, weights).value();
  ConstRow q = points.row(75);
  EXPECT_EQ(gir.ReverseTopK(q, 10),
            NaiveReverseTopK(points, weights, q, 10));
  EXPECT_EQ(gir.ReverseKRanks(q, 10),
            NaiveReverseKRanks(points, weights, q, 10));
}

TEST(DegenerateTest, QueryAtOrigin) {
  // The origin is never out-ranked (strictly) by non-negative data.
  Dataset points = GenerateUniform(100, 4, 11);
  Dataset weights = GenerateWeightsUniform(20, 4, 12);
  auto gir = GirIndex::Build(points, weights).value();
  std::vector<double> origin(4, 0.0);
  auto rtk = gir.ReverseTopK(origin, 1);
  EXPECT_EQ(rtk.size(), weights.size());
  auto rkr = gir.ReverseKRanks(origin, 3);
  for (const auto& entry : rkr) EXPECT_EQ(entry.rank, 0);
}

TEST(DegenerateTest, KEqualsCardinalities) {
  Dataset points = GenerateUniform(60, 3, 13);
  Dataset weights = GenerateWeightsUniform(25, 3, 14);
  auto gir = GirIndex::Build(points, weights).value();
  ConstRow q = points.row(30);
  // k = |P|: every weight ranks q within the top-|P|.
  EXPECT_EQ(gir.ReverseTopK(q, points.size()).size(), weights.size());
  // k = |W|: reverse k-ranks returns everything, sorted by (rank, id).
  auto rkr = gir.ReverseKRanks(q, weights.size());
  EXPECT_EQ(rkr.size(), weights.size());
  EXPECT_EQ(rkr, NaiveReverseKRanks(points, weights, q, weights.size()));
}

TEST(DegenerateTest, ThresholdOneTopKQuery) {
  // k = 1 RTK: only weights for which q is their single best product.
  Dataset points = GenerateUniform(300, 5, 15);
  Dataset weights = GenerateWeightsUniform(80, 5, 16);
  auto gir = GirIndex::Build(points, weights).value();
  // Find the globally best point under weight 0 and use it as q.
  auto top1 = TopK(points, weights.row(0), 1);
  ConstRow q = points.row(top1[0].id);
  auto rtk = gir.ReverseTopK(q, 1);
  EXPECT_EQ(rtk, NaiveReverseTopK(points, weights, q, 1));
  EXPECT_TRUE(std::find(rtk.begin(), rtk.end(), 0u) != rtk.end());
}

TEST(DegenerateTest, HugeValuesSmallValuesMix) {
  // 6 orders of magnitude within one dataset: grid cells must stay sound.
  Rng rng(17);
  Dataset points(2);
  std::vector<double> row(2);
  for (int i = 0; i < 200; ++i) {
    row[0] = rng.NextDouble() < 0.5 ? rng.NextDouble(0.0, 0.01)
                                    : rng.NextDouble(0.0, 10000.0);
    row[1] = rng.NextDouble(0.0, 10000.0);
    points.AppendUnchecked(row);
  }
  Dataset weights = GenerateWeightsUniform(40, 2, 18);
  auto uniform = GirIndex::Build(points, weights).value();
  auto adaptive = BuildAdaptiveGir(points, weights).value();
  ConstRow q = points.row(50);
  const auto expected = NaiveReverseKRanks(points, weights, q, 10);
  EXPECT_EQ(uniform.ReverseKRanks(q, 10), expected);
  EXPECT_EQ(adaptive.ReverseKRanks(q, 10), expected);
}

// --------------------------------------------------- randomized fuzzing

TEST(FuzzAgreement, RandomSmallWorkloads) {
  // Many small random configurations; any disagreement pinpoints the
  // offending seed.
  Rng meta(0xFADE);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 20 + meta.NextIndex(120);
    const size_t m = 5 + meta.NextIndex(60);
    const size_t d = 1 + meta.NextIndex(10);
    const size_t k = 1 + meta.NextIndex(12);
    const uint64_t seed = meta.NextU64();
    Dataset points = GenerateUniform(n, d, seed);
    Dataset weights = GenerateWeightsUniform(m, d, seed + 1);
    GirOptions opts;
    opts.partitions = 1 + meta.NextIndex(128);
    auto gir = GirIndex::Build(points, weights, opts).value();
    const size_t qi = meta.NextIndex(n);
    ConstRow q = points.row(qi);
    ASSERT_EQ(gir.ReverseTopK(q, k),
              NaiveReverseTopK(points, weights, q, k))
        << "trial " << trial << " n=" << n << " m=" << m << " d=" << d
        << " k=" << k << " parts=" << opts.partitions << " seed=" << seed;
    ASSERT_EQ(gir.ReverseKRanks(q, k),
              NaiveReverseKRanks(points, weights, q, k))
        << "trial " << trial << " seed=" << seed;
  }
}

}  // namespace
}  // namespace gir

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include "core/naive.h"
#include "core/rank.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/adaptive_grid.h"
#include "grid/aggregate.h"
#include "grid/index_io.h"
#include "grid/parallel_gir.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 100, 9, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 50, 4,
                     [&](size_t begin, size_t end) {
                       count.fetch_add(static_cast<int>(end - begin));
                     });
    ASSERT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, GrainLargerThanRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 10, 1000, [&](size_t begin, size_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls.load(), 1);
}

// ---------------------------------------------------------------- Parallel

class ParallelGirTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelGirTest, MatchesSequentialResults) {
  const size_t threads = GetParam();
  Workload wl = MakeWorkload(800, 150, 6, 51);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ThreadPool pool(threads);
  for (size_t qi : {size_t{0}, size_t{400}, size_t{799}}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(ParallelReverseTopK(index, q, 20, pool),
              index.ReverseTopK(q, 20));
    EXPECT_EQ(ParallelReverseKRanks(index, q, 20, pool),
              index.ReverseKRanks(q, 20));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelGirTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelGirTest2, EmptyResultWhenKDominatorsExist) {
  auto points = Dataset::FromRows(
                    {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {100.0, 100.0}})
                    .value();
  Dataset weights = testing_util::SmallWeights(50, 2, 52);
  auto index = GirIndex::Build(points, weights).value();
  ThreadPool pool(4);
  std::vector<double> q{50.0, 50.0};
  EXPECT_TRUE(ParallelReverseTopK(index, q, 3, pool).empty());
}

TEST(ParallelGirTest2, KZeroAndEmptyWeights) {
  Workload wl = MakeWorkload(50, 10, 3, 53);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ThreadPool pool(2);
  EXPECT_TRUE(ParallelReverseKRanks(index, wl.points.row(0), 0, pool).empty());
}

TEST(ParallelGirTest2, StatsAreMerged) {
  Workload wl = MakeWorkload(500, 80, 5, 54);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ThreadPool pool(4);
  QueryStats stats;
  ParallelReverseKRanks(index, wl.points.row(10), 10, pool, &stats);
  EXPECT_GT(stats.points_visited, 0u);
  EXPECT_EQ(stats.weights_evaluated, wl.weights.size());
}

TEST(ParallelGirTest2, ManyQueriesStressDeterminism) {
  Workload wl = MakeWorkload(300, 200, 4, 55);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ThreadPool pool(8);
  for (size_t qi = 0; qi < 20; ++qi) {
    ConstRow q = wl.points.row(qi * 15);
    ASSERT_EQ(ParallelReverseKRanks(index, q, 7, pool),
              NaiveReverseKRanks(wl.points, wl.weights, q, 7))
        << "query " << qi;
  }
}

// ---------------------------------------------------------------- IndexIO

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_idx_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(IndexIoTest, RoundTripPreservesResults) {
  Workload wl = MakeWorkload(400, 60, 5, 61);
  GirOptions options;
  options.partitions = 64;
  options.bound_mode = BoundMode::kUpperFirst;
  options.use_domin = false;
  auto index = GirIndex::Build(wl.points, wl.weights, options).value();
  ASSERT_TRUE(SaveGirIndex(Path("idx.bin"), index).ok());
  auto loaded = LoadGirIndex(Path("idx.bin"), wl.points, wl.weights,
                             /*verify_cells=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().partitions, 64u);
  EXPECT_EQ(loaded.value().options().bound_mode, BoundMode::kUpperFirst);
  EXPECT_FALSE(loaded.value().options().use_domin);
  ConstRow q = wl.points.row(123);
  EXPECT_EQ(loaded.value().ReverseTopK(q, 10), index.ReverseTopK(q, 10));
  EXPECT_EQ(loaded.value().ReverseKRanks(q, 10), index.ReverseKRanks(q, 10));
}

TEST_F(IndexIoTest, AdaptiveGridRoundTrips) {
  Dataset points = GenerateExponential(300, 4, 62);
  Dataset weights = GenerateWeightsUniform(40, 4, 63);
  auto index = BuildAdaptiveGir(points, weights).value();
  ASSERT_TRUE(SaveGirIndex(Path("adaptive.bin"), index).ok());
  auto loaded = LoadGirIndex(Path("adaptive.bin"), points, weights,
                             /*verify_cells=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().grid().point_partitioner().is_uniform());
  ConstRow q = points.row(7);
  EXPECT_EQ(loaded.value().ReverseKRanks(q, 5), index.ReverseKRanks(q, 5));
}

TEST_F(IndexIoTest, PackedIndexIsSmall) {
  // §3.2: the persisted index (6-bit cells at n = 64... 6 bits) is a small
  // fraction of the raw data it replaces.
  Workload wl = MakeWorkload(2000, 2000, 8, 64);
  auto index = GirIndex::Build(wl.points, wl.weights).value();  // n = 32
  ASSERT_TRUE(SaveGirIndex(Path("small.bin"), index).ok());
  const auto index_bytes = std::filesystem::file_size(Path("small.bin"));
  const size_t raw_bytes =
      (wl.points.size() + wl.weights.size()) * 8 * sizeof(double);
  EXPECT_LT(index_bytes * 8, raw_bytes);
}

TEST_F(IndexIoTest, LoadRejectsWrongDataset) {
  Workload wl = MakeWorkload(100, 20, 3, 65);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ASSERT_TRUE(SaveGirIndex(Path("idx.bin"), index).ok());
  // Different cardinality.
  Workload other = MakeWorkload(101, 20, 3, 66);
  auto loaded = LoadGirIndex(Path("idx.bin"), other.points, other.weights);
  EXPECT_FALSE(loaded.ok());
  // Same shape, different values: only caught with verification on.
  Workload same_shape = MakeWorkload(100, 20, 3, 67);
  auto verified = LoadGirIndex(Path("idx.bin"), same_shape.points,
                               same_shape.weights, /*verify_cells=*/true);
  EXPECT_FALSE(verified.ok());
}

TEST_F(IndexIoTest, LoadRejectsCorruptFile) {
  std::ofstream out(Path("junk.bin"), std::ios::binary);
  out << "GARBAGEGARBAGEGARBAGE";
  out.close();
  auto loaded = LoadGirIndex(Path("junk.bin"),
                             testing_util::SmallPoints(10, 2, 68),
                             testing_util::SmallWeights(5, 2, 69));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IndexIoTest, LoadMissingFileIsIOError) {
  auto loaded = LoadGirIndex(Path("missing.bin"),
                             testing_util::SmallPoints(10, 2, 70),
                             testing_util::SmallWeights(5, 2, 71));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(IndexIoTest, TruncatedFileIsCorruption) {
  Workload wl = MakeWorkload(100, 20, 3, 72);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ASSERT_TRUE(SaveGirIndex(Path("trunc.bin"), index).ok());
  std::filesystem::resize_file(
      Path("trunc.bin"), std::filesystem::file_size(Path("trunc.bin")) / 2);
  auto loaded = LoadGirIndex(Path("trunc.bin"), wl.points, wl.weights);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------- Aggregate

TEST(AggregateTest, SingleQueryMatchesReverseKRanksRanks) {
  Workload wl = MakeWorkload(300, 50, 4, 81);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  Dataset bundle(4);
  bundle.AppendUnchecked(wl.points.row(42));
  auto agg = GirAggregateReverseRank(index, bundle, 10);
  auto rkr = index.ReverseKRanks(wl.points.row(42), 10);
  ASSERT_EQ(agg.size(), rkr.size());
  for (size_t i = 0; i < agg.size(); ++i) {
    EXPECT_EQ(agg[i].weight_id, rkr[i].weight_id);
    EXPECT_EQ(agg[i].aggregate_rank, rkr[i].rank);
  }
}

struct AggregateCase {
  size_t n, m, d, k, bundle;
  uint64_t seed;
};

class AggregateEquivalence : public ::testing::TestWithParam<AggregateCase> {
};

TEST_P(AggregateEquivalence, GirMatchesNaive) {
  const AggregateCase& c = GetParam();
  Workload wl = MakeWorkload(c.n, c.m, c.d, c.seed);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  Dataset bundle(c.d);
  for (size_t i = 0; i < c.bundle; ++i) {
    bundle.AppendUnchecked(wl.points.row((i * 37) % c.n));
  }
  EXPECT_EQ(GirAggregateReverseRank(index, bundle, c.k),
            NaiveAggregateReverseRank(wl.points, wl.weights, bundle, c.k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateEquivalence,
    ::testing::Values(AggregateCase{200, 40, 3, 5, 2, 82},
                      AggregateCase{300, 60, 5, 10, 3, 83},
                      AggregateCase{150, 30, 6, 7, 5, 84},
                      AggregateCase{400, 25, 4, 3, 4, 85},
                      AggregateCase{100, 80, 8, 15, 2, 86}));

TEST(AggregateTest, EmptyBundleOrKZero) {
  Workload wl = MakeWorkload(50, 10, 3, 87);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  Dataset empty_bundle(3);
  EXPECT_TRUE(GirAggregateReverseRank(index, empty_bundle, 5).empty());
  Dataset bundle(3);
  bundle.AppendUnchecked(wl.points.row(0));
  EXPECT_TRUE(GirAggregateReverseRank(index, bundle, 0).empty());
}

TEST(AggregateTest, AggregateRanksAreExactSums) {
  Workload wl = MakeWorkload(150, 25, 4, 88);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  Dataset bundle(4);
  bundle.AppendUnchecked(wl.points.row(10));
  bundle.AppendUnchecked(wl.points.row(90));
  auto result = GirAggregateReverseRank(index, bundle, 5);
  for (const auto& entry : result) {
    const int64_t expected =
        RankOfQuery(wl.points, wl.weights.row(entry.weight_id),
                    wl.points.row(10)) +
        RankOfQuery(wl.points, wl.weights.row(entry.weight_id),
                    wl.points.row(90));
    EXPECT_EQ(entry.aggregate_rank, expected);
  }
}

}  // namespace
}  // namespace gir

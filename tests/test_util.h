#ifndef GIR_TESTS_TEST_UTIL_H_
#define GIR_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "data/generators.h"
#include "data/weights.h"

namespace gir {
namespace testing_util {

/// Small uniform product set on [0, 10K)^d.
inline Dataset SmallPoints(size_t n, size_t d, uint64_t seed) {
  return GenerateUniform(n, d, seed);
}

/// Small uniform-simplex preference set.
inline Dataset SmallWeights(size_t m, size_t d, uint64_t seed) {
  return GenerateWeightsUniform(m, d, seed);
}

/// A (P, W) pair for equivalence tests.
struct Workload {
  Dataset points;
  Dataset weights;
};

inline Workload MakeWorkload(size_t n, size_t m, size_t d, uint64_t seed) {
  return Workload{SmallPoints(n, d, seed), SmallWeights(m, d, seed + 1)};
}

/// Snaps every value to a coarse lattice and duplicates rows, so exact
/// scores tie constantly — the adversarial case for bound classification,
/// (rank, id) tie-breaking and the τ-index's inclusive threshold test.
inline Dataset MakeTieHeavy(size_t n, size_t d, uint64_t seed) {
  Dataset base = GenerateUniform(n, d, seed);
  std::vector<double> flat = base.flat();
  for (double& v : flat) v = std::floor(v / 2000.0) * 2000.0;
  // Duplicate the first quarter of the rows over the last quarter.
  const size_t quarter = n / 4;
  for (size_t i = 0; i < quarter; ++i) {
    for (size_t j = 0; j < d; ++j) {
      flat[(n - 1 - i) * d + j] = flat[i * d + j];
    }
  }
  return Dataset::FromFlat(d, std::move(flat)).value();
}

}  // namespace testing_util
}  // namespace gir

#endif  // GIR_TESTS_TEST_UTIL_H_

#ifndef GIR_TESTS_TEST_UTIL_H_
#define GIR_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <utility>

#include "core/dataset.h"
#include "data/generators.h"
#include "data/weights.h"

namespace gir {
namespace testing_util {

/// Small uniform product set on [0, 10K)^d.
inline Dataset SmallPoints(size_t n, size_t d, uint64_t seed) {
  return GenerateUniform(n, d, seed);
}

/// Small uniform-simplex preference set.
inline Dataset SmallWeights(size_t m, size_t d, uint64_t seed) {
  return GenerateWeightsUniform(m, d, seed);
}

/// A (P, W) pair for equivalence tests.
struct Workload {
  Dataset points;
  Dataset weights;
};

inline Workload MakeWorkload(size_t n, size_t m, size_t d, uint64_t seed) {
  return Workload{SmallPoints(n, d, seed), SmallWeights(m, d, seed + 1)};
}

}  // namespace testing_util
}  // namespace gir

#endif  // GIR_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "core/naive.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/adaptive_grid.h"
#include "grid/bounds.h"
#include "grid/sparse_scan.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

// -------------------------------------------------------- Adaptive grid

TEST(QuantilePartitionerTest, BoundariesFollowQuantiles) {
  // Heavily skewed data: most mass below 1, tail to 100.
  Dataset ds(1);
  for (int i = 0; i < 900; ++i) {
    std::vector<double> row{static_cast<double>(i) / 1000.0};
    ds.AppendUnchecked(row);
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<double> row{1.0 + static_cast<double>(i)};
    ds.AppendUnchecked(row);
  }
  auto part = BuildQuantilePartitioner(ds, 10).value();
  // 9 of 10 boundaries should sit in the dense sub-1 region.
  size_t below_one = 0;
  for (size_t i = 1; i < 10; ++i) below_one += part.Boundary(i) <= 1.0;
  EXPECT_GE(below_one, 8u);
  // Top boundary covers the maximum.
  EXPECT_GE(part.Boundary(10), ds.MaxValue());
}

TEST(QuantilePartitionerTest, HandlesHeavyTies) {
  Dataset ds(1);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> row{i < 990 ? 5.0 : static_cast<double>(i)};
    ds.AppendUnchecked(row);
  }
  auto part = BuildQuantilePartitioner(ds, 16);
  ASSERT_TRUE(part.ok());
  // Strictly increasing despite 99% duplicates.
  for (size_t i = 1; i <= 16; ++i) {
    EXPECT_GT(part.value().Boundary(i), part.value().Boundary(i - 1));
  }
}

TEST(QuantilePartitionerTest, RejectsEmptyAndBadN) {
  Dataset empty(2);
  EXPECT_FALSE(BuildQuantilePartitioner(empty, 8).ok());
  Dataset ds = GenerateUniform(10, 2, 1);
  EXPECT_FALSE(BuildQuantilePartitioner(ds, 0).ok());
}

TEST(QuantilePartitionerTest, SampleCapStillCoversMaximum) {
  Dataset ds = GenerateUniform(5000, 3, 2);
  auto part = BuildQuantilePartitioner(ds, 32, /*sample_cap=*/500).value();
  EXPECT_GE(part.Boundary(32), ds.MaxValue());
}

TEST(AdaptiveGirTest, MatchesNaiveOracle) {
  Workload wl = MakeWorkload(300, 60, 5, 3);
  auto index = BuildAdaptiveGir(wl.points, wl.weights).value();
  for (size_t qi : {size_t{0}, size_t{100}, size_t{299}}) {
    ConstRow q = wl.points.row(qi);
    EXPECT_EQ(index.ReverseTopK(q, 10),
              NaiveReverseTopK(wl.points, wl.weights, q, 10));
    EXPECT_EQ(index.ReverseKRanks(q, 10),
              NaiveReverseKRanks(wl.points, wl.weights, q, 10));
  }
}

TEST(AdaptiveGirTest, MatchesNaiveOnSkewedData) {
  Dataset points = GenerateExponential(400, 6, 4);
  Dataset weights = GenerateWeightsExponential(50, 6, 5);
  auto index = BuildAdaptiveGir(points, weights).value();
  ConstRow q = points.row(42);
  EXPECT_EQ(index.ReverseTopK(q, 10),
            NaiveReverseTopK(points, weights, q, 10));
  EXPECT_EQ(index.ReverseKRanks(q, 10),
            NaiveReverseKRanks(points, weights, q, 10));
}

TEST(AdaptiveGirTest, BetterFilterRateThanUniformOnSkewedWeights) {
  // Normalized weights concentrate near 1/d; the equal-width weight grid
  // wastes most cells. The quantile grid should resolve more points.
  const size_t d = 12;
  Dataset points = GenerateExponential(4000, d, 6);
  Dataset weights = GenerateWeightsUniform(30, d, 7);
  GirOptions opts;
  opts.partitions = 16;
  auto uniform = GirIndex::Build(points, weights, opts).value();
  auto adaptive = BuildAdaptiveGir(points, weights, opts).value();

  auto filter_rate = [&](const GirIndex& index) {
    QueryStats stats;
    index.ReverseKRanks(points.row(1), 10, &stats);
    return stats.FilterRate();
  };
  EXPECT_GT(filter_rate(adaptive), filter_rate(uniform));
}

// -------------------------------------------------------- Sparse scan

TEST(SparseGirTest, MatchesDenseGirOnSparseWeights) {
  const size_t d = 10;
  Dataset points = GenerateUniform(400, d, 8);
  WeightGeneratorOptions wopts;
  wopts.sparsity_nonzero_fraction = 0.25;
  Dataset weights = GenerateWeightsSparse(60, d, 9, wopts);
  auto dense = GirIndex::Build(points, weights).value();
  auto sparse = SparseGir::Build(points, weights).value();
  for (size_t qi : {size_t{0}, size_t{200}, size_t{399}}) {
    ConstRow q = points.row(qi);
    EXPECT_EQ(sparse.ReverseTopK(q, 10), dense.ReverseTopK(q, 10));
    EXPECT_EQ(sparse.ReverseKRanks(q, 10), dense.ReverseKRanks(q, 10));
  }
}

TEST(SparseGirTest, MatchesNaiveOnDenseWeights) {
  // Degenerate sparsity (all entries non-zero) must still be correct.
  Workload wl = MakeWorkload(200, 30, 4, 10);
  auto sparse = SparseGir::Build(wl.points, wl.weights).value();
  ConstRow q = wl.points.row(50);
  EXPECT_EQ(sparse.ReverseTopK(q, 5),
            NaiveReverseTopK(wl.points, wl.weights, q, 5));
  EXPECT_EQ(sparse.ReverseKRanks(q, 5),
            NaiveReverseKRanks(wl.points, wl.weights, q, 5));
}

TEST(SparseGirTest, AverageNonZerosReflectsSparsity) {
  const size_t d = 20;
  WeightGeneratorOptions wopts;
  wopts.sparsity_nonzero_fraction = 0.2;
  Dataset points = GenerateUniform(50, d, 11);
  Dataset weights = GenerateWeightsSparse(500, d, 12, wopts);
  auto sparse = SparseGir::Build(points, weights).value();
  EXPECT_NEAR(sparse.AverageNonZeros(), 0.2 * d, 1.0);
}

TEST(SparseGirTest, ZeroThresholdTreatsTinyWeightsAsZero) {
  Dataset points = GenerateUniform(100, 3, 13);
  auto weights =
      Dataset::FromRows({{0.5, 0.5, 0.0}, {1e-12, 0.4, 0.6 - 1e-12}}).value();
  auto sparse = SparseGir::Build(points, weights, GirOptions{},
                                 /*zero_threshold=*/1e-9)
                    .value();
  // Row 1's tiny entry is dropped; ~2 non-zeros per row on average.
  EXPECT_NEAR(sparse.AverageNonZeros(), 2.0, 0.01);
}

TEST(SparseGirTest, FewerMultiplicationsThanDense) {
  const size_t d = 16;
  Dataset points = GenerateUniform(2000, d, 14);
  WeightGeneratorOptions wopts;
  wopts.sparsity_nonzero_fraction = 0.15;
  Dataset weights = GenerateWeightsSparse(50, d, 15, wopts);
  auto dense = GirIndex::Build(points, weights).value();
  auto sparse = SparseGir::Build(points, weights).value();
  QueryStats dense_stats, sparse_stats;
  dense.ReverseKRanks(points.row(3), 10, &dense_stats);
  sparse.ReverseKRanks(points.row(3), 10, &sparse_stats);
  EXPECT_LT(sparse_stats.multiplications, dense_stats.multiplications);
}

TEST(SparseGirTest, BuildRejectsMismatch) {
  Dataset points = GenerateUniform(10, 3, 16);
  Dataset weights = GenerateWeightsUniform(5, 4, 17);
  EXPECT_FALSE(SparseGir::Build(points, weights).ok());
  Dataset empty(3);
  EXPECT_FALSE(SparseGir::Build(empty, weights).ok());
}

}  // namespace
}  // namespace gir

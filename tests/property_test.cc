#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/naive.h"
#include "core/rank.h"
#include "core/topk.h"
#include "data/generators.h"
#include "data/rng.h"
#include "data/weights.h"
#include "grid/aggregate.h"
#include "grid/bit_packed.h"
#include "grid/bounds.h"
#include "grid/gir_queries.h"
#include "stats/dice.h"
#include "stats/normal.h"
#include "test_util.h"

namespace gir {
namespace {

using testing_util::MakeWorkload;
using testing_util::Workload;

// Cross-cutting invariants of the query definitions and index structures,
// exercised with randomized inputs.

TEST(QueryProperties, TopKPrefixMonotoneInK) {
  Dataset points = GenerateUniform(500, 4, 1);
  Dataset weights = GenerateWeightsUniform(5, 4, 2);
  for (size_t wi = 0; wi < weights.size(); ++wi) {
    auto top20 = TopK(points, weights.row(wi), 20);
    auto top10 = TopK(points, weights.row(wi), 10);
    ASSERT_EQ(top10.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(top10[i], top20[i]) << "top-k must be a prefix of top-k'";
    }
  }
}

TEST(QueryProperties, ReverseTopKMonotoneInK) {
  Workload wl = MakeWorkload(300, 60, 5, 3);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ConstRow q = wl.points.row(123);
  ReverseTopKResult previous;
  for (size_t k : {1u, 5u, 20u, 100u, 300u}) {
    auto current = index.ReverseTopK(q, k);
    // Result sets grow with k.
    EXPECT_TRUE(std::includes(current.begin(), current.end(),
                              previous.begin(), previous.end()));
    previous = std::move(current);
  }
}

TEST(QueryProperties, ReverseKRanksPrefixMonotoneInK) {
  Workload wl = MakeWorkload(250, 70, 4, 4);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ConstRow q = wl.points.row(9);
  auto big = index.ReverseKRanks(q, 30);
  auto small = index.ReverseKRanks(q, 10);
  ASSERT_EQ(small.size(), 10u);
  for (size_t i = 0; i < small.size(); ++i) EXPECT_EQ(small[i], big[i]);
}

TEST(QueryProperties, RtkMembershipEquivalentToRankBelowK) {
  Workload wl = MakeWorkload(200, 50, 4, 5);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  ConstRow q = wl.points.row(77);
  const size_t k = 12;
  auto rtk = index.ReverseTopK(q, k);
  for (size_t wi = 0; wi < wl.weights.size(); ++wi) {
    const bool member =
        std::binary_search(rtk.begin(), rtk.end(), static_cast<VectorId>(wi));
    const int64_t rank = RankOfQuery(wl.points, wl.weights.row(wi), q);
    EXPECT_EQ(member, rank < static_cast<int64_t>(k)) << "weight " << wi;
  }
}

TEST(QueryProperties, DominatedQueryRanksWorse) {
  // If q1 dominates q2, then rank(w, q1) <= rank(w, q2) for every w.
  Rng rng(6);
  Dataset points = GenerateUniform(400, 3, 7);
  Dataset weights = GenerateWeightsUniform(20, 3, 8);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q2(3), q1(3);
    for (size_t i = 0; i < 3; ++i) {
      q2[i] = rng.NextDouble(100.0, 10000.0);
      q1[i] = q2[i] * rng.NextDouble(0.1, 0.999);
    }
    for (size_t wi = 0; wi < weights.size(); ++wi) {
      EXPECT_LE(RankOfQuery(points, weights.row(wi), q1),
                RankOfQuery(points, weights.row(wi), q2));
    }
  }
}

TEST(QueryProperties, AggregateOfDuplicatedBundleDoublesRanks) {
  Workload wl = MakeWorkload(150, 30, 4, 9);
  auto index = GirIndex::Build(wl.points, wl.weights).value();
  Dataset single(4), doubled(4);
  single.AppendUnchecked(wl.points.row(42));
  doubled.AppendUnchecked(wl.points.row(42));
  doubled.AppendUnchecked(wl.points.row(42));
  auto one = GirAggregateReverseRank(index, single, 10);
  auto two = GirAggregateReverseRank(index, doubled, 10);
  ASSERT_EQ(one.size(), two.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(two[i].weight_id, one[i].weight_id);
    EXPECT_EQ(two[i].aggregate_rank, 2 * one[i].aggregate_rank);
  }
}

TEST(GridProperties, FinerUniformGridTightensBounds) {
  // Doubling n on the same range nests the cells, so every bound pair can
  // only tighten.
  Dataset points = GenerateUniform(300, 5, 10);
  Dataset weights = GenerateWeightsUniform(20, 5, 11);
  const double pr = points.MaxValue();
  const double wr = weights.MaxValue();
  for (size_t n : {4u, 16u}) {
    auto coarse_grid =
        GridIndex::Make(Partitioner::Uniform(n, pr).value(),
                        Partitioner::Uniform(n, wr).value());
    auto fine_grid =
        GridIndex::Make(Partitioner::Uniform(2 * n, pr).value(),
                        Partitioner::Uniform(2 * n, wr).value());
    ApproxVectors cp = ApproxVectors::Build(points, coarse_grid.point_partitioner());
    ApproxVectors cw = ApproxVectors::Build(weights, coarse_grid.weight_partitioner());
    ApproxVectors fp = ApproxVectors::Build(points, fine_grid.point_partitioner());
    ApproxVectors fw = ApproxVectors::Build(weights, fine_grid.weight_partitioner());
    for (size_t wi = 0; wi < weights.size(); wi += 3) {
      for (size_t pi = 0; pi < points.size(); pi += 7) {
        const Score cl = ScoreLowerBound(coarse_grid, cp.row(pi), cw.row(wi), 5);
        const Score cu = ScoreUpperBound(coarse_grid, cp.row(pi), cw.row(wi), 5);
        const Score fl = ScoreLowerBound(fine_grid, fp.row(pi), fw.row(wi), 5);
        const Score fu = ScoreUpperBound(fine_grid, fp.row(pi), fw.row(wi), 5);
        EXPECT_GE(fl, cl - 1e-9);
        EXPECT_LE(fu, cu + 1e-9);
      }
    }
  }
}

TEST(GridProperties, BitPackRoundTripRandomCells) {
  Rng rng(12);
  for (uint32_t bits : {1u, 3u, 6u, 8u}) {
    const uint32_t max_cell = bits == 8 ? 255u : ((1u << bits) - 1u);
    for (size_t dim : {1u, 5u, 13u}) {
      std::vector<uint8_t> cells(dim * 37);
      for (auto& c : cells) {
        c = static_cast<uint8_t>(rng.NextIndex(max_cell + 1));
      }
      ApproxVectors av = ApproxVectors::FromCells(dim, cells);
      auto packed = BitPackedVectors::Pack(av, bits);
      ASSERT_TRUE(packed.ok());
      ApproxVectors back = packed.value().Unpack();
      for (size_t i = 0; i < av.size(); ++i) {
        for (size_t j = 0; j < dim; ++j) {
          ASSERT_EQ(back.row(i)[j], av.row(i)[j]);
        }
      }
    }
  }
}

TEST(StatsProperties, DicePmfIsSymmetric) {
  for (auto [d, faces] : {std::pair<size_t, size_t>{3, 6},
                          std::pair<size_t, size_t>{5, 16}}) {
    auto pmf = DiceSumPmf(d, faces);
    for (size_t i = 0; i < pmf.size(); ++i) {
      EXPECT_NEAR(pmf[i], pmf[pmf.size() - 1 - i], 1e-12);
    }
  }
}

TEST(StatsProperties, NormalCdfSymmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9}) {
    EXPECT_NEAR(NormalCdf(-x), 1.0 - NormalCdf(x), 1e-14);
    EXPECT_NEAR(NormalTail(-x), 1.0 - NormalTail(x), 1e-14);
  }
}

TEST(StatsProperties, NormalCdfMonotone) {
  double previous = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double value = NormalCdf(x);
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST(QueryProperties, StatsNeverDoubleCountPoints) {
  // filtered + refined == visited for the GIR scans, over whole queries.
  Workload wl = MakeWorkload(600, 50, 6, 13);
  for (BoundMode mode : {BoundMode::kUpperFirst, BoundMode::kFused,
                         BoundMode::kExactWeight}) {
    GirOptions opts;
    opts.bound_mode = mode;
    auto index = GirIndex::Build(wl.points, wl.weights, opts).value();
    QueryStats stats;
    index.ReverseKRanks(wl.points.row(5), 10, &stats);
    // In 2-D modes an early-terminated scan may leave candidates
    // unrefined, so refined <= visited - filtered; exact-weight refines
    // inline, making it an equality.
    EXPECT_LE(stats.points_filtered + stats.points_refined,
              stats.points_visited);
    if (mode == BoundMode::kExactWeight) {
      EXPECT_EQ(stats.points_filtered + stats.points_refined,
                stats.points_visited);
    }
  }
}

}  // namespace
}  // namespace gir

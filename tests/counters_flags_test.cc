#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "data/weights.h"
#include "grid/gir_queries.h"
#include "grid/index_io.h"
#include "grid/parallel_gir.h"

namespace gir {
namespace {

// ---- Satellite: batch QueryStats accounting ------------------------------
//
// The batch entry points must report the same weights_evaluated as the sum
// of the equivalent per-query runs on the same engine — including queries
// that are dead on entry (>= k dominators), k == 0, and both domin modes.

struct CounterCase {
  ScanMode mode;
  bool use_domin;
};

class BatchCounterTest : public ::testing::TestWithParam<CounterCase> {};

TEST_P(BatchCounterTest, BatchWeightsEvaluatedMatchesPerQuerySum) {
  const size_t d = 4;
  Dataset points = GenerateUniform(300, d, 91);
  Dataset weights = GenerateWeightsUniform(40, d, 92);
  GirOptions options;
  options.partitions = 8;
  options.scan_mode = GetParam().mode;
  options.use_domin = GetParam().use_domin;
  options.tau.k_max = 8;
  options.tau.bins = 16;
  options.tau.threads = 1;
  auto built = GirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok());
  const GirIndex& index = built.value();

  // Query mix: two ordinary queries, one near the max corner (dominated
  // by most of P, so it dies on entry when domin is on), one near the
  // origin (dominates nothing).
  Dataset queries(d);
  ASSERT_TRUE(queries.Append(GenerateUniform(1, d, 93).row(0)).ok());
  ASSERT_TRUE(queries.Append(GenerateUniform(1, d, 94).row(0)).ok());
  const std::vector<double> corner(d, 0.99);
  ASSERT_TRUE(queries.Append(ConstRow(corner.data(), corner.size())).ok());
  const std::vector<double> origin(d, 0.01);
  ASSERT_TRUE(queries.Append(ConstRow(origin.data(), origin.size())).ok());

  ThreadPool pool(3);
  for (size_t k : {size_t{0}, size_t{3}, size_t{20}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    QueryStats batch_rtk, batch_rkr;
    index.ReverseTopKBatch(queries, k, &batch_rtk);
    index.ReverseKRanksBatch(queries, k, &batch_rkr);
    QueryStats sum_rtk, sum_rkr;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      index.ReverseTopK(queries.row(qi), k, &sum_rtk);
      index.ReverseKRanks(queries.row(qi), k, &sum_rkr);
    }
    EXPECT_EQ(batch_rtk.weights_evaluated, sum_rtk.weights_evaluated);
    EXPECT_EQ(batch_rkr.weights_evaluated, sum_rkr.weights_evaluated);

    QueryStats par_rtk, par_rkr;
    ParallelReverseTopKBatch(index, queries, k, pool, &par_rtk);
    ParallelReverseKRanksBatch(index, queries, k, pool, &par_rkr);
    EXPECT_EQ(par_rtk.weights_evaluated, sum_rtk.weights_evaluated);
    EXPECT_EQ(par_rkr.weights_evaluated, sum_rkr.weights_evaluated);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndDomin, BatchCounterTest,
    ::testing::Values(CounterCase{ScanMode::kBlocked, true},
                      CounterCase{ScanMode::kBlocked, false},
                      CounterCase{ScanMode::kTauIndex, true},
                      CounterCase{ScanMode::kTauIndex, false}),
    [](const auto& info) {
      std::string name = info.param.mode == ScanMode::kBlocked
                             ? "Blocked"
                             : "TauIndex";
      return name + (info.param.use_domin ? "Domin" : "NoDomin");
    });

TEST(BatchCounterTest, KZeroEvaluatesNothingOnEveryEntryPoint) {
  Dataset points = GenerateUniform(100, 3, 95);
  Dataset weights = GenerateWeightsUniform(20, 3, 96);
  GirOptions options;
  options.partitions = 8;
  options.scan_mode = ScanMode::kBlocked;
  options.use_domin = false;  // previously k=0 scanned everything here
  auto built = GirIndex::Build(points, weights, options);
  ASSERT_TRUE(built.ok());
  const GirIndex& index = built.value();
  Dataset queries = GenerateUniform(3, 3, 97);
  ThreadPool pool(2);

  QueryStats stats;
  EXPECT_TRUE(index.ReverseTopK(queries.row(0), 0, &stats).empty());
  EXPECT_TRUE(index.ReverseKRanks(queries.row(0), 0, &stats).empty());
  EXPECT_TRUE(ParallelReverseTopK(index, queries.row(0), 0, pool, &stats)
                  .empty());
  EXPECT_TRUE(ParallelReverseKRanks(index, queries.row(0), 0, pool, &stats)
                  .empty());
  index.ReverseTopKBatch(queries, 0, &stats);
  index.ReverseKRanksBatch(queries, 0, &stats);
  ParallelReverseTopKBatch(index, queries, 0, pool, &stats);
  ParallelReverseKRanksBatch(index, queries, 0, pool, &stats);
  EXPECT_EQ(stats.weights_evaluated, 0u);
  EXPECT_EQ(stats.inner_products, 0u);
}

// ---- Satellite: --threads flag parsing -----------------------------------

TEST(ParseThreadsValueTest, AcceptsDigitsOnly) {
  size_t threads = 0;
  EXPECT_TRUE(bench::ParseThreadsValue("4", &threads));
  EXPECT_EQ(threads, 4u);
  EXPECT_TRUE(bench::ParseThreadsValue("0", &threads));
  EXPECT_EQ(threads, 0u);
  EXPECT_TRUE(bench::ParseThreadsValue("128", &threads));
  EXPECT_EQ(threads, 128u);
}

TEST(ParseThreadsValueTest, RejectsGarbage) {
  size_t threads = 0;
  EXPECT_FALSE(bench::ParseThreadsValue("-3", &threads));
  EXPECT_FALSE(bench::ParseThreadsValue("+3", &threads));
  EXPECT_FALSE(bench::ParseThreadsValue("foo", &threads));
  EXPECT_FALSE(bench::ParseThreadsValue("3foo", &threads));
  EXPECT_FALSE(bench::ParseThreadsValue("3.5", &threads));
  EXPECT_FALSE(bench::ParseThreadsValue("", &threads));
  EXPECT_FALSE(bench::ParseThreadsValue(nullptr, &threads));
  // One digit past max size_t.
  EXPECT_FALSE(bench::ParseThreadsValue("184467440737095516160", &threads));
}

TEST(ParseThreadsFlagTest, ParsesAndConsumesValidFlag) {
  char prog[] = "bench";
  char flag[] = "--threads=6";
  char other[] = "--foo";
  char* argv[] = {prog, flag, other, nullptr};
  int argc = 3;
  EXPECT_EQ(bench::ParseThreadsFlag(&argc, argv), 6u);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--foo");
}

TEST(ParseThreadsFlagTest, SeparateArgumentForm) {
  char prog[] = "bench";
  char flag[] = "--threads";
  char value[] = "3";
  char* argv[] = {prog, flag, value, nullptr};
  int argc = 3;
  EXPECT_EQ(bench::ParseThreadsFlag(&argc, argv), 3u);
  EXPECT_EQ(argc, 1);
}

TEST(ParseThreadsFlagDeathTest, NegativeValueExits) {
  char prog[] = "bench";
  char flag[] = "--threads";
  char value[] = "-3";
  char* argv[] = {prog, flag, value, nullptr};
  int argc = 3;
  EXPECT_EXIT(bench::ParseThreadsFlag(&argc, argv),
              ::testing::ExitedWithCode(2), "error: --threads");
}

TEST(ParseThreadsFlagDeathTest, NonNumericValueExits) {
  char prog[] = "bench";
  char flag[] = "--threads=foo";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EXIT(bench::ParseThreadsFlag(&argc, argv),
              ::testing::ExitedWithCode(2), "error: --threads");
}

TEST(ParseThreadsFlagDeathTest, MissingValueExits) {
  char prog[] = "bench";
  char flag[] = "--threads";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EXIT(bench::ParseThreadsFlag(&argc, argv),
              ::testing::ExitedWithCode(2), "error: --threads");
}

// ---- Satellite: hostile index headers ------------------------------------

class HostileHeaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gir_hostile_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    points_ = GenerateUniform(80, 3, 101);
    weights_ = GenerateWeightsUniform(10, 3, 102);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void Patch(const std::string& path, size_t offset, const void* bytes,
             size_t size) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(static_cast<const char*>(bytes),
            static_cast<std::streamsize>(size));
  }

  std::filesystem::path dir_;
  Dataset points_{3};
  Dataset weights_{3};
};

TEST_F(HostileHeaderTest, GirLoaderRejectsBadPartitionCounts) {
  GirOptions options;
  options.partitions = 8;
  auto built = GirIndex::Build(points_, weights_, options);
  ASSERT_TRUE(built.ok());
  const std::string good = Path("good.bin");
  ASSERT_TRUE(SaveGirIndex(good, built.value()).ok());
  // GIRIDX01 layout: magic(8), then u32 partitions at offset 8.
  for (uint32_t partitions : {uint32_t{0}, uint32_t{4096}, ~uint32_t{0}}) {
    const std::string path = Path("bad_partitions.bin");
    std::filesystem::copy_file(
        good, path, std::filesystem::copy_options::overwrite_existing);
    Patch(path, 8, &partitions, sizeof(partitions));
    auto loaded = LoadGirIndex(path, points_, weights_);
    ASSERT_FALSE(loaded.ok()) << partitions;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << partitions;
  }
}

TEST_F(HostileHeaderTest, GirLoaderRejectsShapeMismatchBeforeAllocating) {
  GirOptions options;
  options.partitions = 8;
  auto built = GirIndex::Build(points_, weights_, options);
  ASSERT_TRUE(built.ok());
  const std::string path = Path("shape.bin");
  ASSERT_TRUE(SaveGirIndex(path, built.value()).ok());
  // Re-attaching to datasets of a different shape must fail cleanly: the
  // packed headers no longer match the data they would be unpacked for.
  Dataset fewer = GenerateUniform(40, 3, 103);
  auto loaded = LoadGirIndex(path, fewer, weights_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(HostileHeaderTest, TauLoaderRejectsHostileHeaderFields) {
  TauIndexOptions tau_options;
  tau_options.k_max = 8;
  tau_options.bins = 16;
  tau_options.threads = 1;
  auto built = TauIndex::Build(points_, weights_, tau_options);
  ASSERT_TRUE(built.ok());
  const std::string good = Path("tau.bin");
  ASSERT_TRUE(SaveTauIndex(good, built.value()).ok());
  // GIRTAU01 layout: magic(8) k_cap(4) bins(4) dim(4) |W|(8) |P|(8).
  struct Case {
    const char* name;
    size_t offset;
    uint64_t value;
    size_t size;
  };
  const Case cases[] = {
      {"k_cap == 0", 8, 0, 4},
      // k_cap = 2^31 with |P| forged to match: the τ array k_cap·|W|
      // implied by the header reaches tens of gigabytes — must be
      // rejected against the actual file size, not allocated.
      {"allocation-bomb k_cap", 8, uint64_t{1} << 31, 4},
      {"bins < 2", 12, 1, 4},
      {"oversized bins", 12, uint64_t{1} << 24, 4},
      {"num_points == 0", 28, 0, 8},
      {"num_points overflow", 28, ~uint64_t{0}, 8},
  };
  for (const Case& c : cases) {
    const std::string path = Path("tau_bad.bin");
    std::filesystem::copy_file(
        good, path, std::filesystem::copy_options::overwrite_existing);
    Patch(path, c.offset, &c.value, c.size);
    if (std::strcmp(c.name, "allocation-bomb k_cap") == 0) {
      // Keep k_cap <= num_points so the size check is what rejects it.
      const uint64_t fake_points = uint64_t{1} << 32;
      Patch(path, 28, &fake_points, sizeof(fake_points));
    }
    auto loaded = LoadTauIndex(path, weights_);
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << c.name;
  }
}

TEST_F(HostileHeaderTest, TauLoaderStillRoundTripsGoodFiles) {
  TauIndexOptions tau_options;
  tau_options.k_max = 8;
  tau_options.bins = 16;
  tau_options.threads = 1;
  auto built = TauIndex::Build(points_, weights_, tau_options);
  ASSERT_TRUE(built.ok());
  const std::string path = Path("tau_good.bin");
  ASSERT_TRUE(SaveTauIndex(path, built.value()).ok());
  auto loaded = LoadTauIndex(path, weights_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().k_cap(), built.value().k_cap());
  EXPECT_EQ(loaded.value().tau(), built.value().tau());
}

}  // namespace
}  // namespace gir
